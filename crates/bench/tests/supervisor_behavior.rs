//! Behavioural tests of the sweep supervisor: retry + degradation
//! accounting through the observer, and — the crash-safety contract —
//! that a sweep killed mid-flight and resumed from its checkpoint merges
//! into results bit-identical to an uninterrupted run.

use dalut_bench::supervisor::{ItemError, Strategy, SweepSupervisor, WorkItem};
use dalut_core::checkpoint::{CheckpointStore, Degradation, WorkKey, WorkRecord};
use dalut_core::{CancelToken, MetricsRecorder, NoopObserver, Observer, Termination};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dalut_supervise_{tag}_{}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The deterministic "search result" used throughout: derived from the
/// item seed alone, so two runs that execute the same item must produce
/// bit-identical payloads (mirrors a seeded search's determinism,
/// without the runtime).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Payload {
    med: f64,
    iterations: u64,
}

fn compute(seed: u64) -> Payload {
    let mut x = seed;
    for _ in 0..8 {
        x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17);
    }
    Payload {
        med: (x % 100_000) as f64 / 1000.0,
        iterations: x % 977,
    }
}

fn key(i: u64) -> WorkKey {
    WorkKey::new("bench", "algo", i, "unit", &"params")
}

/// `n` deterministic items; `cancel_at` (if any) trips `token` from
/// inside that item, simulating a SIGINT landing mid-sweep.
fn items(
    n: u64,
    cancel_at: Option<u64>,
    token: &CancelToken,
    executed: &Arc<AtomicU32>,
) -> Vec<WorkItem<'static, Payload>> {
    (0..n)
        .map(|i| {
            let token = token.clone();
            let executed = executed.clone();
            WorkItem::new(
                key(i),
                vec![Strategy::new("primary", move |_: &dyn Observer| {
                    executed.fetch_add(1, Ordering::SeqCst);
                    if cancel_at == Some(i) {
                        token.cancel();
                        return Err(ItemError::Cancelled);
                    }
                    Ok(compute(i))
                })],
            )
        })
        .collect()
}

/// Strips records down to the fields a report consumes (everything but
/// `attempts`, which an interrupted run may legitimately differ in for
/// the replayed item — here it cannot, but the comparison documents the
/// contract the binaries rely on).
fn essence(records: &[WorkRecord<Payload>]) -> Vec<(WorkKey, Degradation, Option<Payload>)> {
    records
        .iter()
        .map(|r| (r.key.clone(), r.degradation.clone(), r.result.clone()))
        .collect()
}

#[test]
fn killed_and_resumed_sweep_is_bit_identical_to_an_uninterrupted_one() {
    const N: u64 = 9;
    // Reference: uninterrupted run, no checkpointing.
    let executed = Arc::new(AtomicU32::new(0));
    let reference = SweepSupervisor::new(2, 7, 42).backoff_ms(0, 0).run(
        items(N, None, &CancelToken::new(), &executed),
        &NoopObserver,
        |_| {},
    );
    assert!(reference.is_complete());

    // Interrupted run: item 4 trips the token mid-chunk, like a signal.
    let dir = temp_dir("killresume");
    let token = CancelToken::new();
    let executed = Arc::new(AtomicU32::new(0));
    let first = SweepSupervisor::new(2, 7, 42)
        .backoff_ms(0, 0)
        .cancel_token(&token)
        .checkpoints(CheckpointStore::open(&dir).unwrap(), false)
        .run(items(N, Some(4), &token, &executed), &NoopObserver, |_| {});
    assert_eq!(first.termination, Termination::Cancelled);
    assert!(
        !first.records.is_empty(),
        "some items finished before the kill"
    );
    assert!(
        (first.records.len() as u64) < N,
        "the kill left items outstanding"
    );

    // Resume: same configuration, fresh process state.
    let executed_after = Arc::new(AtomicU32::new(0));
    let second = SweepSupervisor::new(2, 7, 42)
        .backoff_ms(0, 0)
        .checkpoints(CheckpointStore::open(&dir).unwrap(), true)
        .run(
            items(N, None, &CancelToken::new(), &executed_after),
            &NoopObserver,
            |_| {},
        );
    assert!(second.is_complete());
    assert_eq!(second.resumed, first.records.len());
    // Only the outstanding items were recomputed.
    assert_eq!(
        executed_after.load(Ordering::SeqCst) as u64,
        N - first.records.len() as u64
    );
    // The merged output is bit-identical to the uninterrupted run.
    assert_eq!(essence(&second.records), essence(&reference.records));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_replays_interrupted_items_rather_than_recording_partials() {
    // An item cancelled mid-attempt must not appear in the checkpoint:
    // its partial work is discarded and it reruns from scratch.
    let dir = temp_dir("replay");
    let token = CancelToken::new();
    let executed = Arc::new(AtomicU32::new(0));
    let first = SweepSupervisor::new(1, 7, 9)
        .backoff_ms(0, 0)
        .cancel_token(&token)
        .checkpoints(CheckpointStore::open(&dir).unwrap(), false)
        .run(items(3, Some(1), &token, &executed), &NoopObserver, |_| {});
    assert!(first.records.iter().all(|r| r.key != key(1)));

    let second = SweepSupervisor::new(1, 7, 9)
        .backoff_ms(0, 0)
        .checkpoints(CheckpointStore::open(&dir).unwrap(), true)
        .run(
            items(3, None, &CancelToken::new(), &Arc::new(AtomicU32::new(0))),
            &NoopObserver,
            |_| {},
        );
    assert!(second.is_complete());
    let replayed = second.records.iter().find(|r| r.key == key(1)).unwrap();
    assert_eq!(replayed.result, Some(compute(1)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_from_a_different_sweep_configuration_are_ignored() {
    let dir = temp_dir("fingerprint");
    let executed = Arc::new(AtomicU32::new(0));
    let first = SweepSupervisor::new(1, 7, 1)
        .backoff_ms(0, 0)
        .checkpoints(CheckpointStore::open(&dir).unwrap(), false)
        .run(
            items(4, None, &CancelToken::new(), &executed),
            &NoopObserver,
            |_| {},
        );
    assert!(first.is_complete());

    // Same store, different sweep fingerprint (say, a new --scale):
    // nothing may be reused.
    let executed = Arc::new(AtomicU32::new(0));
    let second = SweepSupervisor::new(1, 7, 2)
        .backoff_ms(0, 0)
        .checkpoints(CheckpointStore::open(&dir).unwrap(), true)
        .run(
            items(4, None, &CancelToken::new(), &executed),
            &NoopObserver,
            |_| {},
        );
    assert!(second.is_complete());
    assert_eq!(second.resumed, 0);
    assert_eq!(executed.load(Ordering::SeqCst), 4);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn retry_and_degradation_flow_through_the_metrics_observer() {
    let recorder = MetricsRecorder::new();
    let fail_first = Arc::new(AtomicU32::new(0));
    let ff = fail_first.clone();
    let retried = WorkItem::new(
        key(0),
        vec![Strategy::new("primary", move |_: &dyn Observer| {
            if ff.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(ItemError::Failed("transient".into()))
            } else {
                Ok(compute(0))
            }
        })],
    );
    let degraded = WorkItem::new(
        key(1),
        vec![
            Strategy::new("primary", |_: &dyn Observer| {
                Err(ItemError::Failed("always".into()))
            }),
            Strategy::new("fallback", |_: &dyn Observer| Ok(compute(1))),
        ],
    );
    let out = SweepSupervisor::new(1, 7, 3)
        .max_retries(1)
        .backoff_ms(0, 0)
        .run(vec![retried, degraded], &recorder, |_| {});
    assert!(out.is_complete());
    let counters = recorder.snapshot().counters;
    // One transient retry; the degrading item retried its primary once
    // too, then degraded (one ItemDegraded event).
    assert_eq!(counters.items_retried, 2);
    assert_eq!(counters.items_degraded, 1);
    assert_eq!(
        out.records[1].degradation,
        Degradation::Degraded {
            strategy: "fallback".into()
        }
    );
}

#[test]
fn checkpoint_saves_are_counted_once_per_chunk() {
    let dir = temp_dir("flushcount");
    let recorder = MetricsRecorder::new();
    let executed = Arc::new(AtomicU32::new(0));
    let mut flushes = 0usize;
    let out = SweepSupervisor::new(2, 7, 5)
        .backoff_ms(0, 0)
        .checkpoints(CheckpointStore::open(&dir).unwrap(), false)
        .run(
            items(6, None, &CancelToken::new(), &executed),
            &recorder,
            |_| flushes += 1,
        );
    assert!(out.is_complete());
    // 6 items in chunks of 2 → 3 flushes, each saved and narrated.
    assert_eq!(flushes, 3);
    assert_eq!(recorder.snapshot().counters.checkpoints_saved, 3);
    let _ = fs::remove_dir_all(&dir);
}
