//! The [`SweepSupervisor`]: drives a list of independent work items
//! through the core worker pool with per-item retry, a degradation chain,
//! periodic checkpoint flushes and partial-result emission.
//!
//! Each [`WorkItem`] carries a stable [`WorkKey`] and an ordered list of
//! [`Strategy`]s — the primary first, then progressively weaker fallbacks
//! (e.g. BS-SA → DALTA baseline). A strategy that fails (returns an error
//! or panics) is retried up to `max_retries` times with capped
//! exponential backoff and deterministic jitter derived from the run
//! seed; when its attempts are exhausted the item *degrades* to the next
//! strategy, and when no strategy remains it is recorded as a failed
//! placeholder. Every degradation is tagged in the output
//! ([`Degradation`]) so report tables can mark degraded cells.
//!
//! Items run in chunks of `threads` through
//! [`try_run_tasks`](dalut_core::parallel::try_run_tasks); after each
//! chunk the supervisor flushes a [`SweepSnapshot`] to its
//! [`CheckpointStore`] (crash-safe atomic writes, see
//! `dalut_core::checkpoint`) and hands the snapshot to the caller's
//! flush hook so binaries can write partial results JSON. A resumed run
//! (`--resume`) loads the newest valid checkpoint, skips completed items
//! and replays in-flight ones; because each item is deterministic given
//! its key, the merged output is bit-identical to an uninterrupted run.
//!
//! Cancellation (budget deadline or the [`shutdown`](crate::shutdown)
//! signal handler tripping the run's `CancelToken`) is checked between
//! attempts and between chunks: items interrupted mid-attempt are left
//! unrecorded so the resumed run replays them from scratch.

use dalut_core::checkpoint::{CheckpointStore, Degradation, SweepSnapshot, WorkKey, WorkRecord};
use dalut_core::parallel::try_run_tasks;
use dalut_core::{CancelToken, Observer, SearchEvent, Termination};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Why a strategy attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemError {
    /// The run was cancelled; the item must be left unrecorded so a
    /// resumed run replays it.
    Cancelled,
    /// The attempt failed; the supervisor may retry or degrade.
    Failed(String),
}

impl std::fmt::Display for ItemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Cancelled => write!(f, "cancelled"),
            Self::Failed(msg) => write!(f, "failed: {msg}"),
        }
    }
}

impl std::error::Error for ItemError {}

/// One way of producing an item's result. Strategies are attempted in
/// the order given; every strategy after the first is a *degradation*.
/// The closure receives the run's observer so searches inside it can
/// stream events.
pub struct Strategy<'a, R> {
    /// Label recorded in [`Degradation::Degraded`] and narrated on retry.
    pub label: String,
    /// Produces the result. Runs on a worker thread; may be called
    /// several times (retries), so `Fn` rather than `FnOnce`. Panics are
    /// caught and treated like `Err(ItemError::Failed)`.
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn Fn(&dyn Observer) -> Result<R, ItemError> + Send + Sync + 'a>,
}

impl<'a, R> Strategy<'a, R> {
    /// Builds a strategy from a label and a closure.
    pub fn new(
        label: impl Into<String>,
        run: impl Fn(&dyn Observer) -> Result<R, ItemError> + Send + Sync + 'a,
    ) -> Self {
        Self {
            label: label.into(),
            run: Box::new(run),
        }
    }
}

impl<R> std::fmt::Debug for Strategy<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Strategy")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// One independent unit of sweep work: a stable identity plus the chain
/// of strategies that can produce its result.
#[derive(Debug)]
pub struct WorkItem<'a, R> {
    /// Stable identity (benchmark × arch × seed × scale × config).
    pub key: WorkKey,
    /// Primary strategy first, then fallbacks. Must be non-empty.
    pub strategies: Vec<Strategy<'a, R>>,
}

impl<'a, R> WorkItem<'a, R> {
    /// Builds an item from its key and strategy chain.
    #[must_use]
    pub fn new(key: WorkKey, strategies: Vec<Strategy<'a, R>>) -> Self {
        Self { key, strategies }
    }
}

/// What a finished (or interrupted) supervised sweep produced.
#[derive(Debug)]
pub struct SupervisorOutcome<R> {
    /// Records for completed items, in the order the items were given.
    /// Interrupted runs omit the unfinished items.
    pub records: Vec<WorkRecord<R>>,
    /// `Completed` when every item finished, `Cancelled` otherwise.
    pub termination: Termination,
    /// Items answered from the loaded checkpoint rather than recomputed.
    pub resumed: usize,
}

impl<R> SupervisorOutcome<R> {
    /// Whether every submitted item has a record (i.e. the output is not
    /// partial).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.termination == Termination::Completed
    }
}

/// splitmix64: the deterministic jitter source for retry backoff.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives work items through the pool with retry, degradation,
/// checkpointing and cancellation. See the module docs for the model.
#[derive(Debug)]
pub struct SweepSupervisor {
    threads: usize,
    max_retries: u32,
    run_seed: u64,
    sweep_fingerprint: u64,
    cancel: CancelToken,
    store: Option<CheckpointStore>,
    resume: bool,
    backoff_base_ms: u64,
    backoff_cap_ms: u64,
}

impl SweepSupervisor {
    /// Creates a supervisor. `sweep_fingerprint` must cover everything
    /// that shapes results (scale, seed, params) — checkpoints from a
    /// differently-configured sweep are ignored, never merged.
    #[must_use]
    pub fn new(threads: usize, run_seed: u64, sweep_fingerprint: u64) -> Self {
        Self {
            threads: threads.max(1),
            max_retries: 2,
            run_seed,
            sweep_fingerprint,
            cancel: CancelToken::new(),
            store: None,
            resume: false,
            backoff_base_ms: 100,
            backoff_cap_ms: 2_000,
        }
    }

    /// Caps retries per strategy (`n` retries = `n + 1` attempts).
    #[must_use]
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Uses `token` for cancellation (share it with the run's
    /// `RunBudget` and the shutdown handler).
    #[must_use]
    pub fn cancel_token(mut self, token: &CancelToken) -> Self {
        self.cancel = token.clone();
        self
    }

    /// Checkpoints into `store` after every chunk; with `resume`, loads
    /// the newest valid checkpoint first and skips its completed items.
    #[must_use]
    pub fn checkpoints(mut self, store: CheckpointStore, resume: bool) -> Self {
        self.store = Some(store);
        self.resume = resume;
        self
    }

    /// Overrides the backoff schedule (for tests; defaults 100 ms base,
    /// 2 s cap).
    #[must_use]
    pub fn backoff_ms(mut self, base: u64, cap: u64) -> Self {
        self.backoff_base_ms = base;
        self.backoff_cap_ms = cap;
        self
    }

    /// Deterministic backoff before retrying `key` after `attempt`
    /// failures: capped exponential with ±25 % jitter drawn from the run
    /// seed and the key fingerprint (stable across resumes).
    fn backoff(&self, key: &WorkKey, attempt: u32) -> Duration {
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.min(10))
            .min(self.backoff_cap_ms);
        let jitter_seed = splitmix64(
            self.run_seed ^ key.config_fingerprint ^ u64::from(attempt).wrapping_mul(0xA5A5),
        );
        // jitter in [-25 %, +25 %] of the exponential step.
        let jitter = (jitter_seed % (exp / 2).max(1)) as i64 - (exp / 4) as i64;
        Duration::from_millis(exp.saturating_add_signed(jitter))
    }

    /// Runs one item to a record: strategy chain × retry loop. Returns
    /// `Err(Cancelled)` when interrupted, so the item stays unrecorded.
    fn run_item<R>(
        &self,
        item: &WorkItem<'_, R>,
        observer: &dyn Observer,
    ) -> Result<WorkRecord<R>, ItemError> {
        let mut attempts = 0u32;
        for (si, strategy) in item.strategies.iter().enumerate() {
            for retry in 0..=self.max_retries {
                if self.cancel.is_cancelled() {
                    return Err(ItemError::Cancelled);
                }
                attempts += 1;
                let outcome = catch_unwind(AssertUnwindSafe(|| (strategy.run)(observer)))
                    .unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        Err(ItemError::Failed(format!("panic: {msg}")))
                    });
                match outcome {
                    Ok(result) => {
                        let degradation = if si == 0 {
                            Degradation::None
                        } else {
                            Degradation::Degraded {
                                strategy: strategy.label.clone(),
                            }
                        };
                        return Ok(WorkRecord {
                            key: item.key.clone(),
                            degradation,
                            attempts,
                            result: Some(result),
                        });
                    }
                    Err(ItemError::Cancelled) => return Err(ItemError::Cancelled),
                    Err(ItemError::Failed(_)) if retry < self.max_retries => {
                        let backoff = self.backoff(&item.key, retry + 1);
                        observer.on_event(&SearchEvent::ItemRetried {
                            key: item.key.to_string(),
                            attempt: attempts,
                            backoff_ms: backoff.as_millis() as u64,
                        });
                        std::thread::sleep(backoff);
                    }
                    Err(ItemError::Failed(_)) => {}
                }
            }
            // This strategy is exhausted; narrate what comes next.
            observer.on_event(&SearchEvent::ItemDegraded {
                key: item.key.to_string(),
                strategy: item.strategies.get(si + 1).map(|s| s.label.clone()),
            });
        }
        Ok(WorkRecord {
            key: item.key.clone(),
            degradation: Degradation::Failed,
            attempts,
            result: None,
        })
    }

    /// Flushes `snapshot` to the checkpoint store (if any) and narrates.
    fn flush<R: Serialize>(&self, snapshot: &SweepSnapshot<R>, observer: &dyn Observer) {
        if let Some(store) = &self.store {
            match store.save(snapshot) {
                Ok(generation) => observer.on_event(&SearchEvent::CheckpointSaved {
                    generation,
                    completed: snapshot.completed.len(),
                }),
                Err(e) => eprintln!("warning: checkpoint flush failed: {e}"),
            }
        }
    }

    /// Runs `items` to completion (or cancellation). `on_flush` is called
    /// with the current snapshot after every checkpoint flush — binaries
    /// use it to write partial results JSON.
    ///
    /// Results come back in item order; cancelled/unfinished items are
    /// omitted (`termination` says whether the output is partial).
    pub fn run<R>(
        &self,
        items: Vec<WorkItem<'_, R>>,
        observer: &dyn Observer,
        mut on_flush: impl FnMut(&SweepSnapshot<R>),
    ) -> SupervisorOutcome<R>
    where
        R: Serialize + DeserializeOwned + Clone + Send + Sync,
    {
        let mut snapshot = SweepSnapshot::<R>::new(self.sweep_fingerprint);
        let mut resumed = 0usize;
        if self.resume {
            if let Some(store) = &self.store {
                match store.load::<SweepSnapshot<R>>() {
                    Ok(Some(loaded)) if loaded.snapshot.sweep_fingerprint == self.sweep_fingerprint => {
                        observer.on_event(&SearchEvent::CheckpointLoaded {
                            generation: loaded.generation,
                            completed: loaded.snapshot.completed.len(),
                            in_flight: loaded.snapshot.in_flight.len(),
                        });
                        snapshot.completed = loaded.snapshot.completed;
                    }
                    Ok(Some(_)) => eprintln!(
                        "warning: checkpoint belongs to a differently-configured sweep; starting fresh"
                    ),
                    Ok(None) => {}
                    Err(e) => eprintln!("warning: checkpoint load failed ({e}); starting fresh"),
                }
            }
        }

        // Keep only records for keys this sweep actually contains.
        let wanted: HashMap<&WorkKey, usize> = items
            .iter()
            .enumerate()
            .map(|(i, it)| (&it.key, i))
            .collect();
        snapshot.completed.retain(|r| wanted.contains_key(&r.key));
        resumed += snapshot.completed.len();

        let pending: Vec<&WorkItem<'_, R>> = items
            .iter()
            .filter(|it| snapshot.find(&it.key).is_none())
            .collect();

        let mut cancelled = self.cancel.is_cancelled();
        for chunk in pending.chunks(self.threads) {
            if cancelled || self.cancel.is_cancelled() {
                cancelled = true;
                break;
            }
            snapshot.in_flight = chunk.iter().map(|it| it.key.clone()).collect();
            let tasks: Vec<_> = chunk
                .iter()
                .map(|item| move || self.run_item(item, observer))
                .collect();
            for slot in try_run_tasks(tasks, self.threads) {
                match slot {
                    Ok(Ok(record)) => snapshot.completed.push(record),
                    // Interrupted mid-attempt: left unrecorded, replayed
                    // on resume.
                    Ok(Err(ItemError::Cancelled)) => cancelled = true,
                    Ok(Err(ItemError::Failed(msg))) => {
                        // run_item never returns bare Failed, but keep the
                        // sweep alive if that ever changes.
                        eprintln!("warning: item failed outside retry loop: {msg}");
                    }
                    // A panic in supervisor bookkeeping itself (strategy
                    // panics are caught inside run_item).
                    Err(p) => eprintln!("warning: supervised task panicked: {p}"),
                }
            }
            snapshot.in_flight.clear();
            self.flush(&snapshot, observer);
            on_flush(&snapshot);
        }
        if cancelled || self.cancel.is_cancelled() {
            cancelled = true;
            // Final flush so a resumed run starts from the latest state.
            snapshot.in_flight.clear();
            self.flush(&snapshot, observer);
            on_flush(&snapshot);
        }

        // Records in item order.
        let mut by_key: HashMap<WorkKey, WorkRecord<R>> = snapshot
            .completed
            .into_iter()
            .map(|r| (r.key.clone(), r))
            .collect();
        let records: Vec<WorkRecord<R>> = items
            .iter()
            .filter_map(|it| by_key.remove(&it.key))
            .collect();
        let termination = if cancelled && records.len() < items.len() {
            Termination::Cancelled
        } else {
            Termination::Completed
        };
        SupervisorOutcome {
            records,
            termination,
            resumed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_core::NoopObserver;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn key(name: &str, seed: u64) -> WorkKey {
        WorkKey::new(name, "test", seed, "unit", &"cfg")
    }

    #[test]
    fn runs_items_and_keeps_order() {
        let sup = SweepSupervisor::new(2, 7, 1).backoff_ms(0, 0);
        let items: Vec<WorkItem<'_, u64>> = (0..5)
            .map(|i| {
                WorkItem::new(
                    key("item", i),
                    vec![Strategy::new("primary", move |_: &dyn Observer| Ok(i * 10))],
                )
            })
            .collect();
        let out = sup.run(items, &NoopObserver, |_| {});
        assert!(out.is_complete());
        assert_eq!(out.resumed, 0);
        let values: Vec<u64> = out.records.iter().map(|r| r.result.unwrap()).collect();
        assert_eq!(values, vec![0, 10, 20, 30, 40]);
        assert!(out
            .records
            .iter()
            .all(|r| r.degradation == Degradation::None));
    }

    #[test]
    fn retries_then_degrades_then_fails() {
        let sup = SweepSupervisor::new(1, 7, 1)
            .max_retries(1)
            .backoff_ms(0, 0);
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let flaky = WorkItem::new(
            key("flaky", 0),
            vec![Strategy::new("primary", move |_: &dyn Observer| {
                // Fails once, succeeds on the retry.
                if c.fetch_add(1, Ordering::SeqCst) == 0 {
                    Err(ItemError::Failed("transient".into()))
                } else {
                    Ok(1u64)
                }
            })],
        );
        let degrading = WorkItem::new(
            key("degrading", 1),
            vec![
                Strategy::new("primary", |_: &dyn Observer| {
                    Err(ItemError::Failed("always".into()))
                }),
                Strategy::new("fallback", |_: &dyn Observer| Ok(2u64)),
            ],
        );
        let hopeless = WorkItem::new(
            key("hopeless", 2),
            vec![Strategy::new(
                "primary",
                |_: &dyn Observer| -> Result<u64, ItemError> { panic!("boom") },
            )],
        );
        let out = sup.run(vec![flaky, degrading, hopeless], &NoopObserver, |_| {});
        assert!(out.is_complete());
        assert_eq!(out.records[0].result, Some(1));
        assert_eq!(out.records[0].attempts, 2);
        assert_eq!(
            out.records[1].degradation,
            Degradation::Degraded {
                strategy: "fallback".into()
            }
        );
        assert_eq!(out.records[1].result, Some(2));
        assert_eq!(out.records[2].degradation, Degradation::Failed);
        assert_eq!(out.records[2].result, None);
        assert_eq!(out.records[2].attempts, 2); // 1 + 1 retry, both panicking
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let sup = SweepSupervisor::new(1, 42, 0).backoff_ms(100, 2_000);
        let k = key("b", 0);
        let a = sup.backoff(&k, 1);
        let b = sup.backoff(&k, 1);
        assert_eq!(a, b, "same seed, key and attempt => same backoff");
        for attempt in 1..12 {
            let d = sup.backoff(&k, attempt).as_millis() as u64;
            assert!(d <= 2_500, "cap plus jitter bound, got {d}");
        }
        let other = SweepSupervisor::new(1, 43, 0).backoff_ms(100, 2_000);
        // Different run seed shifts the jitter (almost surely).
        assert_ne!(sup.backoff(&k, 3), other.backoff(&k, 3));
    }

    #[test]
    fn cancelled_supervisor_reports_partial() {
        let token = CancelToken::new();
        let sup = SweepSupervisor::new(1, 7, 1)
            .cancel_token(&token)
            .backoff_ms(0, 0);
        let t = token.clone();
        let items: Vec<WorkItem<'_, u64>> = (0..4)
            .map(|i| {
                let t = t.clone();
                WorkItem::new(
                    key("c", i),
                    vec![Strategy::new("primary", move |_: &dyn Observer| {
                        if i == 1 {
                            t.cancel();
                        }
                        Ok(i)
                    })],
                )
            })
            .collect();
        let out = sup.run(items, &NoopObserver, |_| {});
        assert_eq!(out.termination, Termination::Cancelled);
        assert!(out.records.len() < 4);
    }
}
