//! Fault-injection sweep over the five Fig. 5 architectures: corrupts
//! the stored sub-table/configuration bits of each built instance at
//! increasing upset probabilities (plus one stuck-at, one burst and one
//! transient campaign) and reports the MED / error-rate degradation
//! relative to each instance's own fault-free behaviour.
//!
//! Writes `results/fault_sweep.json` at the repository root. The
//! configuration searches run under a wall-clock budget, so the sweep
//! starts from best-so-far configurations even on a slow machine.
//!
//! Run with `cargo run -p dalut-bench --release --bin faultsweep`.
//! Accepts the usual harness flags (`--seed`, `--scale`), plus the
//! observability surface: `--metrics` embeds a metrics snapshot in the
//! JSON report, `--trace PATH` streams search and sweep-progress events,
//! `--progress` narrates the sweep on stderr and `--budget-secs S`
//! overrides the default 60 s per-search deadline.
//!
//! Each architecture's fault campaign is one supervised work item, and
//! partial results stream through the supervisor's flush hook: an
//! interrupted sweep (SIGINT/SIGTERM, or `--budget-secs` expiring)
//! still leaves a valid `fault_sweep.json` marked `"partial": true`,
//! and `--checkpoint-dir` + `--resume` picks up where it stopped.

use dalut_bench::report::{f3, write_json};
use dalut_bench::setup::{bssa_params, dalta_params, round_in_w};
use dalut_bench::supervisor::{ItemError, Strategy, WorkItem};
use dalut_bench::{shutdown, HarnessArgs, Observation, Table};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::{metrics, InputDistribution, TruthTable};
use dalut_core::checkpoint::{fingerprint, WorkKey, WorkRecord};
use dalut_core::{
    ApproxLutBuilder, ArchPolicy, CancelToken, MetricsSnapshot, Observer, RunBudget, SearchEvent,
    Termination,
};
use dalut_hw::{
    build_approx_lut, build_round_in, build_round_out, round_out_table, ArchInstance, ArchStyle,
    FaultCampaign, FaultModel, FaultReport,
};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Duration;

/// SEU flip probabilities swept per architecture.
const PROBABILITIES: [f64; 5] = [1e-4, 1e-3, 1e-2, 5e-2, 1e-1];
/// Independent corruption trials per (architecture, model) pair.
const TRIALS: usize = 16;
/// Wall-clock budget for each configuration search.
const SEARCH_DEADLINE: Duration = Duration::from_secs(60);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArchSweep {
    arch: String,
    stored_bits: usize,
    reports: Vec<FaultReport>,
}

#[derive(Debug, Serialize)]
struct Sweep {
    schema: String,
    benchmark: String,
    scale_bits: usize,
    seed: u64,
    trials: usize,
    /// `true` while architectures are still outstanding (interrupted
    /// sweep — resume with `--checkpoint-dir ... --resume`).
    partial: bool,
    archs: Vec<ArchSweep>,
    #[serde(skip_serializing_if = "Option::is_none")]
    metrics: Option<MetricsSnapshot>,
}

/// Smallest RoundOut `q` whose MED exceeds the DALTA reference (the
/// paper's per-benchmark adjustment, as in `fig5`).
fn choose_q(target: &TruthTable, dist: &InputDistribution, dalta_med: f64) -> usize {
    for q in 1..target.outputs() {
        let r = round_out_table(target, q).expect("same dims");
        if metrics::med(target, &r, dist).expect("same dims") > dalta_med {
            return q;
        }
    }
    target.outputs() - 1
}

/// Runs one architecture's full fault campaign (SEU sweep + stuck-at +
/// burst + transient). Deterministic given (`base_seed`, `ai`), so a replayed item
/// reproduces the interrupted run's numbers exactly.
fn sweep_arch(
    name: &str,
    inst: &ArchInstance,
    ai: usize,
    base_seed: u64,
    cancel: &CancelToken,
    observer: &dyn Observer,
) -> Result<ArchSweep, ItemError> {
    let mut models: Vec<FaultModel> = PROBABILITIES
        .iter()
        .map(|&probability| FaultModel::Seu { probability })
        .collect();
    models.push(FaultModel::StuckAt {
        probability: 1e-2,
        value: false,
    });
    models.push(FaultModel::Burst {
        probability: 1e-2,
        length: 4,
    });
    models.push(FaultModel::Transient {
        probability: 1e-2,
        duration: 16,
    });
    let total = models.len();
    // The fault-free golden outputs depend only on the instance, so the
    // exhaustive baseline simulation is hoisted out of the model loop:
    // one campaign serves all eight corruption models.
    let campaign = FaultCampaign::new(inst).map_err(|e| ItemError::Failed(e.to_string()))?;
    let mut reports = Vec::new();
    for (mi, model) in models.iter().enumerate() {
        if cancel.is_cancelled() {
            return Err(ItemError::Cancelled);
        }
        let seed = base_seed
            .wrapping_add(1000 * ai as u64)
            .wrapping_add(mi as u64);
        let rep = campaign
            .report_observed(model, TRIALS, seed, observer)
            .map_err(|e| ItemError::Failed(e.to_string()))?;
        reports.push(rep);
        observer.on_event(&SearchEvent::FaultSweepProgress {
            arch: name.to_string(),
            completed: mi + 1,
            total,
        });
    }
    Ok(ArchSweep {
        arch: name.to_string(),
        stored_bits: inst.presets().len(),
        reports,
    })
}

fn run() -> Result<Termination, Box<dyn std::error::Error>> {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args)?;
    let token = CancelToken::new();
    shutdown::install(&token);
    let scale_bits = args.scale_bits.min(8);
    let target = Benchmark::Cos.table(Scale::Reduced(scale_bits))?;
    let n = target.inputs();
    let dist = InputDistribution::uniform(n)?;
    let budget = match args.budget_secs {
        Some(_) => args.budget(),
        None => RunBudget::unlimited().with_deadline(SEARCH_DEADLINE),
    }
    .with_cancel(&token);
    eprintln!("faultsweep: {} at {n} bits", Benchmark::Cos.name());
    let out_path = args.out_path(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/fault_sweep.json"
    ));
    let write_sweep = |archs: Vec<ArchSweep>, partial: bool, metrics: Option<MetricsSnapshot>| {
        let sweep = Sweep {
            schema: "dalut-faultsweep/v3".to_string(),
            benchmark: Benchmark::Cos.name().to_string(),
            scale_bits,
            seed: args.seed,
            trials: TRIALS,
            partial,
            archs,
            metrics,
        };
        write_json(&out_path, &sweep)
    };

    // --- Configure the three decomposition architectures (budgeted).
    // These search runs are deterministic for a fixed seed, so a resumed
    // sweep re-derives the same instances rather than checkpointing them.
    let mut dp = dalta_params(&args, n);
    dp.search.seed = args.seed;
    let dalta = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .dalta(dp)
        .budget(budget.clone())
        .observer(obs.observer())
        .run()?;
    let mut bp = bssa_params(&args, n);
    bp.search.seed = args.seed;
    let bn = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .bs_sa(bp)
        .policy(ArchPolicy::bto_normal_paper())
        .budget(budget.clone())
        .observer(obs.observer())
        .run()?;
    let bnnd = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .bs_sa(bp)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .budget(budget.clone())
        .observer(obs.observer())
        .run()?;
    for (name, out) in [
        ("DALTA", &dalta),
        ("BTO-Normal", &bn),
        ("BTO-Normal-ND", &bnnd),
    ] {
        if out.termination.is_early() {
            eprintln!(
                "  note: {name} search stopped early ({:?})",
                out.termination
            );
        }
    }
    if token.is_cancelled() {
        // Interrupted before any campaign: still leave a parseable,
        // partial-marked report.
        if let Some(signal) = shutdown::take_requested_signal() {
            obs.emit(&SearchEvent::ShutdownRequested {
                signal: signal.to_string(),
            });
        }
        obs.finish()?;
        write_sweep(Vec::new(), true, obs.metrics_snapshot())?;
        eprintln!("wrote {} (partial)", out_path.display());
        return Ok(Termination::Cancelled);
    }

    // --- Build the five instances. ---
    let q = choose_q(&target, &dist, dalta.med);
    let w = round_in_w(n);
    let instances: Vec<(&str, ArchInstance)> = vec![
        ("RoundOut", build_round_out(&target, q)),
        ("RoundIn", build_round_in(&target, w)),
        ("DALTA", build_approx_lut(&dalta.config, ArchStyle::Dalta)?),
        (
            "BTO-Normal",
            build_approx_lut(&bn.config, ArchStyle::BtoNormal)?,
        ),
        (
            "BTO-Normal-ND",
            build_approx_lut(&bnnd.config, ArchStyle::BtoNormalNd)?,
        ),
    ];

    // --- Fault campaigns: one supervised item per architecture, partial
    // results streamed to disk after every item. ---
    let scale_label = format!("reduced-{scale_bits}");
    let items: Vec<WorkItem<'_, ArchSweep>> = instances
        .iter()
        .enumerate()
        .map(|(ai, (name, inst))| {
            let token = &token;
            WorkItem::new(
                WorkKey::new(
                    Benchmark::Cos.name(),
                    *name,
                    args.seed,
                    &scale_label,
                    &(TRIALS, &PROBABILITIES),
                ),
                vec![Strategy::new(*name, move |o: &dyn Observer| {
                    sweep_arch(name, inst, ai, args.seed, token, o)
                })],
            )
        })
        .collect();
    let total = items.len();
    let sweep_fp = fingerprint(&format!(
        "faultsweep/{scale_label}/seed{}/trials{TRIALS}",
        args.seed
    ));
    let supervisor = args.supervisor(sweep_fp, &token)?;
    let to_archs = |records: &[WorkRecord<ArchSweep>]| -> Vec<ArchSweep> {
        records.iter().filter_map(|r| r.result.clone()).collect()
    };
    let outcome = supervisor.run(items, obs.observer(), |snapshot| {
        if let Err(e) = write_sweep(
            to_archs(&snapshot.completed),
            snapshot.completed.len() < total,
            None,
        ) {
            eprintln!("warning: partial results write failed: {e}");
        }
    });
    if let Some(signal) = shutdown::take_requested_signal() {
        obs.emit(&SearchEvent::ShutdownRequested {
            signal: signal.to_string(),
        });
    }
    if outcome.resumed > 0 {
        eprintln!(
            "faultsweep: resumed {} of {total} architectures from checkpoint",
            outcome.resumed
        );
    }

    let mut table = Table::new(&["architecture", "model", "p", "MED", "error-rate", "max-ED"]);
    let archs = to_archs(&outcome.records);
    for sweep in &archs {
        for rep in &sweep.reports {
            table.row(vec![
                sweep.arch.clone(),
                rep.model.clone(),
                format!("{:.0e}", rep.probability),
                f3(rep.med),
                f3(rep.error_rate),
                rep.max_ed.to_string(),
            ]);
        }
    }
    println!("\nFault-injection degradation (vs each fault-free instance).\n");
    println!("{}", table.render());
    obs.finish()?;
    let partial = !outcome.is_complete();
    write_sweep(archs, partial, obs.metrics_snapshot())?;
    eprintln!(
        "wrote {}{}",
        out_path.display(),
        if partial { " (partial)" } else { "" }
    );
    Ok(outcome.termination)
}

fn main() -> ExitCode {
    match run() {
        Ok(Termination::Completed) => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!("faultsweep: interrupted — resume with --checkpoint-dir ... --resume");
            ExitCode::from(130)
        }
        Err(e) => {
            eprintln!("faultsweep: {e}");
            ExitCode::FAILURE
        }
    }
}
