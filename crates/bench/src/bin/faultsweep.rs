//! Fault-injection sweep over the five Fig. 5 architectures: corrupts
//! the stored sub-table/configuration bits of each built instance at
//! increasing upset probabilities (plus one stuck-at and one burst
//! campaign) and reports the MED / error-rate degradation relative to
//! each instance's own fault-free behaviour.
//!
//! Writes `results/fault_sweep.json` at the repository root. The
//! configuration searches run under a wall-clock budget, so the sweep
//! starts from best-so-far configurations even on a slow machine.
//!
//! Run with `cargo run -p dalut-bench --release --bin faultsweep`.
//! Accepts the usual harness flags (`--seed`, `--scale`), plus the
//! observability surface: `--metrics` embeds a metrics snapshot in the
//! JSON report, `--trace PATH` streams search and sweep-progress events,
//! `--progress` narrates the sweep on stderr and `--budget-secs S`
//! overrides the default 60 s per-search deadline.

use dalut_bench::report::{f3, write_json};
use dalut_bench::setup::{bssa_params, dalta_params, round_in_w};
use dalut_bench::{HarnessArgs, Observation, Table};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::{metrics, InputDistribution, TruthTable};
use dalut_core::{ApproxLutBuilder, ArchPolicy, MetricsSnapshot, RunBudget, SearchEvent};
use dalut_hw::{
    build_approx_lut, build_round_in, build_round_out, fault_report, round_out_table, ArchInstance,
    ArchStyle, FaultModel, FaultReport,
};
use serde::Serialize;
use std::process::ExitCode;
use std::time::Duration;

/// SEU flip probabilities swept per architecture.
const PROBABILITIES: [f64; 5] = [1e-4, 1e-3, 1e-2, 5e-2, 1e-1];
/// Independent corruption trials per (architecture, model) pair.
const TRIALS: usize = 16;
/// Wall-clock budget for each configuration search.
const SEARCH_DEADLINE: Duration = Duration::from_secs(60);

#[derive(Debug, Serialize)]
struct ArchSweep {
    arch: String,
    stored_bits: usize,
    reports: Vec<FaultReport>,
}

#[derive(Debug, Serialize)]
struct Sweep {
    schema: String,
    benchmark: String,
    scale_bits: usize,
    seed: u64,
    trials: usize,
    archs: Vec<ArchSweep>,
    #[serde(skip_serializing_if = "Option::is_none")]
    metrics: Option<MetricsSnapshot>,
}

/// Smallest RoundOut `q` whose MED exceeds the DALTA reference (the
/// paper's per-benchmark adjustment, as in `fig5`).
fn choose_q(target: &TruthTable, dist: &InputDistribution, dalta_med: f64) -> usize {
    for q in 1..target.outputs() {
        let r = round_out_table(target, q).expect("same dims");
        if metrics::med(target, &r, dist).expect("same dims") > dalta_med {
            return q;
        }
    }
    target.outputs() - 1
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args)?;
    let scale_bits = args.scale_bits.min(8);
    let target = Benchmark::Cos.table(Scale::Reduced(scale_bits))?;
    let n = target.inputs();
    let dist = InputDistribution::uniform(n)?;
    let budget = match args.budget_secs {
        Some(_) => args.budget(),
        None => RunBudget::unlimited().with_deadline(SEARCH_DEADLINE),
    };
    eprintln!("faultsweep: {} at {n} bits", Benchmark::Cos.name());

    // --- Configure the three decomposition architectures (budgeted). ---
    let mut dp = dalta_params(&args, n);
    dp.search.seed = args.seed;
    let dalta = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .dalta(dp)
        .budget(budget.clone())
        .observer(obs.observer())
        .run()?;
    let mut bp = bssa_params(&args, n);
    bp.search.seed = args.seed;
    let bn = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .bs_sa(bp)
        .policy(ArchPolicy::bto_normal_paper())
        .budget(budget.clone())
        .observer(obs.observer())
        .run()?;
    let bnnd = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .bs_sa(bp)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .budget(budget)
        .observer(obs.observer())
        .run()?;
    for (name, out) in [
        ("DALTA", &dalta),
        ("BTO-Normal", &bn),
        ("BTO-Normal-ND", &bnnd),
    ] {
        if out.termination.is_early() {
            eprintln!(
                "  note: {name} search stopped early ({:?})",
                out.termination
            );
        }
    }

    // --- Build the five instances. ---
    let q = choose_q(&target, &dist, dalta.med);
    let w = round_in_w(n);
    let instances: Vec<(&str, ArchInstance)> = vec![
        ("RoundOut", build_round_out(&target, q)),
        ("RoundIn", build_round_in(&target, w)),
        ("DALTA", build_approx_lut(&dalta.config, ArchStyle::Dalta)?),
        (
            "BTO-Normal",
            build_approx_lut(&bn.config, ArchStyle::BtoNormal)?,
        ),
        (
            "BTO-Normal-ND",
            build_approx_lut(&bnnd.config, ArchStyle::BtoNormalNd)?,
        ),
    ];

    // --- Fault campaigns: SEU sweep + one stuck-at + one burst. ---
    let mut table = Table::new(&["architecture", "model", "p", "MED", "error-rate", "max-ED"]);
    let mut archs = Vec::new();
    for (ai, (name, inst)) in instances.iter().enumerate() {
        let mut models: Vec<FaultModel> = PROBABILITIES
            .iter()
            .map(|&probability| FaultModel::Seu { probability })
            .collect();
        models.push(FaultModel::StuckAt {
            probability: 1e-2,
            value: false,
        });
        models.push(FaultModel::Burst {
            probability: 1e-2,
            length: 4,
        });
        let mut reports = Vec::new();
        let total = models.len();
        for (mi, model) in models.iter().enumerate() {
            let seed = args
                .seed
                .wrapping_add(1000 * ai as u64)
                .wrapping_add(mi as u64);
            let rep = fault_report(inst, model, TRIALS, seed)?;
            table.row(vec![
                name.to_string(),
                rep.model.clone(),
                format!("{:.0e}", rep.probability),
                f3(rep.med),
                f3(rep.error_rate),
                rep.max_ed.to_string(),
            ]);
            reports.push(rep);
            obs.emit(&SearchEvent::FaultSweepProgress {
                arch: name.to_string(),
                completed: mi + 1,
                total,
            });
        }
        archs.push(ArchSweep {
            arch: name.to_string(),
            stored_bits: inst.presets().len(),
            reports,
        });
    }

    println!("\nFault-injection degradation (vs each fault-free instance).\n");
    println!("{}", table.render());
    let sweep = Sweep {
        schema: "dalut-faultsweep/v2".to_string(),
        benchmark: Benchmark::Cos.name().to_string(),
        scale_bits,
        seed: args.seed,
        trials: TRIALS,
        archs,
        metrics: obs.metrics_snapshot(),
    };
    let path = args.out_path(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/fault_sweep.json"
    ));
    obs.finish()?;
    write_json(&path, &sweep)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("faultsweep: {e}");
            ExitCode::FAILURE
        }
    }
}
