//! Regenerates **Table II**: DALTA's algorithm vs BS-SA — minimum,
//! average and standard deviation of the MED plus average runtime over
//! repeated runs, per benchmark, with geometric-mean summary rows.
//!
//! The paper's headline: BS-SA reduces the minimum MED by 11.1 % and the
//! standard deviation by 97.1 % using about half of DALTA's runtime.

use dalut_bench::report::{f2, write_json};
use dalut_bench::setup::{bssa_params, dalta_params};
use dalut_bench::{geomean, HarnessArgs, Observation, RunStats, Table};
use dalut_benchfns::Benchmark;
use dalut_boolfn::InputDistribution;
use dalut_core::{ApproxLutBuilder, ArchPolicy};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct BenchResult {
    benchmark: String,
    dalta_med: Vec<f64>,
    dalta_secs: Vec<f64>,
    bssa_med: Vec<f64>,
    bssa_secs: Vec<f64>,
}

fn main() {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).expect("observation set up");
    let scale = args.scale();
    let runs = args.effective_runs();
    eprintln!(
        "table2: scale {scale:?}, {runs} runs per algorithm{}",
        if args.full { " (paper parameters)" } else { "" }
    );

    let mut results: Vec<BenchResult> = Vec::new();
    for bench in Benchmark::all() {
        if let Some(only) = &args.only {
            if !bench.name().eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let target = bench.table(scale).expect("benchmark builds");
        let dist = InputDistribution::uniform(target.inputs()).expect("valid width");
        let mut r = BenchResult {
            benchmark: bench.name().to_string(),
            dalta_med: Vec::new(),
            dalta_secs: Vec::new(),
            bssa_med: Vec::new(),
            bssa_secs: Vec::new(),
        };
        for run in 0..runs {
            let seed = args.seed + 1000 * run as u64;
            let mut dp = dalta_params(&args, target.inputs());
            dp.search.seed = seed;
            let out = ApproxLutBuilder::new(&target)
                .distribution(dist.clone())
                .dalta(dp)
                .budget(args.budget())
                .observer(obs.observer())
                .run()
                .expect("dalta runs");
            r.dalta_med.push(out.med);
            r.dalta_secs.push(out.elapsed.as_secs_f64());

            let mut bp = bssa_params(&args, target.inputs());
            bp.search.seed = seed;
            // Table II compares the normal mode only (as the paper does,
            // since DALTA has no other mode).
            let out = ApproxLutBuilder::new(&target)
                .distribution(dist.clone())
                .bs_sa(bp)
                .policy(ArchPolicy::NormalOnly)
                .budget(args.budget())
                .observer(obs.observer())
                .run()
                .expect("bs-sa runs");
            r.bssa_med.push(out.med);
            r.bssa_secs.push(out.elapsed.as_secs_f64());
            eprintln!(
                "  {} run {}: DALTA med {:.4}, BS-SA med {:.4}",
                bench.name(),
                run + 1,
                r.dalta_med.last().unwrap(),
                r.bssa_med.last().unwrap()
            );
        }
        results.push(r);
    }

    let mut table = Table::new(&[
        "benchmark",
        "DALTA Min",
        "DALTA Avg",
        "DALTA Stdev",
        "DALTA Time(s)",
        "BS-SA Min",
        "BS-SA Avg",
        "BS-SA Stdev",
        "BS-SA Time(s)",
    ]);
    let mut cols: [Vec<f64>; 8] = Default::default();
    for r in &results {
        let d = RunStats::from_samples(&r.dalta_med);
        let b = RunStats::from_samples(&r.bssa_med);
        let dt = r.dalta_secs.iter().sum::<f64>() / r.dalta_secs.len() as f64;
        let bt = r.bssa_secs.iter().sum::<f64>() / r.bssa_secs.len() as f64;
        for (c, v) in cols
            .iter_mut()
            .zip([d.min, d.avg, d.stdev, dt, b.min, b.avg, b.stdev, bt])
        {
            c.push(v);
        }
        table.row(vec![
            r.benchmark.clone(),
            f2(d.min),
            f2(d.avg),
            f2(d.stdev),
            f2(dt),
            f2(b.min),
            f2(b.avg),
            f2(b.stdev),
            f2(bt),
        ]);
    }
    if results.len() > 1 {
        let g: Vec<f64> = cols.iter().map(|c| geomean(c)).collect();
        table.row(
            std::iter::once("GEOMEAN".to_string())
                .chain(g.iter().map(|&v| f2(v)))
                .collect(),
        );
        println!("\nTable II. Comparison of DALTA's algorithm and BS-SA.\n");
        println!("{}", table.render());
        println!(
            "BS-SA vs DALTA (geomean): min MED {:+.1}%, stdev {:+.1}%, runtime {:.2}x",
            (g[4] / g[0] - 1.0) * 100.0,
            (g[6] / g[2] - 1.0) * 100.0,
            g[7] / g[3],
        );
    } else {
        println!("{}", table.render());
    }
    obs.finish().expect("flush trace");
    let path = args.out_path("table2_results.json");
    write_json(&path, &results).expect("write results");
    eprintln!("wrote {}", path.display());
}
