//! Regenerates **Table II**: DALTA's algorithm vs BS-SA — minimum,
//! average and standard deviation of the MED plus average runtime over
//! repeated runs, per benchmark, with geometric-mean summary rows.
//!
//! The paper's headline: BS-SA reduces the minimum MED by 11.1 % and the
//! standard deviation by 97.1 % using about half of DALTA's runtime.
//!
//! Each (benchmark × algorithm × run) is one supervised work item:
//! `--checkpoint-dir` makes the sweep crash-safe, `--resume` skips
//! already-finished items, failed BS-SA items degrade to the DALTA
//! baseline (marked in the JSON), and SIGINT/SIGTERM winds the sweep
//! down with best-so-far results (exit nonzero, JSON marked partial).

use dalut_bench::report::{f2, write_json};
use dalut_bench::setup::{benchfns_resolver, bssa_spec, dalta_spec};
use dalut_bench::supervisor::{ItemError, Strategy, WorkItem};
use dalut_bench::{geomean, shutdown, HarnessArgs, Observation, RunStats, Table};
use dalut_benchfns::Benchmark;
use dalut_core::checkpoint::{fingerprint, WorkKey, WorkRecord};
use dalut_core::{
    ApproxLutBuilder, ArchPolicy, CancelToken, JobSpec, Observer, SearchEvent, Termination,
};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

/// One supervised item's result (one search run).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RunResult {
    med: f64,
    secs: f64,
}

#[derive(Debug, Serialize)]
struct BenchResult {
    benchmark: String,
    dalta_med: Vec<f64>,
    dalta_secs: Vec<f64>,
    bssa_med: Vec<f64>,
    bssa_secs: Vec<f64>,
    /// Per-run flag: `true` when the BS-SA cell was answered by a
    /// degraded strategy (DALTA fallback) instead of BS-SA itself.
    bssa_degraded: Vec<bool>,
}

#[derive(Debug, Serialize)]
struct Table2Report {
    schema: String,
    /// `true` while items are still outstanding (interrupted sweep).
    partial: bool,
    results: Vec<BenchResult>,
}

/// One benchmark prepared for the sweep.
struct Prepared {
    name: String,
}

/// Runs one job described by its canonical [`JobSpec`] — the same type
/// `dalut-serve` accepts over the wire, so a sweep cell here and a
/// server submission with the same spec produce the same outcome.
fn search_once(
    spec: &JobSpec,
    token: &CancelToken,
    observer: &dyn Observer,
) -> Result<RunResult, ItemError> {
    let canonical = spec
        .canonicalize(&benchfns_resolver())
        .map_err(|e| ItemError::Failed(e.to_string()))?;
    let out = ApproxLutBuilder::from_spec(&canonical)
        .map_err(|e| ItemError::Failed(e.to_string()))?
        .budget(canonical.budget.to_budget().with_cancel(token))
        .observer(observer)
        .run()
        .map_err(|e| ItemError::Failed(e.to_string()))?;
    // A cancelled search carries only best-so-far state: leave the item
    // unrecorded so a resumed run replays it and stays bit-identical.
    if out.termination == Termination::Cancelled {
        return Err(ItemError::Cancelled);
    }
    Ok(RunResult {
        med: out.med,
        secs: out.elapsed.as_secs_f64(),
    })
}

/// Groups supervised records back into per-benchmark rows, preserving
/// run order. Records live under keys `arch = "dalta" | "bs-sa"`.
fn group(prepared: &[Prepared], records: &[WorkRecord<RunResult>], partial: bool) -> Table2Report {
    let results = prepared
        .iter()
        .map(|p| {
            let mut r = BenchResult {
                benchmark: p.name.clone(),
                dalta_med: Vec::new(),
                dalta_secs: Vec::new(),
                bssa_med: Vec::new(),
                bssa_secs: Vec::new(),
                bssa_degraded: Vec::new(),
            };
            for rec in records.iter().filter(|rec| rec.key.benchmark == p.name) {
                let Some(result) = &rec.result else { continue };
                match rec.key.arch.as_str() {
                    "dalta" => {
                        r.dalta_med.push(result.med);
                        r.dalta_secs.push(result.secs);
                    }
                    _ => {
                        r.bssa_med.push(result.med);
                        r.bssa_secs.push(result.secs);
                        r.bssa_degraded.push(rec.degradation.is_degraded());
                    }
                }
            }
            r
        })
        .collect();
    Table2Report {
        schema: "dalut-table2/v2".to_string(),
        partial,
        results,
    }
}

fn main() -> ExitCode {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).expect("observation set up");
    let scale = args.scale();
    let runs = args.effective_runs();
    let token = CancelToken::new();
    shutdown::install(&token);
    eprintln!(
        "table2: scale {scale:?}, {runs} runs per algorithm{}",
        if args.full { " (paper parameters)" } else { "" }
    );

    let benches: Vec<Benchmark> = Benchmark::all()
        .into_iter()
        .filter(|bench| {
            args.only
                .as_ref()
                .is_none_or(|only| bench.name().eq_ignore_ascii_case(only))
        })
        .collect();
    let prepared: Vec<Prepared> = benches
        .iter()
        .map(|bench| Prepared {
            name: bench.name().to_string(),
        })
        .collect();

    let scale_label = format!("{scale:?}");
    // Each sweep cell is one JobSpec: the same description a client
    // would send to dalut-serve. Specs are built once and owned by a
    // side vector so the item closures can borrow them.
    let mut specs: Vec<(JobSpec, JobSpec)> = Vec::new();
    for &bench in &benches {
        for run in 0..runs {
            let seed = args.seed + 1000 * run as u64;
            specs.push((
                dalta_spec(&args, bench, scale, seed),
                bssa_spec(&args, bench, scale, ArchPolicy::NormalOnly, seed),
            ));
        }
    }
    let mut items: Vec<WorkItem<'_, RunResult>> = Vec::new();
    for (i, &bench) in benches.iter().enumerate() {
        for run in 0..runs {
            let seed = args.seed + 1000 * run as u64;
            let (dspec, bspec) = &specs[i * runs + run];
            let tok = &token;
            items.push(WorkItem::new(
                WorkKey::new(bench.name(), "dalta", seed, &scale_label, dspec),
                vec![Strategy::new("dalta", move |o: &dyn Observer| {
                    search_once(dspec, tok, o)
                })],
            ));
            // Table II compares the normal mode only (as the paper does,
            // since DALTA has no other mode). BS-SA degrades to the
            // DALTA baseline after repeated failure.
            items.push(WorkItem::new(
                WorkKey::new(bench.name(), "bs-sa", seed, &scale_label, bspec),
                vec![
                    Strategy::new("bs-sa", move |o: &dyn Observer| search_once(bspec, tok, o)),
                    Strategy::new("dalta-baseline", move |o: &dyn Observer| {
                        search_once(dspec, tok, o)
                    }),
                ],
            ));
        }
    }
    let total = items.len();

    // Everything that shapes results goes into the sweep fingerprint, so
    // stale checkpoints from another configuration are never merged.
    let sweep_fp = fingerprint(&format!(
        "table2/{scale_label}/seed{}/runs{}/only{:?}/budget{:?}",
        args.seed, runs, args.only, args.budget_secs
    ));
    let supervisor = args
        .supervisor(sweep_fp, &token)
        .expect("checkpoint dir usable");
    let out_path = args.out_path("table2_results.json");

    let outcome = supervisor.run(items, obs.observer(), |snapshot| {
        let report = group(
            &prepared,
            &snapshot.completed,
            snapshot.completed.len() < total,
        );
        if let Err(e) = write_json(&out_path, &report) {
            eprintln!("warning: partial results write failed: {e}");
        }
    });
    if let Some(signal) = shutdown::take_requested_signal() {
        obs.emit(&SearchEvent::ShutdownRequested {
            signal: signal.to_string(),
        });
    }
    let report = group(&prepared, &outcome.records, !outcome.is_complete());
    if outcome.resumed > 0 {
        eprintln!(
            "table2: resumed {} of {} items from checkpoint",
            outcome.resumed, total
        );
    }

    let mut table = Table::new(&[
        "benchmark",
        "DALTA Min",
        "DALTA Avg",
        "DALTA Stdev",
        "DALTA Time(s)",
        "BS-SA Min",
        "BS-SA Avg",
        "BS-SA Stdev",
        "BS-SA Time(s)",
    ]);
    let mut cols: [Vec<f64>; 8] = Default::default();
    let mut complete_rows = 0usize;
    for r in &report.results {
        if r.dalta_med.is_empty() || r.bssa_med.is_empty() {
            continue; // interrupted before this benchmark produced runs
        }
        complete_rows += 1;
        let d = RunStats::from_samples(&r.dalta_med);
        let b = RunStats::from_samples(&r.bssa_med);
        let dt = r.dalta_secs.iter().sum::<f64>() / r.dalta_secs.len() as f64;
        let bt = r.bssa_secs.iter().sum::<f64>() / r.bssa_secs.len() as f64;
        for (c, v) in cols
            .iter_mut()
            .zip([d.min, d.avg, d.stdev, dt, b.min, b.avg, b.stdev, bt])
        {
            c.push(v);
        }
        let marker = if r.bssa_degraded.iter().any(|&x| x) {
            "*"
        } else {
            ""
        };
        table.row(vec![
            format!("{}{marker}", r.benchmark),
            f2(d.min),
            f2(d.avg),
            f2(d.stdev),
            f2(dt),
            f2(b.min),
            f2(b.avg),
            f2(b.stdev),
            f2(bt),
        ]);
    }
    if complete_rows > 1 {
        let g: Vec<f64> = cols.iter().map(|c| geomean(c)).collect();
        table.row(
            std::iter::once("GEOMEAN".to_string())
                .chain(g.iter().map(|&v| f2(v)))
                .collect(),
        );
        println!("\nTable II. Comparison of DALTA's algorithm and BS-SA.\n");
        println!("{}", table.render());
        println!(
            "BS-SA vs DALTA (geomean): min MED {:+.1}%, stdev {:+.1}%, runtime {:.2}x",
            (g[4] / g[0] - 1.0) * 100.0,
            (g[6] / g[2] - 1.0) * 100.0,
            g[7] / g[3],
        );
    } else {
        println!("{}", table.render());
    }
    obs.finish().expect("flush trace");
    write_json(&out_path, &report).expect("write results");
    eprintln!(
        "wrote {}{}",
        out_path.display(),
        if report.partial { " (partial)" } else { "" }
    );
    if outcome.is_complete() {
        ExitCode::SUCCESS
    } else {
        eprintln!("table2: interrupted — resume with --checkpoint-dir ... --resume");
        ExitCode::from(130)
    }
}
