//! Paper-geometry hardware validation: builds all five Fig. 5
//! architectures at the paper's full 16-bit/b=9 geometry (with searched
//! contents replaced by cheap BTO patterns — energy/area/latency depend
//! on structure and activity, not on which Boolean function the tables
//! hold) and reports their absolute metrics.
//!
//! This checks the *scale-dependent* orderings the reduced-scale Fig. 5
//! run cannot see — in particular that RoundIn's `2^(n−w)`-deep table
//! stops being cheaper than the decomposition tables at `n = 16, w = 6`
//! (1024 entries/bit vs 768 entries/bit).
//!
//! ```sh
//! cargo run -p dalut-bench --release --bin scalecheck
//! ```
//!
//! Each architecture's characterisation is one supervised work item:
//! `--checkpoint-dir`/`--resume` skip architectures already measured,
//! and SIGINT/SIGTERM leaves a partial-marked `scalecheck_results.json`
//! (exit nonzero).

use dalut_bench::report::{f2, write_json};
use dalut_bench::setup::round_in_w;
use dalut_bench::supervisor::{ItemError, Strategy, WorkItem};
use dalut_bench::{shutdown, HarnessArgs, Observation};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::Partition;
use dalut_core::checkpoint::{fingerprint, WorkKey};
use dalut_core::{ApproxLutConfig, BitConfig, CancelToken, Observer, SearchEvent};
use dalut_decomp::{AnyDecomp, BtoDecomp, DisjointDecomp, NonDisjointDecomp, RowType};
use dalut_hw::{build_approx_lut, build_round_in, build_round_out, characterize, ArchStyle};
use dalut_netlist::{critical_path_ns, CellLibrary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

/// A synthetic per-bit decomposition at the given geometry: random
/// pattern/type vectors (contents do not affect the structural metrics;
/// random contents give realistic switching activity).
fn synthetic_bit(bit: usize, n: usize, b: usize, mode: &str, rng: &mut StdRng) -> BitConfig {
    let part = Partition::random(n, b, rng);
    let pattern: Vec<bool> = (0..part.cols()).map(|_| rng.random()).collect();
    let decomp = match mode {
        "bto" => AnyDecomp::Bto(BtoDecomp::new(part, pattern).expect("dims")),
        "normal" => {
            let types: Vec<RowType> = (0..part.rows())
                .map(|_| RowType::from_code(rng.random_range(1..=4)).expect("code"))
                .collect();
            AnyDecomp::Normal(DisjointDecomp::new(part, pattern, types).expect("dims"))
        }
        "nd" => {
            let s = part.bound_vars()[0] as usize;
            let reduced_bound = dalut_decomp::reduce_mask(part.bound_mask() & !(1u32 << s), s);
            let reduced = Partition::new(n - 1, reduced_bound).expect("valid");
            let mk_half = |rng: &mut StdRng| {
                let pat: Vec<bool> = (0..reduced.cols()).map(|_| rng.random()).collect();
                let types: Vec<RowType> = (0..reduced.rows())
                    .map(|_| RowType::from_code(rng.random_range(1..=4)).expect("code"))
                    .collect();
                DisjointDecomp::new(reduced, pat, types).expect("dims")
            };
            let (h0, h1) = (mk_half(rng), mk_half(rng));
            AnyDecomp::NonDisjoint(NonDisjointDecomp::new(part, s, h0, h1).expect("valid"))
        }
        other => unreachable!("unknown mode {other}"),
    };
    BitConfig {
        bit,
        decomp,
        expected_error: 0.0,
    }
}

fn synthetic_config(n: usize, m: usize, b: usize, modes: &[&str], seed: u64) -> ApproxLutConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let bits = (0..m)
        .map(|k| synthetic_bit(k, n, b, modes[k % modes.len()], &mut rng))
        .collect();
    ApproxLutConfig::new(n, m, bits).expect("valid synthetic config")
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScaleRow {
    arch: String,
    cells: usize,
    dffs: usize,
    area_um2: f64,
    delay_ns: f64,
    energy_per_read_fj: f64,
}

#[derive(Debug, Serialize)]
struct ScaleReport {
    schema: String,
    /// `true` while architectures are still outstanding (interrupted
    /// run — resume with `--checkpoint-dir ... --resume`).
    partial: bool,
    rows: Vec<ScaleRow>,
}

fn main() -> ExitCode {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).expect("observation set up");
    let token = CancelToken::new();
    shutdown::install(&token);
    let (n, m, b) = (16usize, 16usize, 9usize);
    let lib = CellLibrary::nangate45();
    let reads_count = if args.full { 1024 } else { 256 };
    eprintln!("scalecheck: n={n} m={m} b={b}, {reads_count} reads");

    // The target only matters for the rounding tables' contents.
    let target = Benchmark::Multiplier.table(Scale::Paper).expect("builds");

    // Paper-like mode mixes.
    let dalta_cfg = synthetic_config(n, m, b, &["normal"], 1);
    let bn_cfg = synthetic_config(n, m, b, &["bto", "normal", "normal"], 2);
    let bnnd_cfg = synthetic_config(n, m, b, &["bto", "normal", "nd"], 3);

    let round_out_q = 5usize;
    let w = round_in_w(n);
    let builds: Vec<(String, dalut_hw::ArchInstance)> = vec![
        (
            "RoundOut(q=5)".into(),
            build_round_out(&target, round_out_q),
        ),
        (format!("RoundIn(w={w})"), build_round_in(&target, w)),
        (
            "DALTA".into(),
            build_approx_lut(&dalta_cfg, ArchStyle::Dalta).expect("maps"),
        ),
        (
            "BTO-Normal".into(),
            build_approx_lut(&bn_cfg, ArchStyle::BtoNormal).expect("maps"),
        ),
        (
            "BTO-Normal-ND".into(),
            build_approx_lut(&bnnd_cfg, ArchStyle::BtoNormalNd).expect("maps"),
        ),
    ];

    let clock = builds
        .iter()
        .map(|(_, i)| critical_path_ns(i.netlist(), &lib).expect("acyclic"))
        .fold(0.0f64, f64::max)
        * 1.05;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let reads: Vec<u32> = (0..reads_count)
        .map(|_| rng.random_range(0..(1u32 << n)))
        .collect();

    // --- Characterisation: one supervised item per architecture. ---
    let out_path = args.out_path("scalecheck_results.json");
    let items: Vec<WorkItem<'_, ScaleRow>> = builds
        .iter()
        .map(|(name, inst)| {
            let (lib, reads) = (&lib, &reads);
            WorkItem::new(
                WorkKey::new("paper-geometry", name, args.seed, "n16b9", &reads_count),
                vec![Strategy::new(name, move |_: &dyn Observer| {
                    eprintln!(
                        "  measuring {name} ({} cells)...",
                        inst.netlist().cell_count()
                    );
                    let rep = characterize(inst, reads, lib, clock)
                        .map_err(|e| ItemError::Failed(e.to_string()))?;
                    Ok(ScaleRow {
                        arch: name.clone(),
                        cells: inst.netlist().cell_count(),
                        dffs: inst.netlist().total_dffs(),
                        area_um2: rep.area_um2,
                        delay_ns: rep.critical_path_ns,
                        energy_per_read_fj: rep.energy_per_read_fj,
                    })
                })],
            )
        })
        .collect();
    let total = items.len();
    let sweep_fp = fingerprint(&format!(
        "scalecheck/n16b9/seed{}/reads{reads_count}",
        args.seed
    ));
    let supervisor = args
        .supervisor(sweep_fp, &token)
        .expect("checkpoint dir usable");
    let write_report = |rows: Vec<ScaleRow>, partial: bool| {
        let report = ScaleReport {
            schema: "dalut-scalecheck/v2".to_string(),
            partial,
            rows,
        };
        write_json(&out_path, &report)
    };
    let outcome = supervisor.run(items, obs.observer(), |snapshot| {
        let rows: Vec<ScaleRow> = snapshot
            .completed
            .iter()
            .filter_map(|r| r.result.clone())
            .collect();
        let partial = rows.len() < total;
        if let Err(e) = write_report(rows, partial) {
            eprintln!("warning: partial results write failed: {e}");
        }
    });
    if let Some(signal) = shutdown::take_requested_signal() {
        obs.emit(&SearchEvent::ShutdownRequested {
            signal: signal.to_string(),
        });
    }
    if outcome.resumed > 0 {
        eprintln!(
            "scalecheck: resumed {} of {total} architectures from checkpoint",
            outcome.resumed
        );
    }
    let rows: Vec<ScaleRow> = outcome
        .records
        .iter()
        .filter_map(|r| r.result.clone())
        .collect();

    let mut table = dalut_bench::Table::new(&[
        "architecture",
        "cells",
        "DFFs",
        "area um^2",
        "delay ns",
        "energy fJ/read",
    ]);
    for r in &rows {
        table.row(vec![
            r.arch.clone(),
            r.cells.to_string(),
            r.dffs.to_string(),
            format!("{:.0}", r.area_um2),
            f2(r.delay_ns),
            format!("{:.0}", r.energy_per_read_fj),
        ]);
    }
    println!("\nPaper-geometry (n=16, b=9) hardware characterisation.\n");
    println!("{}", table.render());
    let partial = !outcome.is_complete();
    if let (Some(ri), Some(da)) = (
        rows.iter().find(|r| r.arch.starts_with("RoundIn")),
        rows.iter().find(|r| r.arch == "DALTA"),
    ) {
        println!(
            "RoundIn / DALTA energy ratio = {:.2} at paper geometry \
             (vs ~0.36 at the reduced scale: the rounding table's depth \
             advantage vanishes as n grows)",
            ri.energy_per_read_fj / da.energy_per_read_fj
        );
    }
    // --- Hardened (synthesis-folded) variants of the decomposition
    // architectures: what the configured function costs as a fixed-
    // function block instead of a reconfigurable fabric. Skipped when
    // the run was interrupted; reruns cheaply on resume. ---
    if !partial && !token.is_cancelled() {
        let mut htable = dalut_bench::Table::new(&[
            "architecture (hardened)",
            "cells",
            "area um^2",
            "energy fJ/read",
            "cells folded",
        ]);
        for (name, inst) in builds.iter().skip(2) {
            if token.is_cancelled() {
                break;
            }
            let hard = inst.hardened();
            let rep = characterize(&hard, &reads, &lib, clock).expect("characterise");
            let before = inst.netlist().cell_count();
            let after = hard.netlist().cell_count();
            htable.row(vec![
                name.clone(),
                after.to_string(),
                format!("{:.0}", rep.area_um2),
                format!("{:.0}", rep.energy_per_read_fj),
                format!("{:.0}%", (1.0 - after as f64 / before as f64) * 100.0),
            ]);
        }
        println!("Hardened configurations (constant-folded, dead logic removed):\n");
        println!("{}", htable.render());
    }
    obs.finish().expect("flush trace");
    write_report(rows, partial).expect("write results");
    eprintln!(
        "wrote {}{}",
        out_path.display(),
        if partial { " (partial)" } else { "" }
    );
    if partial {
        eprintln!("scalecheck: interrupted — resume with --checkpoint-dir ... --resume");
        return ExitCode::from(130);
    }
    ExitCode::SUCCESS
}
