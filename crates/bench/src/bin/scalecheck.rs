//! Paper-geometry hardware validation: builds all five Fig. 5
//! architectures at the paper's full 16-bit/b=9 geometry (with searched
//! contents replaced by cheap BTO patterns — energy/area/latency depend
//! on structure and activity, not on which Boolean function the tables
//! hold) and reports their absolute metrics.
//!
//! This checks the *scale-dependent* orderings the reduced-scale Fig. 5
//! run cannot see — in particular that RoundIn's `2^(n−w)`-deep table
//! stops being cheaper than the decomposition tables at `n = 16, w = 6`
//! (1024 entries/bit vs 768 entries/bit).
//!
//! ```sh
//! cargo run -p dalut-bench --release --bin scalecheck
//! ```

use dalut_bench::report::{f2, write_json};
use dalut_bench::setup::round_in_w;
use dalut_bench::HarnessArgs;
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::Partition;
use dalut_core::{ApproxLutConfig, BitConfig};
use dalut_decomp::{AnyDecomp, BtoDecomp, DisjointDecomp, NonDisjointDecomp, RowType};
use dalut_hw::{build_approx_lut, build_round_in, build_round_out, characterize, ArchStyle};
use dalut_netlist::{critical_path_ns, CellLibrary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// A synthetic per-bit decomposition at the given geometry: random
/// pattern/type vectors (contents do not affect the structural metrics;
/// random contents give realistic switching activity).
fn synthetic_bit(bit: usize, n: usize, b: usize, mode: &str, rng: &mut StdRng) -> BitConfig {
    let part = Partition::random(n, b, rng);
    let pattern: Vec<bool> = (0..part.cols()).map(|_| rng.random()).collect();
    let decomp = match mode {
        "bto" => AnyDecomp::Bto(BtoDecomp::new(part, pattern).expect("dims")),
        "normal" => {
            let types: Vec<RowType> = (0..part.rows())
                .map(|_| RowType::from_code(rng.random_range(1..=4)).expect("code"))
                .collect();
            AnyDecomp::Normal(DisjointDecomp::new(part, pattern, types).expect("dims"))
        }
        "nd" => {
            let s = part.bound_vars()[0] as usize;
            let reduced_bound = dalut_decomp::reduce_mask(part.bound_mask() & !(1u32 << s), s);
            let reduced = Partition::new(n - 1, reduced_bound).expect("valid");
            let mk_half = |rng: &mut StdRng| {
                let pat: Vec<bool> = (0..reduced.cols()).map(|_| rng.random()).collect();
                let types: Vec<RowType> = (0..reduced.rows())
                    .map(|_| RowType::from_code(rng.random_range(1..=4)).expect("code"))
                    .collect();
                DisjointDecomp::new(reduced, pat, types).expect("dims")
            };
            let (h0, h1) = (mk_half(rng), mk_half(rng));
            AnyDecomp::NonDisjoint(NonDisjointDecomp::new(part, s, h0, h1).expect("valid"))
        }
        other => unreachable!("unknown mode {other}"),
    };
    BitConfig {
        bit,
        decomp,
        expected_error: 0.0,
    }
}

fn synthetic_config(n: usize, m: usize, b: usize, modes: &[&str], seed: u64) -> ApproxLutConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let bits = (0..m)
        .map(|k| synthetic_bit(k, n, b, modes[k % modes.len()], &mut rng))
        .collect();
    ApproxLutConfig::new(n, m, bits).expect("valid synthetic config")
}

#[derive(Debug, Serialize)]
struct ScaleRow {
    arch: String,
    cells: usize,
    dffs: usize,
    area_um2: f64,
    delay_ns: f64,
    energy_per_read_fj: f64,
}

fn main() {
    let args = HarnessArgs::from_env();
    let (n, m, b) = (16usize, 16usize, 9usize);
    let lib = CellLibrary::nangate45();
    let reads_count = if args.full { 1024 } else { 256 };
    eprintln!("scalecheck: n={n} m={m} b={b}, {reads_count} reads");

    // The target only matters for the rounding tables' contents.
    let target = Benchmark::Multiplier.table(Scale::Paper).expect("builds");

    // Paper-like mode mixes.
    let dalta_cfg = synthetic_config(n, m, b, &["normal"], 1);
    let bn_cfg = synthetic_config(n, m, b, &["bto", "normal", "normal"], 2);
    let bnnd_cfg = synthetic_config(n, m, b, &["bto", "normal", "nd"], 3);

    let round_out_q = 5usize;
    let w = round_in_w(n);
    let builds: Vec<(String, dalut_hw::ArchInstance)> = vec![
        (
            "RoundOut(q=5)".into(),
            build_round_out(&target, round_out_q),
        ),
        (format!("RoundIn(w={w})"), build_round_in(&target, w)),
        (
            "DALTA".into(),
            build_approx_lut(&dalta_cfg, ArchStyle::Dalta).expect("maps"),
        ),
        (
            "BTO-Normal".into(),
            build_approx_lut(&bn_cfg, ArchStyle::BtoNormal).expect("maps"),
        ),
        (
            "BTO-Normal-ND".into(),
            build_approx_lut(&bnnd_cfg, ArchStyle::BtoNormalNd).expect("maps"),
        ),
    ];

    let clock = builds
        .iter()
        .map(|(_, i)| critical_path_ns(i.netlist(), &lib).expect("acyclic"))
        .fold(0.0f64, f64::max)
        * 1.05;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let reads: Vec<u32> = (0..reads_count)
        .map(|_| rng.random_range(0..(1u32 << n)))
        .collect();

    let mut table = dalut_bench::Table::new(&[
        "architecture",
        "cells",
        "DFFs",
        "area um^2",
        "delay ns",
        "energy fJ/read",
    ]);
    let mut rows = Vec::new();
    for (name, inst) in &builds {
        eprintln!(
            "  measuring {name} ({} cells)...",
            inst.netlist().cell_count()
        );
        let rep = characterize(inst, &reads, &lib, clock).expect("characterise");
        table.row(vec![
            name.clone(),
            inst.netlist().cell_count().to_string(),
            inst.netlist().total_dffs().to_string(),
            format!("{:.0}", rep.area_um2),
            f2(rep.critical_path_ns),
            format!("{:.0}", rep.energy_per_read_fj),
        ]);
        rows.push(ScaleRow {
            arch: name.clone(),
            cells: inst.netlist().cell_count(),
            dffs: inst.netlist().total_dffs(),
            area_um2: rep.area_um2,
            delay_ns: rep.critical_path_ns,
            energy_per_read_fj: rep.energy_per_read_fj,
        });
    }
    println!("\nPaper-geometry (n=16, b=9) hardware characterisation.\n");
    println!("{}", table.render());
    let ri = rows
        .iter()
        .find(|r| r.arch.starts_with("RoundIn"))
        .expect("present");
    let da = rows.iter().find(|r| r.arch == "DALTA").expect("present");
    println!(
        "RoundIn / DALTA energy ratio = {:.2} at paper geometry \
         (vs ~0.36 at the reduced scale: the rounding table's depth \
         advantage vanishes as n grows)",
        ri.energy_per_read_fj / da.energy_per_read_fj
    );
    // --- Hardened (synthesis-folded) variants of the decomposition
    // architectures: what the configured function costs as a fixed-
    // function block instead of a reconfigurable fabric. ---
    let mut htable = dalut_bench::Table::new(&[
        "architecture (hardened)",
        "cells",
        "area um^2",
        "energy fJ/read",
        "cells folded",
    ]);
    for (name, inst) in builds.iter().skip(2) {
        let hard = inst.hardened();
        let rep = characterize(&hard, &reads, &lib, clock).expect("characterise");
        let before = inst.netlist().cell_count();
        let after = hard.netlist().cell_count();
        htable.row(vec![
            name.clone(),
            after.to_string(),
            format!("{:.0}", rep.area_um2),
            format!("{:.0}", rep.energy_per_read_fj),
            format!("{:.0}%", (1.0 - after as f64 / before as f64) * 100.0),
        ]);
    }
    println!("Hardened configurations (constant-folded, dead logic removed):\n");
    println!("{}", htable.render());
    let path = args.out_path("scalecheck_results.json");
    write_json(&path, &rows).expect("write results");
    eprintln!("wrote {}", path.display());
}
