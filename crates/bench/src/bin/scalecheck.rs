//! Paper-geometry hardware validation: builds all five Fig. 5
//! architectures at the paper's full 16-bit/b=9 geometry (with searched
//! contents replaced by cheap BTO patterns — energy/area/latency depend
//! on structure and activity, not on which Boolean function the tables
//! hold) and reports their absolute metrics.
//!
//! This checks the *scale-dependent* orderings the reduced-scale Fig. 5
//! run cannot see — in particular that RoundIn's `2^(n−w)`-deep table
//! stops being cheaper than the decomposition tables at `n = 16, w = 6`
//! (1024 entries/bit vs 768 entries/bit).
//!
//! ```sh
//! cargo run -p dalut-bench --release --bin scalecheck
//! ```
//!
//! Each architecture's characterisation is one supervised work item:
//! `--checkpoint-dir`/`--resume` skip architectures already measured,
//! and SIGINT/SIGTERM leaves a partial-marked `scalecheck_results.json`
//! (exit nonzero).

use dalut_bench::report::{f2, write_json};
use dalut_bench::setup::round_in_w;
use dalut_bench::supervisor::{ItemError, Strategy, WorkItem};
use dalut_bench::{shutdown, HarnessArgs, Observation};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::InputDistribution;
use dalut_core::checkpoint::{fingerprint, WorkKey};
use dalut_core::{CancelToken, Observer, SearchEvent};
use dalut_est::doe::synthetic_config;
use dalut_est::ResourceEstimator;
use dalut_hw::{build_approx_lut, build_round_in, build_round_out, characterize, ArchStyle};
use dalut_netlist::{critical_path_ns, CellLibrary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Instant;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScaleRow {
    arch: String,
    cells: usize,
    dffs: usize,
    area_um2: f64,
    delay_ns: f64,
    energy_per_read_fj: f64,
}

/// Wall-clock seconds spent in each phase of the run (schema v3).
#[derive(Debug, Clone, Copy, Default, Serialize)]
struct PhaseTimings {
    /// Table/netlist construction, common clock, read-trace generation.
    setup_secs: f64,
    /// The supervised per-architecture characterisation sweep.
    characterize_secs: f64,
    /// The hardened (constant-folded) variants.
    hardened_secs: f64,
    /// The closed-form estimator validation pass.
    estimator_secs: f64,
}

/// The closed-form (uncalibrated, physical-prior) estimate of one
/// decomposition architecture at the paper geometry, against the exact
/// characterisation in `rows`.
#[derive(Debug, Clone, Serialize)]
struct EstimateRow {
    arch: String,
    area_um2: f64,
    delay_ns: f64,
    energy_per_read_fj: f64,
    /// `|estimate - exact| / exact` on area (analytic: ~0).
    area_rel_err: f64,
    /// `|estimate - exact| / exact` on delay (analytic: ~0).
    delay_rel_err: f64,
    /// `|estimate - exact| / exact` on energy (prior model, no fit).
    energy_rel_err: f64,
}

#[derive(Debug, Serialize)]
struct ScaleReport {
    schema: String,
    /// `true` while architectures are still outstanding (interrupted
    /// run — resume with `--checkpoint-dir ... --resume`).
    partial: bool,
    rows: Vec<ScaleRow>,
    /// Per-phase wall clock (partial flushes only know `setup_secs`).
    phases: PhaseTimings,
    /// Estimator validation at the paper geometry (empty until the
    /// characterisation sweep completes).
    #[serde(skip_serializing_if = "Vec::is_empty")]
    estimates: Vec<EstimateRow>,
}

fn main() -> ExitCode {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).expect("observation set up");
    let token = CancelToken::new();
    shutdown::install(&token);
    let (n, m, b) = (16usize, 16usize, 9usize);
    let lib = CellLibrary::nangate45();
    let reads_count = if args.full { 1024 } else { 256 };
    eprintln!("scalecheck: n={n} m={m} b={b}, {reads_count} reads");

    let t_setup = Instant::now();
    // The target only matters for the rounding tables' contents.
    let target = Benchmark::Multiplier.table(Scale::Paper).expect("builds");

    // Paper-like mode mixes.
    let dalta_cfg = synthetic_config(n, m, b, &["normal"], 1);
    let bn_cfg = synthetic_config(n, m, b, &["bto", "normal", "normal"], 2);
    let bnnd_cfg = synthetic_config(n, m, b, &["bto", "normal", "nd"], 3);

    let round_out_q = 5usize;
    let w = round_in_w(n);
    let builds: Vec<(String, dalut_hw::ArchInstance)> = vec![
        (
            "RoundOut(q=5)".into(),
            build_round_out(&target, round_out_q),
        ),
        (format!("RoundIn(w={w})"), build_round_in(&target, w)),
        (
            "DALTA".into(),
            build_approx_lut(&dalta_cfg, ArchStyle::Dalta).expect("maps"),
        ),
        (
            "BTO-Normal".into(),
            build_approx_lut(&bn_cfg, ArchStyle::BtoNormal).expect("maps"),
        ),
        (
            "BTO-Normal-ND".into(),
            build_approx_lut(&bnnd_cfg, ArchStyle::BtoNormalNd).expect("maps"),
        ),
    ];

    let clock = builds
        .iter()
        .map(|(_, i)| critical_path_ns(i.netlist(), &lib).expect("acyclic"))
        .fold(0.0f64, f64::max)
        * 1.05;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let reads: Vec<u32> = (0..reads_count)
        .map(|_| rng.random_range(0..(1u32 << n)))
        .collect();
    let setup_secs = t_setup.elapsed().as_secs_f64();

    // --- Characterisation: one supervised item per architecture. ---
    let out_path = args.out_path("scalecheck_results.json");
    let items: Vec<WorkItem<'_, ScaleRow>> = builds
        .iter()
        .map(|(name, inst)| {
            let (lib, reads) = (&lib, &reads);
            WorkItem::new(
                WorkKey::new("paper-geometry", name, args.seed, "n16b9", &reads_count),
                vec![Strategy::new(name, move |_: &dyn Observer| {
                    eprintln!(
                        "  measuring {name} ({} cells)...",
                        inst.netlist().cell_count()
                    );
                    let rep = characterize(inst, reads, lib, clock)
                        .map_err(|e| ItemError::Failed(e.to_string()))?;
                    Ok(ScaleRow {
                        arch: name.clone(),
                        cells: inst.netlist().cell_count(),
                        dffs: inst.netlist().total_dffs(),
                        area_um2: rep.area_um2,
                        delay_ns: rep.critical_path_ns,
                        energy_per_read_fj: rep.energy_per_read_fj,
                    })
                })],
            )
        })
        .collect();
    let total = items.len();
    let sweep_fp = fingerprint(&format!(
        "scalecheck/n16b9/seed{}/reads{reads_count}",
        args.seed
    ));
    let supervisor = args
        .supervisor(sweep_fp, &token)
        .expect("checkpoint dir usable");
    let write_report =
        |rows: Vec<ScaleRow>, partial: bool, phases: PhaseTimings, estimates: &[EstimateRow]| {
            let report = ScaleReport {
                schema: "dalut-scalecheck/v3".to_string(),
                partial,
                rows,
                phases,
                estimates: estimates.to_vec(),
            };
            write_json(&out_path, &report)
        };
    let t_char = Instant::now();
    let outcome = supervisor.run(items, obs.observer(), |snapshot| {
        let rows: Vec<ScaleRow> = snapshot
            .completed
            .iter()
            .filter_map(|r| r.result.clone())
            .collect();
        let partial = rows.len() < total;
        let phases = PhaseTimings {
            setup_secs,
            ..PhaseTimings::default()
        };
        if let Err(e) = write_report(rows, partial, phases, &[]) {
            eprintln!("warning: partial results write failed: {e}");
        }
    });
    let characterize_secs = t_char.elapsed().as_secs_f64();
    if let Some(signal) = shutdown::take_requested_signal() {
        obs.emit(&SearchEvent::ShutdownRequested {
            signal: signal.to_string(),
        });
    }
    if outcome.resumed > 0 {
        eprintln!(
            "scalecheck: resumed {} of {total} architectures from checkpoint",
            outcome.resumed
        );
    }
    let rows: Vec<ScaleRow> = outcome
        .records
        .iter()
        .filter_map(|r| r.result.clone())
        .collect();

    let mut table = dalut_bench::Table::new(&[
        "architecture",
        "cells",
        "DFFs",
        "area um^2",
        "delay ns",
        "energy fJ/read",
    ]);
    for r in &rows {
        table.row(vec![
            r.arch.clone(),
            r.cells.to_string(),
            r.dffs.to_string(),
            format!("{:.0}", r.area_um2),
            f2(r.delay_ns),
            format!("{:.0}", r.energy_per_read_fj),
        ]);
    }
    println!("\nPaper-geometry (n=16, b=9) hardware characterisation.\n");
    println!("{}", table.render());
    let partial = !outcome.is_complete();
    if let (Some(ri), Some(da)) = (
        rows.iter().find(|r| r.arch.starts_with("RoundIn")),
        rows.iter().find(|r| r.arch == "DALTA"),
    ) {
        println!(
            "RoundIn / DALTA energy ratio = {:.2} at paper geometry \
             (vs ~0.36 at the reduced scale: the rounding table's depth \
             advantage vanishes as n grows)",
            ri.energy_per_read_fj / da.energy_per_read_fj
        );
    }
    // --- Hardened (synthesis-folded) variants of the decomposition
    // architectures: what the configured function costs as a fixed-
    // function block instead of a reconfigurable fabric. Skipped when
    // the run was interrupted; reruns cheaply on resume. ---
    let t_hard = Instant::now();
    if !partial && !token.is_cancelled() {
        let mut htable = dalut_bench::Table::new(&[
            "architecture (hardened)",
            "cells",
            "area um^2",
            "energy fJ/read",
            "cells folded",
        ]);
        for (name, inst) in builds.iter().skip(2) {
            if token.is_cancelled() {
                break;
            }
            let hard = inst.hardened();
            let rep = characterize(&hard, &reads, &lib, clock).expect("characterise");
            let before = inst.netlist().cell_count();
            let after = hard.netlist().cell_count();
            htable.row(vec![
                name.clone(),
                after.to_string(),
                format!("{:.0}", rep.area_um2),
                format!("{:.0}", rep.energy_per_read_fj),
                format!("{:.0}%", (1.0 - after as f64 / before as f64) * 100.0),
            ]);
        }
        println!("Hardened configurations (constant-folded, dead logic removed):\n");
        println!("{}", htable.render());
    }
    let hardened_secs = t_hard.elapsed().as_secs_f64();

    // --- Estimator validation: the closed-form model (physical prior,
    // no calibration pass) against the exact rows at the paper geometry.
    // Area and delay are analytic and must agree to float precision;
    // energy is the uncalibrated prior, so only indicative here. ---
    let t_est = Instant::now();
    let mut estimates = Vec::new();
    if !partial {
        let dist = InputDistribution::uniform(n).expect("valid width");
        let families = [
            ("DALTA", ArchStyle::Dalta, &dalta_cfg),
            ("BTO-Normal", ArchStyle::BtoNormal, &bn_cfg),
            ("BTO-Normal-ND", ArchStyle::BtoNormalNd, &bnnd_cfg),
        ];
        for (name, style, cfg) in families {
            let Some(exact) = rows.iter().find(|r| r.arch == name) else {
                continue;
            };
            let e = ResourceEstimator::new(style, dist.clone())
                .with_clock(clock)
                .estimate(cfg)
                .expect("paper-geometry config estimates");
            let rel = |est: f64, ex: f64| (est - ex).abs() / ex.max(f64::MIN_POSITIVE);
            estimates.push(EstimateRow {
                arch: name.to_string(),
                area_um2: e.area_um2,
                delay_ns: e.critical_path_ns,
                energy_per_read_fj: e.energy_per_read_fj,
                area_rel_err: rel(e.area_um2, exact.area_um2),
                delay_rel_err: rel(e.critical_path_ns, exact.delay_ns),
                energy_rel_err: rel(e.energy_per_read_fj, exact.energy_per_read_fj),
            });
        }
        if !estimates.is_empty() {
            println!("Closed-form estimator at paper geometry (uncalibrated prior):");
            for e in &estimates {
                println!(
                    "  {}: area err {:.1e}, delay err {:.1e}, energy err {:.1}%",
                    e.arch,
                    e.area_rel_err,
                    e.delay_rel_err,
                    e.energy_rel_err * 100.0
                );
            }
        }
    }
    let estimator_secs = t_est.elapsed().as_secs_f64();
    let phases = PhaseTimings {
        setup_secs,
        characterize_secs,
        hardened_secs,
        estimator_secs,
    };
    obs.finish().expect("flush trace");
    write_report(rows, partial, phases, &estimates).expect("write results");
    eprintln!(
        "wrote {}{}",
        out_path.display(),
        if partial { " (partial)" } else { "" }
    );
    if partial {
        eprintln!("scalecheck: interrupted — resume with --checkpoint-dir ... --resume");
        return ExitCode::from(130);
    }
    ExitCode::SUCCESS
}
