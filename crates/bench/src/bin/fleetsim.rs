//! Fleet simulation of the self-correcting runtime controller: a fleet
//! of live approximate-LUT instances served under a time-varying input
//! distribution and a scheduled fault campaign, compared across three
//! arms —
//!
//! * `controlled` — starts on the cheapest pre-compiled variant with
//!   the full scrub / upgrade / relax policy enabled;
//! * `uncontrolled` — identical start, monitoring only (no corrective
//!   actions): the baseline that shows what drift and faults cost;
//! * `pinned-max` — pinned to the most accurate variant, actions off:
//!   the energy ceiling the controller should undercut.
//!
//! The variant ladder comes from the paper's own machinery: one
//! budgeted BS-SA search under the BTO-Normal-ND policy, a `mode_sweep`
//! over the recorded per-bit alternatives, a Pareto filter, and gate
//! -level energy characterisation of three spread frontier points.
//!
//! Writes `results/fleet_sim.json` (full per-epoch telemetry) and a
//! `BENCH_fleet.json` summary next to it. Accepts the usual harness
//! flags; each (arm, instance) pair is one supervised work item, so an
//! interrupted run leaves a valid partial-marked report and
//! `--checkpoint-dir ... --resume` completes it bit-identically (no
//! wall-clock state enters any record).
//!
//! Run with `cargo run -p dalut-bench --release --bin fleetsim`.

use dalut_bench::report::{f3, write_versioned_json, Versioned};
use dalut_bench::setup::bssa_params;
use dalut_bench::supervisor::{ItemError, Strategy, WorkItem};
use dalut_bench::{shutdown, HarnessArgs, Observation, Table};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::{InputDistribution, TruthTable};
use dalut_core::checkpoint::{fingerprint, WorkKey, WorkRecord};
use dalut_core::{
    mode_sweep, pareto_front, ApproxLutBuilder, ArchPolicy, CancelToken, MetricsSnapshot, Observer,
    RunBudget, SearchEvent, Termination, TradeoffPoint,
};
use dalut_hw::{ArchStyle, FaultModel};
use dalut_netlist::CellLibrary;
use dalut_runtime::{ControlTotals, Controller, EpochReport, ErrorSlo, Variant, VariantBank};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Duration;

/// Epochs simulated per fleet instance.
const EPOCHS: usize = 80;
/// Instances per arm.
const FLEET: usize = 4;
/// Epoch at which the workload drifts from uniform to a concentrated
/// Gaussian, and back.
const DRIFT_ON: usize = 16;
const DRIFT_OFF: usize = 36;
/// Epoch of the scheduled burst fault (hits every arm identically).
const BURST_AT: usize = 44;
/// Epoch of the scheduled SEU shower.
const SEU_AT: usize = 64;
/// Wall-clock budget for the configuration search.
const SEARCH_DEADLINE: Duration = Duration::from_secs(60);
/// Clock period used for energy characterisation (ns).
const CLOCK_NS: f64 = 1.5;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Arm {
    Controlled,
    Uncontrolled,
    PinnedMax,
}

impl Arm {
    const ALL: [Arm; 3] = [Arm::Controlled, Arm::Uncontrolled, Arm::PinnedMax];

    fn name(self) -> &'static str {
        match self {
            Arm::Controlled => "controlled",
            Arm::Uncontrolled => "uncontrolled",
            Arm::PinnedMax => "pinned-max",
        }
    }

    fn actions(self) -> bool {
        matches!(self, Arm::Controlled)
    }

    fn start(self, bank: &VariantBank) -> usize {
        match self {
            Arm::PinnedMax => bank.len() - 1,
            _ => 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct VariantInfo {
    label: String,
    expected_med: f64,
    /// True MED under the drift-phase (Gaussian) distribution.
    med_drift: f64,
    energy_per_read_fj: f64,
    mode_counts: (usize, usize, usize),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct InstanceRun {
    arm: String,
    instance: usize,
    totals: ControlTotals,
    epochs: Vec<EpochReport>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArmSummary {
    arm: String,
    violation_rate: f64,
    mean_err: f64,
    energy_fj: f64,
    scrubs: u64,
    upgrades: u64,
    relaxes: u64,
    writes: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Summary {
    arms: Vec<ArmSummary>,
    /// Controlled fleet's mean error stayed within the SLO target.
    controlled_within_slo: bool,
    /// Uncontrolled fleet's mean error broke the SLO target.
    uncontrolled_violates: bool,
    /// Controlled strictly beats uncontrolled on violation rate.
    violation_rate_improved: bool,
    energy_saved_vs_pinned_fj: f64,
    energy_saved_vs_pinned_frac: f64,
}

#[derive(Debug, Serialize)]
struct FleetReport {
    benchmark: String,
    scale_bits: usize,
    seed: u64,
    epochs: usize,
    instances_per_arm: usize,
    slo: ErrorSlo,
    variants: Vec<VariantInfo>,
    partial: bool,
    runs: Vec<InstanceRun>,
    #[serde(skip_serializing_if = "Option::is_none")]
    summary: Option<Summary>,
    #[serde(skip_serializing_if = "Option::is_none")]
    metrics: Option<MetricsSnapshot>,
}

impl Versioned for FleetReport {
    const SCHEMA: &'static str = "dalut-fleetsim/v1";
}

#[derive(Debug, Serialize)]
struct BenchSummary {
    benchmark: String,
    scale_bits: usize,
    seed: u64,
    slo_target: f64,
    summary: Summary,
}

impl Versioned for BenchSummary {
    const SCHEMA: &'static str = "dalut-fleetbench/v1";
}

/// The drift-phase workload: reads linger where the cheapest variant's
/// approximation is weakest (weight `err(x) + 0.25`), the adversarial
/// version of a deployed table's operating point shifting into a region
/// the error budget was spent on.
fn drift_dist(target: &TruthTable, cheap: &dalut_core::ApproxLutConfig) -> InputDistribution {
    let weights: Vec<f64> = (0..1u32 << target.inputs())
        .map(|x| (f64::from(target.eval(x)) - f64::from(cheap.eval(x))).abs() + 0.25)
        .collect();
    InputDistribution::from_weights(weights).expect("positive weights")
}

/// Runs one fleet instance for `EPOCHS` epochs under the shared drift
/// and fault schedule. Deterministic given (`seed`, `arm`, `idx`).
fn run_instance(
    arm: Arm,
    idx: usize,
    target: &TruthTable,
    bank: &VariantBank,
    slo: &ErrorSlo,
    drift: &InputDistribution,
    base_seed: u64,
    cancel: &CancelToken,
    observer: &dyn Observer,
) -> Result<InstanceRun, ItemError> {
    let n = target.inputs();
    let uniform = InputDistribution::uniform(n).map_err(|e| ItemError::Failed(e.to_string()))?;
    let mut ctl = Controller::new(target, uniform.clone(), bank, arm.start(bank), slo.clone())
        .map_err(|e| ItemError::Failed(e.to_string()))?
        .with_actions(arm.actions());
    // One stream for workload sampling, separate deterministic streams
    // per fault event, so the sampled reads are identical across arms.
    let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(idx as u64));
    let mut epochs = Vec::with_capacity(EPOCHS);
    for epoch in 0..EPOCHS {
        if cancel.is_cancelled() {
            return Err(ItemError::Cancelled);
        }
        if epoch == DRIFT_ON {
            ctl.set_distribution(drift.clone())
                .map_err(|e| ItemError::Failed(e.to_string()))?;
        }
        if epoch == DRIFT_OFF {
            ctl.set_distribution(uniform.clone())
                .map_err(|e| ItemError::Failed(e.to_string()))?;
        }
        if epoch == BURST_AT {
            let mut frng = StdRng::seed_from_u64(base_seed ^ 0xB0057 ^ (idx as u64) << 8);
            ctl.inject(
                &FaultModel::Burst {
                    probability: 0.02,
                    length: 8,
                },
                &mut frng,
            )
            .map_err(|e| ItemError::Failed(e.to_string()))?;
        }
        if epoch == SEU_AT {
            let mut frng = StdRng::seed_from_u64(base_seed ^ 0x5E0 ^ (idx as u64) << 8);
            ctl.inject(&FaultModel::Seu { probability: 0.05 }, &mut frng)
                .map_err(|e| ItemError::Failed(e.to_string()))?;
        }
        let report = ctl
            .step(&mut rng, observer)
            .map_err(|e| ItemError::Failed(e.to_string()))?;
        epochs.push(report);
    }
    Ok(InstanceRun {
        arm: arm.name().to_string(),
        instance: idx,
        totals: ctl.totals().clone(),
        epochs,
    })
}

/// Picks up to three spread points (cheapest, middle, most accurate)
/// from the Pareto frontier and keeps only those forming a valid
/// ladder (energy strictly up, error not up).
fn pick_points(front: &[TradeoffPoint]) -> Vec<&TradeoffPoint> {
    let mut picks: Vec<&TradeoffPoint> = Vec::new();
    for i in [0, front.len() / 2, front.len() - 1] {
        let p = &front[i];
        if picks
            .last()
            .is_none_or(|l| p.active_free_tables > l.active_free_tables && p.med <= l.med)
        {
            picks.push(p);
        }
    }
    picks
}

fn summarize(slo: &ErrorSlo, runs: &[InstanceRun]) -> Summary {
    let arm_total = |name: &str| -> ControlTotals {
        let mut acc = ControlTotals::default();
        for r in runs.iter().filter(|r| r.arm == name) {
            acc.epochs += r.totals.epochs;
            acc.violated_epochs += r.totals.violated_epochs;
            acc.scrubs += r.totals.scrubs;
            acc.bits_repaired += r.totals.bits_repaired;
            acc.upgrades += r.totals.upgrades;
            acc.relaxes += r.totals.relaxes;
            acc.writes += r.totals.writes;
            acc.energy_fj += r.totals.energy_fj;
            acc.err_sum += r.totals.err_sum;
        }
        acc
    };
    let arms: Vec<ArmSummary> = Arm::ALL
        .iter()
        .map(|a| {
            let t = arm_total(a.name());
            ArmSummary {
                arm: a.name().to_string(),
                violation_rate: t.violation_rate(),
                mean_err: t.mean_err(),
                energy_fj: t.energy_fj,
                scrubs: t.scrubs,
                upgrades: t.upgrades,
                relaxes: t.relaxes,
                writes: t.writes,
            }
        })
        .collect();
    let by = |name: &str| arms.iter().find(|a| a.arm == name).expect("arm present");
    let (ctl, unc, pin) = (by("controlled"), by("uncontrolled"), by("pinned-max"));
    let saved = pin.energy_fj - ctl.energy_fj;
    Summary {
        controlled_within_slo: ctl.mean_err <= slo.target,
        uncontrolled_violates: unc.mean_err > slo.target,
        violation_rate_improved: ctl.violation_rate < unc.violation_rate,
        energy_saved_vs_pinned_fj: saved,
        energy_saved_vs_pinned_frac: if pin.energy_fj > 0.0 {
            saved / pin.energy_fj
        } else {
            0.0
        },
        arms,
    }
}

fn run() -> Result<Termination, Box<dyn std::error::Error>> {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args)?;
    let token = CancelToken::new();
    shutdown::install(&token);
    let scale_bits = args.scale_bits.min(8);
    let target = Benchmark::Cos.table(Scale::Reduced(scale_bits))?;
    let n = target.inputs();
    let dist = InputDistribution::uniform(n)?;
    let budget = match args.budget_secs {
        Some(_) => args.budget(),
        None => RunBudget::unlimited().with_deadline(SEARCH_DEADLINE),
    }
    .with_cancel(&token);
    eprintln!("fleetsim: {} at {n} bits", Benchmark::Cos.name());

    // --- One BS-SA search under the all-modes policy gives the per-bit
    // alternatives the variant ladder is swept from.
    let mut bp = bssa_params(&args, n);
    bp.search.seed = args.seed;
    let outcome = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .bs_sa(bp)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .budget(budget)
        .observer(obs.observer())
        .run()?;
    if outcome.termination.is_early() {
        eprintln!("  note: search stopped early ({:?})", outcome.termination);
    }
    let options = outcome
        .mode_options
        .as_ref()
        .ok_or("BS-SA recorded no per-bit mode options")?;
    let sweep = mode_sweep(&target, &dist, options)?;
    let front = pareto_front(&sweep);
    let picks = pick_points(&front);
    eprintln!(
        "  frontier: {} points, using {} variants",
        front.len(),
        picks.len()
    );

    // --- Characterise the picked points into the hot-swap bank.
    let lib = CellLibrary::nangate45();
    let char_reads: Vec<u32> = (0..512u32).map(|i| i % (1u32 << n)).collect();
    let drift = drift_dist(&target, &picks[0].config);
    let mut variants = Vec::new();
    let mut infos = Vec::new();
    for (vi, p) in picks.iter().enumerate() {
        let label = format!("pareto-{vi}");
        let v = Variant::characterized(
            &label,
            p.config.clone(),
            ArchStyle::BtoNormalNd,
            p.med,
            &lib,
            CLOCK_NS,
            &char_reads,
        )?;
        infos.push(VariantInfo {
            label,
            expected_med: p.med,
            med_drift: p.config.med(&target, &drift)?,
            energy_per_read_fj: v.energy_per_read_fj(),
            mode_counts: p.mode_counts,
        });
        variants.push(v);
    }
    // Measured energies should rise along the frontier (more active free
    // tables); drop any point the measurement reorders so the ladder
    // invariant holds.
    let mut ladder: Vec<Variant> = Vec::new();
    for (v, info) in variants.into_iter().zip(&infos) {
        let ok = ladder.last().is_none_or(|l: &Variant| {
            v.energy_per_read_fj() > l.energy_per_read_fj() && v.expected_med() <= l.expected_med()
        });
        if ok {
            ladder.push(v);
        } else {
            eprintln!(
                "  note: dropping {} — measured energy out of order",
                info.label
            );
        }
    }
    let infos: Vec<VariantInfo> = infos
        .into_iter()
        .filter(|i| ladder.iter().any(|v| v.label() == i.label))
        .collect();
    let bank = VariantBank::new(ladder)?;

    // The SLO: comfortable margin over the cheapest variant's nominal
    // error under the design (uniform) distribution, so a healthy fleet
    // on the cheapest variant sits inside it and a faulted or drifted
    // one does not. The formula is recorded in the report.
    let target_err = 1.3 * bank.get(0).expected_med() + 2.0;
    let slo = ErrorSlo {
        samples_per_epoch: 256,
        epoch_reads: 1024,
        // A fault spike is any jump past the target itself; drift's
        // epoch-to-epoch deltas stay well below it.
        fault_jump: target_err,
        // A wider relax band than the default, so the controller steps
        // back down once the drift phase passes.
        relax_margin: 0.6,
        ..ErrorSlo::new(target_err)
    };
    for i in &infos {
        eprintln!(
            "  variant {}: med {} (drift {}), {} fJ/read, modes {:?}",
            i.label,
            f3(i.expected_med),
            f3(i.med_drift),
            f3(i.energy_per_read_fj),
            i.mode_counts
        );
    }
    eprintln!("  SLO target {} (window {})", f3(slo.target), slo.window);

    let out_path = args.out_path(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/fleet_sim.json"
    ));
    let bench_path = out_path.with_file_name("BENCH_fleet.json");
    let write_report = |runs: Vec<InstanceRun>, partial: bool, metrics: Option<MetricsSnapshot>| {
        let summary = (!partial).then(|| summarize(&slo, &runs));
        let report = FleetReport {
            benchmark: Benchmark::Cos.name().to_string(),
            scale_bits,
            seed: args.seed,
            epochs: EPOCHS,
            instances_per_arm: FLEET,
            slo: slo.clone(),
            variants: infos.clone(),
            partial,
            runs,
            summary,
            metrics,
        };
        write_versioned_json(&out_path, &report)
    };
    if token.is_cancelled() {
        if let Some(signal) = shutdown::take_requested_signal() {
            obs.emit(&SearchEvent::ShutdownRequested {
                signal: signal.to_string(),
            });
        }
        obs.finish()?;
        write_report(Vec::new(), true, obs.metrics_snapshot())?;
        eprintln!("wrote {} (partial)", out_path.display());
        return Ok(Termination::Cancelled);
    }

    // --- The fleet: one supervised item per (arm, instance). ---
    let scale_label = format!("reduced-{scale_bits}");
    let items: Vec<WorkItem<'_, InstanceRun>> = Arm::ALL
        .iter()
        .flat_map(|&arm| (0..FLEET).map(move |idx| (arm, idx)))
        .map(|(arm, idx)| {
            let (token, target, bank, slo, drift) = (&token, &target, &bank, &slo, &drift);
            WorkItem::new(
                WorkKey::new(
                    Benchmark::Cos.name(),
                    &format!("{}/{idx}", arm.name()),
                    args.seed,
                    &scale_label,
                    &(EPOCHS, FLEET, BURST_AT, SEU_AT),
                ),
                vec![Strategy::new(arm.name(), move |o: &dyn Observer| {
                    run_instance(arm, idx, target, bank, slo, drift, args.seed, token, o)
                })],
            )
        })
        .collect();
    let total = items.len();
    let fleet_fp = fingerprint(&format!(
        "fleetsim/{scale_label}/seed{}/epochs{EPOCHS}/fleet{FLEET}",
        args.seed
    ));
    let supervisor = args.supervisor(fleet_fp, &token)?;
    let to_runs = |records: &[WorkRecord<InstanceRun>]| -> Vec<InstanceRun> {
        records.iter().filter_map(|r| r.result.clone()).collect()
    };
    let outcome = supervisor.run(items, obs.observer(), |snapshot| {
        if let Err(e) = write_report(
            to_runs(&snapshot.completed),
            snapshot.completed.len() < total,
            None,
        ) {
            eprintln!("warning: partial results write failed: {e}");
        }
    });
    if let Some(signal) = shutdown::take_requested_signal() {
        obs.emit(&SearchEvent::ShutdownRequested {
            signal: signal.to_string(),
        });
    }
    if outcome.resumed > 0 {
        eprintln!(
            "fleetsim: resumed {} of {total} fleet instances from checkpoint",
            outcome.resumed
        );
    }

    let runs = to_runs(&outcome.records);
    let partial = !outcome.is_complete();
    if !partial {
        let summary = summarize(&slo, &runs);
        let mut table = Table::new(&[
            "arm",
            "violation-rate",
            "mean-err",
            "energy (fJ)",
            "scrubs",
            "upgrades",
            "relaxes",
        ]);
        for a in &summary.arms {
            table.row(vec![
                a.arm.clone(),
                f3(a.violation_rate),
                f3(a.mean_err),
                format!("{:.3e}", a.energy_fj),
                a.scrubs.to_string(),
                a.upgrades.to_string(),
                a.relaxes.to_string(),
            ]);
        }
        println!(
            "\nFleet of {FLEET} instances/arm, {EPOCHS} epochs, SLO target {}.\n",
            f3(slo.target)
        );
        println!("{}", table.render());
        println!(
            "energy saved vs pinned-max: {:.3e} fJ ({:.1}%)",
            summary.energy_saved_vs_pinned_fj,
            100.0 * summary.energy_saved_vs_pinned_frac
        );
        let bench = BenchSummary {
            benchmark: Benchmark::Cos.name().to_string(),
            scale_bits,
            seed: args.seed,
            slo_target: slo.target,
            summary,
        };
        write_versioned_json(&bench_path, &bench)?;
        eprintln!("wrote {}", bench_path.display());
    }
    obs.finish()?;
    write_report(runs, partial, obs.metrics_snapshot())?;
    eprintln!(
        "wrote {}{}",
        out_path.display(),
        if partial { " (partial)" } else { "" }
    );
    Ok(outcome.termination)
}

fn main() -> ExitCode {
    match run() {
        Ok(Termination::Completed) => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!("fleetsim: interrupted — resume with --checkpoint-dir ... --resume");
            ExitCode::from(130)
        }
        Err(e) => {
            eprintln!("fleetsim: {e}");
            ExitCode::FAILURE
        }
    }
}
