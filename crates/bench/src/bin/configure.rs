//! CLI: search a benchmark function and write the resulting
//! architecture configuration as JSON (consumed by `synth`).
//!
//! ```sh
//! cargo run -p dalut-bench --release --bin configure -- --only cos --scale 10 > cos.json
//! ```

use dalut_bench::setup::bssa_params;
use dalut_bench::{HarnessArgs, Observation};
use dalut_benchfns::Benchmark;
use dalut_boolfn::InputDistribution;
use dalut_core::{error_breakdown, ApproxLutBuilder, ArchPolicy};

fn main() {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).unwrap_or_else(|e| {
        eprintln!("configure: cannot set up observation: {e}");
        std::process::exit(2);
    });
    let bench: Benchmark = args
        .only
        .as_deref()
        .unwrap_or("cos")
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let target = bench.table(args.scale()).expect("benchmark builds");
    let dist = InputDistribution::uniform(target.inputs()).expect("valid width");
    let mut params = bssa_params(&args, target.inputs());
    params.search.seed = args.seed;
    eprintln!(
        "configuring {bench} ({} in / {} out) with BS-SA, BTO-Normal-ND policy...",
        target.inputs(),
        target.outputs()
    );
    let outcome = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .bs_sa(params)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .budget(args.budget())
        .observer(obs.observer())
        .run()
        .expect("search succeeds");
    let (bto, normal, nd) = outcome.config.mode_counts();
    eprintln!(
        "MED {:.4}, modes (BTO/Normal/ND) = {bto}/{normal}/{nd}, {} LUT entries",
        outcome.med,
        outcome.config.lut_entries()
    );
    // Per-bit error diagnostics: where does the MED come from?
    let breakdown = error_breakdown(&outcome.config, &target, &dist).expect("same dimensions");
    eprintln!("bit  mode    flip-rate  marginal-MED  repair-gain");
    for b in &breakdown.bits {
        eprintln!(
            "{:>3}  {:<7} {:>8.4}  {:>11.4}  {:>10.4}",
            b.bit,
            format!("{:?}", b.mode),
            b.flip_rate,
            b.marginal_med,
            b.repair_gain
        );
    }
    if let Some(dom) = breakdown.dominant_bit() {
        eprintln!("dominant error source: output bit {dom}");
    }
    obs.finish().expect("flush trace");
    println!(
        "{}",
        serde_json::to_string_pretty(&outcome.config).expect("config serialises")
    );
}
