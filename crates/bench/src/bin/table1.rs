//! Regenerates **Table I**: the benchmark list with domains, ranges and
//! bit widths, verified against the actually constructed truth tables.

use dalut_bench::{HarnessArgs, Table};
use dalut_benchfns::Benchmark;

fn main() {
    let args = HarnessArgs::from_env();
    let scale = args.scale();

    let mut cont = Table::new(&["Continuous", "Domain", "Range", "#input", "#output"]);
    let mut disc = Table::new(&["Non-continuous", "#input", "#output"]);
    for b in Benchmark::all() {
        let t = b.table(scale).expect("benchmark builds at this scale");
        assert_eq!(t.outputs(), b.output_bits(scale), "{b}: width metadata");
        if b.is_continuous() {
            cont.row(vec![
                b.name().to_string(),
                b.domain().unwrap().to_string(),
                b.range().unwrap().to_string(),
                t.inputs().to_string(),
                t.outputs().to_string(),
            ]);
        } else {
            disc.row(vec![
                b.name().to_string(),
                t.inputs().to_string(),
                t.outputs().to_string(),
            ]);
        }
    }
    println!("Table I. Benchmarks used in the experiments (scale: {scale:?}).\n");
    println!("{}", cont.render());
    println!("{}", disc.render());
}
