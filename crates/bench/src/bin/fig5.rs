//! Regenerates **Fig. 5**: MED, area, latency and energy of RoundOut,
//! RoundIn, DALTA, BTO-Normal and BTO-Normal-ND — geometric means over
//! all benchmarks, normalised to DALTA.
//!
//! The paper's headline: BTO-Normal has 10.4 % less error and 19.2 % less
//! energy than DALTA; BTO-Normal-ND has 23.0 % less error at roughly the
//! same energy (with 29 % more area).

use dalut_bench::report::{f3, write_json};
use dalut_bench::setup::{bssa_params, dalta_params, round_in_w, ENERGY_READS};
use dalut_bench::{geomean, HarnessArgs, Observation, Table};
use dalut_benchfns::Benchmark;
use dalut_boolfn::{metrics, InputDistribution, TruthTable};
use dalut_core::{ApproxLutBuilder, ArchPolicy};
use dalut_hw::{
    build_approx_lut, build_round_in, build_round_out, characterize, round_in_table,
    round_out_table, ArchInstance, ArchStyle,
};
use dalut_netlist::{critical_path_ns, CellLibrary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const ARCH_NAMES: [&str; 5] = [
    "RoundOut",
    "RoundIn",
    "DALTA",
    "BTO-Normal",
    "BTO-Normal-ND",
];

#[derive(Debug, Serialize)]
struct ArchMetrics {
    arch: String,
    med: f64,
    area_um2: f64,
    delay_ns: f64,
    energy_per_read_fj: f64,
}

#[derive(Debug, Serialize)]
struct BenchRow {
    benchmark: String,
    round_out_q: usize,
    round_in_w: usize,
    metrics: Vec<ArchMetrics>,
}

/// Chooses RoundOut's `q` per benchmark: the smallest `q` whose MED
/// exceeds the DALTA reference MED (the paper "adjusts q for each
/// benchmark so that the resulting MED is larger than that of DALTA").
fn choose_q(target: &TruthTable, dist: &InputDistribution, dalta_med: f64) -> usize {
    for q in 1..target.outputs() {
        let r = round_out_table(target, q).expect("same dims");
        if metrics::med(target, &r, dist).expect("same dims") > dalta_med {
            return q;
        }
    }
    target.outputs() - 1
}

fn main() {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).expect("observation set up");
    let scale = args.scale();
    let lib = CellLibrary::nangate45();
    eprintln!("fig5: scale {scale:?}");

    let mut rows: Vec<BenchRow> = Vec::new();
    for bench in Benchmark::all() {
        if let Some(only) = &args.only {
            if !bench.name().eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let target = bench.table(scale).expect("benchmark builds");
        let n = target.inputs();
        let dist = InputDistribution::uniform(n).expect("valid width");

        // --- Configure the three decomposition architectures. ---
        // DALTA is configured with the best of the repeat runs (paper:
        // best of 10); BS-SA runs once "thanks to its high stability".
        let mut best_dalta = None;
        for run in 0..args.effective_runs() {
            let mut dp = dalta_params(&args, n);
            dp.search.seed = args.seed + 1000 * run as u64;
            let out = ApproxLutBuilder::new(&target)
                .distribution(dist.clone())
                .dalta(dp)
                .budget(args.budget())
                .observer(obs.observer())
                .run()
                .expect("dalta runs");
            if best_dalta
                .as_ref()
                .is_none_or(|b: &dalut_core::SearchOutcome| out.med < b.med)
            {
                best_dalta = Some(out);
            }
        }
        let dalta = best_dalta.expect("at least one run");
        let mut bp = bssa_params(&args, n);
        bp.search.seed = args.seed;
        let search = |policy: ArchPolicy| {
            ApproxLutBuilder::new(&target)
                .distribution(dist.clone())
                .bs_sa(bp)
                .policy(policy)
                .budget(args.budget())
                .observer(obs.observer())
                .run()
                .expect("bs-sa runs")
        };
        let bn = search(ArchPolicy::bto_normal_paper());
        let bnnd = search(ArchPolicy::bto_normal_nd_paper());

        // --- Rounding baselines. ---
        let q = choose_q(&target, &dist, dalta.med);
        let w = round_in_w(n);
        let ro_model = round_out_table(&target, q).expect("same dims");
        let ri_model = round_in_table(&target, w).expect("same dims");

        // --- Build hardware. ---
        let instances: Vec<(ArchInstance, f64)> = vec![
            (
                build_round_out(&target, q),
                metrics::med(&target, &ro_model, &dist).expect("same dims"),
            ),
            (
                build_round_in(&target, w),
                metrics::med(&target, &ri_model, &dist).expect("same dims"),
            ),
            (
                build_approx_lut(&dalta.config, ArchStyle::Dalta).expect("normal-only config"),
                dalta.med,
            ),
            (
                build_approx_lut(&bn.config, ArchStyle::BtoNormal).expect("bto/normal config"),
                bn.med,
            ),
            (
                build_approx_lut(&bnnd.config, ArchStyle::BtoNormalNd).expect("any config"),
                bnnd.med,
            ),
        ];

        // Same delay constraint for every architecture: clock them all at
        // the slowest critical path (paper §V-B).
        let clock = instances
            .iter()
            .map(|(inst, _)| critical_path_ns(inst.netlist(), &lib).expect("acyclic"))
            .fold(0.0f64, f64::max)
            * 1.05;

        // 1024 random reads, identical trace for every architecture.
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF165);
        let reads: Vec<u32> = (0..ENERGY_READS)
            .map(|_| rng.random_range(0..(1u32 << n)))
            .collect();

        // Functional sign-off (the paper's VCS step): every architecture
        // must match its software model on a sample before being measured.
        let models: [&dyn Fn(u32) -> u32; 5] = [
            &|x| ro_model.eval(x),
            &|x| ri_model.eval(x),
            &|x| dalta.config.eval(x),
            &|x| bn.config.eval(x),
            &|x| bnnd.config.eval(x),
        ];
        for ((inst, _), model) in instances.iter().zip(models) {
            let mut sim = inst.simulator().expect("acyclic");
            for &x in reads.iter().take(64) {
                assert_eq!(inst.read(&mut sim, x), model(x), "hardware sign-off failed");
            }
        }

        let mut metrics_out = Vec::new();
        for ((inst, med), name) in instances.iter().zip(ARCH_NAMES) {
            let rep = characterize(inst, &reads, &lib, clock).expect("characterise");
            metrics_out.push(ArchMetrics {
                arch: name.to_string(),
                med: *med,
                area_um2: rep.area_um2,
                delay_ns: rep.critical_path_ns,
                energy_per_read_fj: rep.energy_per_read_fj,
            });
        }
        eprintln!(
            "  {}: q={q} w={w} | MEDs: {}",
            bench.name(),
            metrics_out
                .iter()
                .map(|m| format!("{}={:.3}", m.arch, m.med))
                .collect::<Vec<_>>()
                .join(" ")
        );
        rows.push(BenchRow {
            benchmark: bench.name().to_string(),
            round_out_q: q,
            round_in_w: w,
            metrics: metrics_out,
        });
    }

    // --- Normalised geometric means (Fig. 5). ---
    let mut table = Table::new(&["architecture", "MED", "Area", "Latency", "Energy"]);
    let dalta_idx = 2;
    for (ai, name) in ARCH_NAMES.iter().enumerate() {
        let norm = |f: &dyn Fn(&ArchMetrics) -> f64| {
            let vals: Vec<f64> = rows
                .iter()
                .map(|r| f(&r.metrics[ai]) / f(&r.metrics[dalta_idx]))
                .collect();
            geomean(&vals)
        };
        table.row(vec![
            name.to_string(),
            f3(norm(&|m| m.med)),
            f3(norm(&|m| m.area_um2)),
            f3(norm(&|m| m.delay_ns)),
            f3(norm(&|m| m.energy_per_read_fj)),
        ]);
    }
    println!("\nFig. 5. Geomean metrics normalised to DALTA.\n");
    println!("{}", table.render());
    obs.finish().expect("flush trace");
    let path = args.out_path("fig5_results.json");
    write_json(&path, &rows).expect("write results");
    eprintln!("wrote {}", path.display());
}
