//! Regenerates **Fig. 5**: MED, area, latency and energy of RoundOut,
//! RoundIn, DALTA, BTO-Normal and BTO-Normal-ND — geometric means over
//! all benchmarks, normalised to DALTA.
//!
//! The paper's headline: BTO-Normal has 10.4 % less error and 19.2 % less
//! energy than DALTA; BTO-Normal-ND has 23.0 % less error at roughly the
//! same energy (with 29 % more area).
//!
//! Each benchmark is one supervised work item (search → build → sign-off
//! → characterise): `--checkpoint-dir`/`--resume` make the figure sweep
//! crash-safe, and SIGINT/SIGTERM leave a partial-marked
//! `fig5_results.json` with the benchmarks finished so far.

use dalut_bench::report::{f3, write_json};
use dalut_bench::setup::{
    benchfns_resolver, bound_size, bssa_spec, dalta_spec, round_in_w, ENERGY_READS,
};
use dalut_bench::signoff::{EstimatorSummary, SignoffBank};
use dalut_bench::supervisor::{ItemError, Strategy, WorkItem};
use dalut_bench::{geomean, shutdown, HarnessArgs, Observation, Table};
use dalut_benchfns::Benchmark;
use dalut_boolfn::{metrics, InputDistribution, TruthTable};
use dalut_core::checkpoint::{fingerprint, WorkKey};
use dalut_core::{
    ApproxLutBuilder, ArchPolicy, CancelToken, Observer, RunBudget, SearchEvent, Termination,
};
use dalut_est::{CalibrationOptions, EstimatorMode};
use dalut_hw::{
    build_approx_lut, build_round_in, build_round_out, characterize_observed, round_in_table,
    round_out_table, ArchInstance, ArchStyle,
};
use dalut_netlist::{critical_path_ns, CellLibrary, LANES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

const ARCH_NAMES: [&str; 5] = [
    "RoundOut",
    "RoundIn",
    "DALTA",
    "BTO-Normal",
    "BTO-Normal-ND",
];

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArchMetrics {
    arch: String,
    med: f64,
    area_um2: f64,
    delay_ns: f64,
    energy_per_read_fj: f64,
    /// Closed-form estimate at the row's clock, for the decomposition
    /// architectures when the estimator is active (validation only —
    /// the figure always quotes exact numbers).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    estimated_energy_fj: Option<f64>,
    /// `|estimate - exact| / exact` for the energy above.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    estimate_rel_err: Option<f64>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchRow {
    benchmark: String,
    round_out_q: usize,
    round_in_w: usize,
    metrics: Vec<ArchMetrics>,
}

#[derive(Debug, Serialize)]
struct Fig5Report {
    schema: String,
    /// `true` while benchmarks are still outstanding (interrupted run).
    partial: bool,
    rows: Vec<BenchRow>,
    /// Present when `--estimator prune|trust` validated the sweep.
    #[serde(skip_serializing_if = "Option::is_none")]
    estimator: Option<EstimatorSummary>,
}

/// Chooses RoundOut's `q` per benchmark: the smallest `q` whose MED
/// exceeds the DALTA reference MED (the paper "adjusts q for each
/// benchmark so that the resulting MED is larger than that of DALTA").
fn choose_q(target: &TruthTable, dist: &InputDistribution, dalta_med: f64) -> usize {
    for q in 1..target.outputs() {
        let r = round_out_table(target, q).expect("same dims");
        if metrics::med(target, &r, dist).expect("same dims") > dalta_med {
            return q;
        }
    }
    target.outputs() - 1
}

/// The full per-benchmark pipeline: searches, rounding baselines,
/// hardware builds, the common-clock characterisation and sign-off.
/// Deterministic for a fixed seed, so a replayed item reproduces the
/// interrupted run's row exactly. When an estimator `bank` is supplied,
/// each decomposition architecture additionally records its closed-form
/// energy estimate next to the exact number (Fig. 5 is the estimator's
/// accuracy-validation sweep — the figure itself stays exact).
#[allow(clippy::too_many_lines)]
fn bench_row(
    bench: Benchmark,
    args: &HarnessArgs,
    lib: &CellLibrary,
    budget: &RunBudget,
    token: &CancelToken,
    bank: Option<&SignoffBank>,
    observer: &dyn Observer,
) -> Result<BenchRow, ItemError> {
    let fail = |e: &dyn std::fmt::Display| ItemError::Failed(e.to_string());
    let scale = args.scale();
    let target = bench.table(scale).map_err(|e| fail(&e))?;
    let n = target.inputs();
    let dist = InputDistribution::uniform(n).map_err(|e| fail(&e))?;

    // --- Configure the three decomposition architectures. ---
    // DALTA is configured with the best of the repeat runs (paper:
    // best of 10); BS-SA runs once "thanks to its high stability".
    let mut best_dalta = None;
    for run in 0..args.effective_runs() {
        let seed = args.seed + 1000 * run as u64;
        let spec = dalta_spec(args, bench, scale, seed)
            .canonicalize(&benchfns_resolver())
            .map_err(|e| fail(&e))?;
        let out = ApproxLutBuilder::from_spec(&spec)
            .map_err(|e| fail(&e))?
            .budget(budget.clone())
            .observer(observer)
            .run()
            .map_err(|e| fail(&e))?;
        if out.termination == Termination::Cancelled {
            return Err(ItemError::Cancelled);
        }
        if best_dalta
            .as_ref()
            .is_none_or(|b: &dalut_core::SearchOutcome| out.med < b.med)
        {
            best_dalta = Some(out);
        }
    }
    let dalta = best_dalta.ok_or_else(|| ItemError::Failed("no dalta run".into()))?;
    let search = |policy: ArchPolicy| -> Result<dalut_core::SearchOutcome, ItemError> {
        let spec = bssa_spec(args, bench, scale, policy, args.seed)
            .canonicalize(&benchfns_resolver())
            .map_err(|e| fail(&e))?;
        let out = ApproxLutBuilder::from_spec(&spec)
            .map_err(|e| fail(&e))?
            .budget(budget.clone())
            .observer(observer)
            .run()
            .map_err(|e| fail(&e))?;
        if out.termination == Termination::Cancelled {
            return Err(ItemError::Cancelled);
        }
        Ok(out)
    };
    let bn = search(ArchPolicy::bto_normal_paper())?;
    let bnnd = search(ArchPolicy::bto_normal_nd_paper())?;
    if token.is_cancelled() {
        return Err(ItemError::Cancelled);
    }

    // --- Rounding baselines. ---
    let q = choose_q(&target, &dist, dalta.med);
    let w = round_in_w(n);
    let ro_model = round_out_table(&target, q).map_err(|e| fail(&e))?;
    let ri_model = round_in_table(&target, w).map_err(|e| fail(&e))?;

    // --- Build hardware. ---
    let instances: Vec<(ArchInstance, f64)> = vec![
        (
            build_round_out(&target, q),
            metrics::med(&target, &ro_model, &dist).map_err(|e| fail(&e))?,
        ),
        (
            build_round_in(&target, w),
            metrics::med(&target, &ri_model, &dist).map_err(|e| fail(&e))?,
        ),
        (
            build_approx_lut(&dalta.config, ArchStyle::Dalta).map_err(|e| fail(&e))?,
            dalta.med,
        ),
        (
            build_approx_lut(&bn.config, ArchStyle::BtoNormal).map_err(|e| fail(&e))?,
            bn.med,
        ),
        (
            build_approx_lut(&bnnd.config, ArchStyle::BtoNormalNd).map_err(|e| fail(&e))?,
            bnnd.med,
        ),
    ];

    // Same delay constraint for every architecture: clock them all at
    // the slowest critical path (paper §V-B).
    let clock = instances
        .iter()
        .map(|(inst, _)| critical_path_ns(inst.netlist(), lib).expect("acyclic"))
        .fold(0.0f64, f64::max)
        * 1.05;

    // 1024 random reads, identical trace for every architecture.
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF165);
    let reads: Vec<u32> = (0..ENERGY_READS)
        .map(|_| rng.random_range(0..(1u32 << n)))
        .collect();

    // Functional sign-off (the paper's VCS step): every architecture
    // must match its software model on a sample before being measured.
    let models: [&dyn Fn(u32) -> u32; 5] = [
        &|x| ro_model.eval(x),
        &|x| ri_model.eval(x),
        &|x| dalta.config.eval(x),
        &|x| bn.config.eval(x),
        &|x| bnnd.config.eval(x),
    ];
    let sample = &reads[..reads.len().min(LANES)];
    for ((inst, _), model) in instances.iter().zip(models) {
        let outs = inst.read_sequence(sample).expect("acyclic");
        for (&x, &y) in sample.iter().zip(&outs) {
            assert_eq!(y, model(x), "hardware sign-off failed");
        }
    }

    let mut metrics_out = Vec::new();
    for ((inst, med), name) in instances.iter().zip(ARCH_NAMES) {
        let rep =
            characterize_observed(inst, &reads, lib, clock, observer).map_err(|e| fail(&e))?;
        metrics_out.push(ArchMetrics {
            arch: name.to_string(),
            med: *med,
            area_um2: rep.area_um2,
            delay_ns: rep.critical_path_ns,
            energy_per_read_fj: rep.energy_per_read_fj,
            estimated_energy_fj: None,
            estimate_rel_err: None,
        });
    }
    if let Some(bank) = bank {
        let families = [
            (2usize, ArchStyle::Dalta, &dalta.config),
            (3, ArchStyle::BtoNormal, &bn.config),
            (4, ArchStyle::BtoNormalNd, &bnnd.config),
        ];
        for (i, style, config) in families {
            let est = bank
                .estimator(style)
                .with_clock(clock)
                .estimate(config)
                .map_err(|e| fail(&e))?;
            let exact = metrics_out[i].energy_per_read_fj;
            metrics_out[i].estimated_energy_fj = Some(est.energy_per_read_fj);
            metrics_out[i].estimate_rel_err =
                Some((est.energy_per_read_fj - exact).abs() / exact.max(f64::MIN_POSITIVE));
        }
        observer.on_event(&SearchEvent::EstimateBatch {
            arch: "fig5-validation".to_string(),
            candidates: families.len(),
        });
    }
    eprintln!(
        "  {}: q={q} w={w} | MEDs: {}",
        bench.name(),
        metrics_out
            .iter()
            .map(|m| format!("{}={:.3}", m.arch, m.med))
            .collect::<Vec<_>>()
            .join(" ")
    );
    Ok(BenchRow {
        benchmark: bench.name().to_string(),
        round_out_q: q,
        round_in_w: w,
        metrics: metrics_out,
    })
}

fn main() -> ExitCode {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).expect("observation set up");
    let scale = args.scale();
    let lib = CellLibrary::nangate45();
    let token = CancelToken::new();
    shutdown::install(&token);
    eprintln!("fig5: scale {scale:?}");

    let benches: Vec<Benchmark> = Benchmark::all()
        .into_iter()
        .filter(|bench| {
            args.only
                .as_ref()
                .is_none_or(|only| bench.name().eq_ignore_ascii_case(only))
        })
        .collect();
    let scale_label = format!("{scale:?}");
    let budget = args.budget().with_cancel(&token);
    // One calibrated estimator bank shared by every benchmark row (all
    // benchmarks have the same input width at a given scale).
    let bank = if args.estimator == EstimatorMode::Off {
        None
    } else {
        let n = scale.input_bits();
        let dist = InputDistribution::uniform(n).expect("valid width");
        Some(
            SignoffBank::prepare(
                &[
                    ArchStyle::Dalta,
                    ArchStyle::BtoNormal,
                    ArchStyle::BtoNormalNd,
                ],
                &dist,
                &lib,
                &CalibrationOptions::for_width(n, bound_size(n)),
                args.checkpoint_dir.as_deref(),
            )
            .expect("estimator calibration"),
        )
    };
    let items: Vec<WorkItem<'_, BenchRow>> = benches
        .iter()
        .map(|&bench| {
            let (args, lib, budget, token) = (&args, &lib, &budget, &token);
            let bank = bank.as_ref();
            WorkItem::new(
                WorkKey::new(
                    bench.name(),
                    "fig5",
                    args.seed,
                    &scale_label,
                    &(args.effective_runs(), args.budget_secs),
                ),
                vec![Strategy::new("fig5", move |o: &dyn Observer| {
                    bench_row(bench, args, lib, budget, token, bank, o)
                })],
            )
        })
        .collect();
    let total = items.len();
    let sweep_fp = fingerprint(&format!(
        "fig5/{scale_label}/seed{}/runs{}/only{:?}/budget{:?}",
        args.seed,
        args.effective_runs(),
        args.only,
        args.budget_secs
    ));
    let supervisor = args
        .supervisor(sweep_fp, &token)
        .expect("checkpoint dir usable");
    let out_path = args.out_path("fig5_results.json");
    let to_report = |rows: Vec<BenchRow>, partial: bool| {
        // Every validation estimate was also signed off exactly.
        let validated = 3 * rows.len();
        Fig5Report {
            schema: "dalut-fig5/v2".to_string(),
            partial,
            estimator: bank
                .as_ref()
                .map(|b| b.summary(args.estimator, validated, validated)),
            rows,
        }
    };

    let outcome = supervisor.run(items, obs.observer(), |snapshot| {
        let rows: Vec<BenchRow> = snapshot
            .completed
            .iter()
            .filter_map(|r| r.result.clone())
            .collect();
        let partial = snapshot.completed.len() < total;
        if let Err(e) = write_json(&out_path, &to_report(rows, partial)) {
            eprintln!("warning: partial results write failed: {e}");
        }
    });
    if let Some(signal) = shutdown::take_requested_signal() {
        obs.emit(&SearchEvent::ShutdownRequested {
            signal: signal.to_string(),
        });
    }
    if outcome.resumed > 0 {
        eprintln!(
            "fig5: resumed {} of {total} benchmarks from checkpoint",
            outcome.resumed
        );
    }
    let rows: Vec<BenchRow> = outcome
        .records
        .iter()
        .filter_map(|r| r.result.clone())
        .collect();

    // --- Normalised geometric means (Fig. 5). ---
    if !rows.is_empty() {
        let mut table = Table::new(&["architecture", "MED", "Area", "Latency", "Energy"]);
        let dalta_idx = 2;
        for (ai, name) in ARCH_NAMES.iter().enumerate() {
            let norm = |f: &dyn Fn(&ArchMetrics) -> f64| {
                let vals: Vec<f64> = rows
                    .iter()
                    .map(|r| f(&r.metrics[ai]) / f(&r.metrics[dalta_idx]))
                    .collect();
                geomean(&vals)
            };
            table.row(vec![
                name.to_string(),
                f3(norm(&|m| m.med)),
                f3(norm(&|m| m.area_um2)),
                f3(norm(&|m| m.delay_ns)),
                f3(norm(&|m| m.energy_per_read_fj)),
            ]);
        }
        println!("\nFig. 5. Geomean metrics normalised to DALTA.\n");
        println!("{}", table.render());
        let errs: Vec<f64> = rows
            .iter()
            .flat_map(|r| r.metrics.iter().filter_map(|m| m.estimate_rel_err))
            .collect();
        if !errs.is_empty() {
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            let max = errs.iter().copied().fold(0.0f64, f64::max);
            println!(
                "Estimator validation over {} exact points: mean |rel err| {}, max {}.",
                errs.len(),
                f3(mean),
                f3(max)
            );
        }
    }
    obs.finish().expect("flush trace");
    let partial = !outcome.is_complete();
    write_json(&out_path, &to_report(rows, partial)).expect("write results");
    eprintln!(
        "wrote {}{}",
        out_path.display(),
        if partial { " (partial)" } else { "" }
    );
    if outcome.is_complete() {
        ExitCode::SUCCESS
    } else {
        eprintln!("fig5: interrupted — resume with --checkpoint-dir ... --resume");
        ExitCode::from(130)
    }
}
