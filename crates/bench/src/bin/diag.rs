//! Diagnostic harness (ablation runner): isolates which BS-SA ingredient
//! drives the quality difference vs DALTA on one benchmark — the
//! predictive LSB model vs accurate fill, and the SA budget.

use dalut_bench::setup::{bssa_params, dalta_params};
use dalut_bench::{HarnessArgs, Observation};
use dalut_benchfns::Benchmark;
use dalut_boolfn::InputDistribution;
use dalut_core::{ApproxLutBuilder, ArchPolicy};
use dalut_decomp::LsbFill;

fn main() {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).expect("observation set up");
    let scale = args.scale();
    let bench: Benchmark = args
        .only
        .as_deref()
        .unwrap_or("cos")
        .parse()
        .expect("valid benchmark");
    let target = bench.table(scale).expect("builds");
    let dist = InputDistribution::uniform(target.inputs()).unwrap();
    let n = target.inputs();

    for run in 0..args.runs {
        let seed = args.seed + 1000 * run as u64;
        let mut dp = dalta_params(&args, n);
        dp.search.seed = seed;
        let dalta = ApproxLutBuilder::new(&target)
            .distribution(dist.clone())
            .dalta(dp)
            .budget(args.budget())
            .observer(obs.observer())
            .run()
            .unwrap();

        let mut bp = bssa_params(&args, n);
        bp.search.seed = seed;
        let pred = ApproxLutBuilder::new(&target)
            .distribution(dist.clone())
            .bs_sa(bp)
            .policy(ArchPolicy::NormalOnly)
            .budget(args.budget())
            .observer(obs.observer())
            .run()
            .unwrap();

        let mut bp2 = bp;
        bp2.round1_fill = LsbFill::Accurate;
        let acc = ApproxLutBuilder::new(&target)
            .distribution(dist.clone())
            .bs_sa(bp2)
            .policy(ArchPolicy::NormalOnly)
            .budget(args.budget())
            .observer(obs.observer())
            .run()
            .unwrap();

        println!(
            "run {run}: DALTA {:.3} (rounds {:?}) | BS-SA/pred {:.3} (rounds {:?}) | BS-SA/acc {:.3} (rounds {:?})",
            dalta.med,
            dalta.round_meds.iter().map(|m| (m * 100.0).round() / 100.0).collect::<Vec<_>>(),
            pred.med,
            pred.round_meds.iter().map(|m| (m * 100.0).round() / 100.0).collect::<Vec<_>>(),
            acc.med,
            acc.round_meds.iter().map(|m| (m * 100.0).round() / 100.0).collect::<Vec<_>>(),
        );
    }
    obs.finish().expect("flush trace");
}
