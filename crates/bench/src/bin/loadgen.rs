//! `loadgen` — drives a `dalut-serve` instance with thousands of
//! concurrent mixed hit/miss requests and writes `BENCH_serve.json`.
//!
//! Each connection pipelines submissions with a bounded window of
//! outstanding requests, so the fleet sustains `connections × window`
//! in-flight requests (the default 64 × 16 = 1024) while per-request
//! latency stays attributable: a cache-hit response never waits behind
//! more than `window - 1` frames on its own connection.
//!
//! The request mix is `warm + cold` distinct [`JobSpec`]s. Warm specs
//! are submitted once up front on a separate connection (the cold path,
//! measured separately), so during the flood every request for them is
//! a pure cache hit; cold specs are first seen mid-flood, exercising
//! the leader/follower coalescing path. Requests cycle over the specs,
//! offset per connection. `--skip-warmup` skips the pre-submission
//! phase entirely: every spec is then first seen mid-flood and
//! byte-identity anchors on the first completed response per
//! fingerprint.
//!
//! Besides latency percentiles the run checks the server's byte-identity
//! guarantee: every `outcome` section observed for a fingerprint — cold,
//! coalesced or cached, on any connection — must be byte-identical to
//! the first one seen. Any mismatch, dropped response or error frame
//! fails the run (non-zero exit).
//!
//! With no `--addr`, an in-process server is spawned on a free port
//! (in-memory cache), so `loadgen` is self-contained; point `--addr` at
//! a separately started `dalut-serve` to exercise a persistent cache.

use dalut_bench::report::{write_versioned_json, Versioned};
use dalut_core::{
    Algorithm, ArchPolicy, BsSaParams, BudgetSpec, DalutError, DistributionSpec, EstimatorMode,
    FunctionSource, JobSpec,
};
use dalut_serve::{outcome_section, ClientFrame, Server, ServerConfig};
use serde::Serialize;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// How long a reader waits on a silent socket before declaring the
/// remaining responses dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(60);

struct Args {
    addr: Option<String>,
    connections: usize,
    window: usize,
    requests: usize,
    warm: usize,
    cold: usize,
    workers: usize,
    seed: u64,
    skip_warmup: bool,
    out: PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: None,
            connections: 64,
            window: 16,
            requests: 6400,
            warm: 6,
            cold: 2,
            workers: 4,
            seed: 42,
            skip_warmup: false,
            out: PathBuf::from("BENCH_serve.json"),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--connections N] [--window N] \
         [--requests N] [--warm N] [--cold N] [--workers N] [--seed N] \
         [--skip-warmup] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| usage_missing(name));
        match flag.as_str() {
            "--addr" => args.addr = Some(val("--addr")),
            "--connections" => args.connections = parse_num(&val("--connections")),
            "--window" => args.window = parse_num(&val("--window")),
            "--requests" => args.requests = parse_num(&val("--requests")),
            "--warm" => args.warm = val("--warm").parse().unwrap_or_else(|_| usage()),
            "--cold" => args.cold = val("--cold").parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = parse_num(&val("--workers")),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--skip-warmup" => args.skip_warmup = true,
            "--out" => args.out = PathBuf::from(val("--out")),
            _ => usage(),
        }
    }
    if args.warm + args.cold == 0 || args.requests == 0 {
        usage();
    }
    args
}

fn usage_missing(name: &str) -> String {
    eprintln!("missing value for {name}");
    usage()
}

fn parse_num(s: &str) -> usize {
    match s.parse() {
        Ok(n) if n > 0 => n,
        _ => usage(),
    }
}

/// One distinct search job: the cheapest spec in the suite (6-bit cos,
/// fast BS-SA parameters), made distinct by its seed so each index has
/// its own fingerprint and cache entry.
fn make_spec(seed: u64) -> JobSpec {
    let mut params = BsSaParams::fast();
    params.search.seed = seed;
    params.search.threads = 1;
    JobSpec {
        function: FunctionSource::Benchmark {
            name: "cos".to_string(),
            scale_bits: 6,
        },
        distribution: DistributionSpec::Uniform,
        algorithm: Algorithm::BsSa(params),
        policy: ArchPolicy::NormalOnly,
        budget: BudgetSpec::unlimited(),
        estimator: EstimatorMode::Off,
    }
}

fn submit_frame(id: u64, spec: &JobSpec) -> Result<String, DalutError> {
    serde_json::to_string(&ClientFrame::Submit {
        id,
        client: None,
        stream: false,
        spec: Box::new(spec.clone()),
    })
    .map_err(|e| DalutError::Spec(format!("submit frame serialisation failed: {e}")))
}

/// Prints a typed error and returns the failure exit code: an
/// unreachable server or a connection dying mid-run must exit nonzero,
/// never panic.
fn fail(context: &str, e: &DalutError) -> ExitCode {
    eprintln!("loadgen: {context}: {e}");
    ExitCode::FAILURE
}

/// Scans `line` for a top-level `"key":<digits>` field. Result and
/// error frames put `id` right after `type`, well before the spliced
/// outcome, so the first occurrence is the frame's own field.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn frame_fingerprint(line: &str) -> Option<&str> {
    let at = line.find("\"fingerprint\":\"")? + "\"fingerprint\":\"".len();
    line.get(at..at + 32)
}

/// Per-connection measurements, merged after the flood.
#[derive(Default)]
struct ConnReport {
    hit_ms: Vec<f64>,
    miss_ms: Vec<f64>,
    received: usize,
    errors: usize,
    /// First outcome section seen per fingerprint on this connection.
    outcomes: HashMap<String, String>,
    mismatches: usize,
    elapsed_secs: f64,
}

/// Records an observed outcome section, counting byte mismatches
/// against the first observation for the same fingerprint.
fn record_outcome(outcomes: &mut HashMap<String, String>, mismatches: &mut usize, line: &str) {
    let (Some(fp), Some(outcome)) = (frame_fingerprint(line), outcome_section(line)) else {
        return;
    };
    match outcomes.get(fp) {
        Some(first) if first != outcome => *mismatches += 1,
        Some(_) => {}
        None => {
            outcomes.insert(fp.to_string(), outcome.to_string());
        }
    }
}

/// Submits each warm spec once on a dedicated connection and waits for
/// the cold-path responses, returning their latencies and outcomes.
fn warmup(addr: &str, specs: &[JobSpec], warm: usize) -> std::io::Result<ConnReport> {
    let mut report = ConnReport::default();
    if warm == 0 {
        return Ok(report);
    }
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut write_half = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?; // hello

    let mut sent = Vec::with_capacity(warm);
    for (i, spec) in specs.iter().take(warm).enumerate() {
        let frame = submit_frame(i as u64, spec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        sent.push(Instant::now());
        write_half.write_all(frame.as_bytes())?;
        write_half.write_all(b"\n")?;
    }
    while report.received < warm {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let Some(id) = field_u64(&line, "id") else {
            continue;
        };
        if line.contains("\"type\":\"result\"") {
            report.received += 1;
            report
                .miss_ms
                .push(sent[id as usize].elapsed().as_secs_f64() * 1e3);
            record_outcome(&mut report.outcomes, &mut report.mismatches, &line);
        } else if line.contains("\"type\":\"error\"") {
            report.received += 1;
            report.errors += 1;
        }
    }
    Ok(report)
}

/// One flood connection: pipelines `frames` with at most `window`
/// outstanding, measuring per-response latency from the moment each
/// frame hits the socket.
fn flood_connection(
    addr: &str,
    frames: Vec<String>,
    is_hit: Vec<bool>,
    window: usize,
    barrier: &Barrier,
    inflight: &AtomicI64,
    peak: &AtomicI64,
) -> std::io::Result<ConnReport> {
    let total = frames.len();
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut write_half = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut hello = String::new();
    reader.read_line(&mut hello)?;

    let sends: Arc<Mutex<Vec<Option<Instant>>>> = Arc::new(Mutex::new(vec![None; total]));
    let outstanding = Arc::new(AtomicI64::new(0));

    barrier.wait();
    let start = Instant::now();

    let reader_handle = {
        let sends = Arc::clone(&sends);
        let outstanding = Arc::clone(&outstanding);
        std::thread::spawn(move || {
            let mut report = ConnReport::default();
            let mut line = String::new();
            while report.received < total {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break, // EOF or timeout: rest counts as dropped
                    Ok(_) => {}
                }
                let is_result = line.contains("\"type\":\"result\"");
                let is_error = line.contains("\"type\":\"error\"");
                if !is_result && !is_error {
                    continue;
                }
                let Some(id) = field_u64(&line, "id") else {
                    continue;
                };
                let sent = sends.lock().expect("sends lock")[id as usize].take();
                report.received += 1;
                outstanding.fetch_sub(1, Ordering::Relaxed);
                if is_error {
                    report.errors += 1;
                    continue;
                }
                if let Some(sent) = sent {
                    let ms = sent.elapsed().as_secs_f64() * 1e3;
                    if is_hit[id as usize] {
                        report.hit_ms.push(ms);
                    } else {
                        report.miss_ms.push(ms);
                    }
                }
                record_outcome(&mut report.outcomes, &mut report.mismatches, &line);
            }
            report
        })
    };

    for (i, frame) in frames.iter().enumerate() {
        while outstanding.load(Ordering::Relaxed) >= window as i64 {
            std::thread::sleep(Duration::from_micros(20));
        }
        sends.lock().expect("sends lock")[i] = Some(Instant::now());
        outstanding.fetch_add(1, Ordering::Relaxed);
        let now = inflight.fetch_add(1, Ordering::Relaxed) + 1;
        peak.fetch_max(now, Ordering::Relaxed);
        write_half.write_all(frame.as_bytes())?;
        write_half.write_all(b"\n")?;
    }

    let mut report = reader_handle.join().expect("reader thread");
    // Undo counted-but-unanswered requests so the gauge stays honest.
    inflight.fetch_sub(total as i64 - report.received as i64, Ordering::Relaxed);
    report.elapsed_secs = start.elapsed().as_secs_f64();
    Ok(report)
}

#[derive(Serialize, Default)]
struct LatencyStats {
    count: usize,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

impl LatencyStats {
    fn of(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_by(f64::total_cmp);
        let pct = |p: f64| samples[((p * (samples.len() - 1) as f64).round()) as usize];
        Self {
            count: samples.len(),
            p50_ms: pct(0.50),
            p90_ms: pct(0.90),
            p99_ms: pct(0.99),
            max_ms: *samples.last().expect("non-empty"),
        }
    }
}

#[derive(Serialize)]
struct ServeBenchReport {
    connections: usize,
    window: usize,
    requests: usize,
    warm_specs: usize,
    cold_specs: usize,
    peak_inflight: i64,
    cache_hit: LatencyStats,
    miss: LatencyStats,
    warmup_cold: LatencyStats,
    throughput_rps: f64,
    fairness_spread: f64,
    errors: usize,
    dropped: usize,
    byte_identical: bool,
}

impl Versioned for ServeBenchReport {
    const SCHEMA: &'static str = "dalut-servebench/v1";
}

fn main() -> ExitCode {
    let args = parse_args();

    // No --addr: self-contained run against an in-process server.
    let (addr, server) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = match Server::bind(&ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: args.workers,
                cache_dir: None,
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(e) => return fail("bind in-process server", &e.into()),
            };
            let addr = match server.local_addr() {
                Ok(addr) => addr.to_string(),
                Err(e) => return fail("local addr", &e.into()),
            };
            let token = server.shutdown_token();
            let handle = std::thread::spawn(move || server.run());
            (addr, Some((token, handle)))
        }
    };

    let total_specs = args.warm + args.cold;
    let specs: Vec<JobSpec> = (0..total_specs)
        .map(|s| make_spec(args.seed + s as u64))
        .collect();

    // `--skip-warmup`: no spec is pre-submitted, so every spec is first
    // seen mid-flood (all-coalescing stress). Byte-identity then anchors
    // on the first completed response observed per fingerprint instead
    // of the warmup's cold outcomes.
    let warm_report = if args.skip_warmup {
        eprintln!("loadgen: --skip-warmup: all specs first seen mid-flood");
        ConnReport::default()
    } else {
        eprintln!("loadgen: warming {} spec(s) on {addr}", args.warm);
        let report = match warmup(&addr, &specs, args.warm) {
            Ok(report) => report,
            Err(e) => return fail("warmup connection", &e.into()),
        };
        if report.received < args.warm {
            eprintln!(
                "loadgen: warmup incomplete ({}/{})",
                report.received, args.warm
            );
            return ExitCode::FAILURE;
        }
        report
    };

    // Pre-serialise every connection's frames so the flood measures the
    // server, not the client's JSON encoder.
    let per_conn: Vec<usize> = (0..args.connections)
        .map(|c| {
            args.requests / args.connections + usize::from(c < args.requests % args.connections)
        })
        .collect();
    let mut batches: Vec<(Vec<String>, Vec<bool>)> = Vec::with_capacity(args.connections);
    for c in 0..args.connections {
        let mut frames = Vec::with_capacity(per_conn[c]);
        let mut hits = Vec::with_capacity(per_conn[c]);
        for i in 0..per_conn[c] {
            let spec_idx = (c + i) % total_specs;
            match submit_frame(i as u64, &specs[spec_idx]) {
                Ok(frame) => frames.push(frame),
                Err(e) => return fail("pre-serialise frames", &e),
            }
            // Without the warmup no spec is pre-cached, so every
            // latency sample is honestly a miss/coalesced hit.
            hits.push(!args.skip_warmup && spec_idx < args.warm);
        }
        batches.push((frames, hits));
    }

    eprintln!(
        "loadgen: flooding {} request(s) over {} connection(s), window {}",
        args.requests, args.connections, args.window
    );
    let barrier = Arc::new(Barrier::new(args.connections));
    let inflight = Arc::new(AtomicI64::new(0));
    let peak = Arc::new(AtomicI64::new(0));
    let flood_start = Instant::now();
    let handles: Vec<_> = batches
        .into_iter()
        .map(|(frames, is_hit)| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let inflight = Arc::clone(&inflight);
            let peak = Arc::clone(&peak);
            let window = args.window;
            std::thread::spawn(move || {
                flood_connection(&addr, frames, is_hit, window, &barrier, &inflight, &peak)
            })
        })
        .collect();
    let mut reports: Vec<ConnReport> = Vec::with_capacity(handles.len());
    let mut conn_failures = 0usize;
    for handle in handles {
        match handle.join() {
            Ok(Ok(report)) => reports.push(report),
            Ok(Err(e)) => {
                eprintln!("loadgen: connection died: {}", DalutError::from(e));
                conn_failures += 1;
            }
            Err(_) => {
                eprintln!("loadgen: connection thread panicked");
                conn_failures += 1;
            }
        }
    }
    let flood_secs = flood_start.elapsed().as_secs_f64();

    // Merge: cross-connection byte-identity anchors on the warmup's
    // cold outcomes, so a cached response must match the cold path.
    let mut outcomes = warm_report.outcomes;
    let mut mismatches = warm_report.mismatches;
    let mut hit_ms = Vec::new();
    let mut miss_ms = Vec::new();
    let (mut received, mut errors) = (0, 0);
    let mut elapsed = Vec::new();
    for mut r in reports {
        mismatches += r.mismatches;
        for (fp, outcome) in r.outcomes.drain() {
            match outcomes.get(&fp) {
                Some(first) if *first != outcome => mismatches += 1,
                Some(_) => {}
                None => {
                    outcomes.insert(fp, outcome);
                }
            }
        }
        hit_ms.append(&mut r.hit_ms);
        miss_ms.append(&mut r.miss_ms);
        received += r.received;
        errors += r.errors;
        elapsed.push(r.elapsed_secs);
    }
    let dropped = args.requests - received;
    let spread = match elapsed.iter().copied().reduce(f64::min) {
        Some(min) if min > 0.0 => elapsed.iter().copied().fold(0.0, f64::max) / min,
        _ => 1.0,
    };

    let report = ServeBenchReport {
        connections: args.connections,
        window: args.window,
        requests: args.requests,
        warm_specs: args.warm,
        cold_specs: args.cold,
        peak_inflight: peak.load(Ordering::Relaxed),
        cache_hit: LatencyStats::of(hit_ms),
        miss: LatencyStats::of(miss_ms),
        warmup_cold: LatencyStats::of(warm_report.miss_ms),
        throughput_rps: if flood_secs > 0.0 {
            received as f64 / flood_secs
        } else {
            0.0
        },
        fairness_spread: spread,
        errors: errors + warm_report.errors,
        dropped,
        byte_identical: mismatches == 0,
    };

    println!(
        "loadgen: {} responses in {:.2}s ({:.0} rps), peak in-flight {}",
        received, flood_secs, report.throughput_rps, report.peak_inflight
    );
    println!(
        "  cache-hit p50 {:.3} ms  p99 {:.3} ms  ({} samples)",
        report.cache_hit.p50_ms, report.cache_hit.p99_ms, report.cache_hit.count
    );
    println!(
        "  miss      p50 {:.3} ms  p99 {:.3} ms  ({} samples)",
        report.miss.p50_ms, report.miss.p99_ms, report.miss.count
    );
    println!(
        "  fairness spread {:.2}x  errors {}  dropped {}  byte-identical {}",
        report.fairness_spread, report.errors, report.dropped, report.byte_identical
    );
    if let Err(e) = write_versioned_json(&args.out, &report) {
        return fail("write report", &e.into());
    }
    println!("wrote {}", args.out.display());

    if let Some((token, handle)) = server {
        token.cancel();
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return fail("server run", &e.into()),
            Err(_) => {
                eprintln!("loadgen: server thread panicked");
                return ExitCode::FAILURE;
            }
        }
    }

    if conn_failures > 0 || report.errors > 0 || report.dropped > 0 || !report.byte_identical {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
