//! CLI: read an architecture configuration (JSON from `configure`) on
//! stdin, map it onto the BTO-Normal-ND hardware, optionally harden it,
//! and emit structural Verilog on stdout with a characterisation report
//! on stderr. Uses the shared harness flag set (`--harden`, `--vcd PATH`,
//! `--arch NAME`).
//!
//! ```sh
//! cargo run -p dalut-bench --release --bin configure -- --only exp > exp.json
//! cargo run -p dalut-bench --release --bin synth < exp.json > exp.v
//! cargo run -p dalut-bench --release --bin synth -- --harden < exp.json > exp_hard.v
//! cargo run -p dalut-bench --release --bin synth -- --vcd trace.vcd < exp.json > exp.v
//! cargo run -p dalut-bench --release --bin synth -- --arch bto-normal < exp.json > exp.v
//! ```

use dalut_bench::HarnessArgs;
use dalut_core::ApproxLutConfig;
use dalut_hw::{build_approx_lut, characterize, ArchStyle};
use dalut_netlist::{vcd::VcdRecorder, CellLibrary};
use std::io::Read;

fn main() {
    let args = HarnessArgs::from_env();
    let style = match args.arch.as_deref() {
        None | Some("bto-normal-nd") => ArchStyle::BtoNormalNd,
        Some("bto-normal") => ArchStyle::BtoNormal,
        Some("dalta") => ArchStyle::Dalta,
        Some(other) => {
            eprintln!("unknown --arch '{other}' (dalta | bto-normal | bto-normal-nd)");
            std::process::exit(2);
        }
    };
    let mut json = String::new();
    std::io::stdin()
        .read_to_string(&mut json)
        .expect("read stdin");
    let config: ApproxLutConfig = serde_json::from_str(&json).unwrap_or_else(|e| {
        eprintln!("invalid configuration JSON: {e}");
        std::process::exit(2);
    });

    let inst = build_approx_lut(&config, style).unwrap_or_else(|e| {
        eprintln!("cannot map configuration: {e}");
        std::process::exit(2);
    });
    let inst = if args.harden { inst.hardened() } else { inst };

    // Functional sign-off against the software model on a sample, with
    // an optional VCD trace of the sweep (the VCS artefact).
    let mut sim = inst.simulator().expect("acyclic netlist");
    let mut recorder = args
        .vcd
        .as_ref()
        .map(|_| VcdRecorder::ports(inst.netlist()));
    let step = ((1u32 << config.inputs()) / 256).max(1);
    for (t, x) in (0..1u32 << config.inputs())
        .step_by(step as usize)
        .enumerate()
    {
        assert_eq!(
            inst.read(&mut sim, x),
            config.eval(x),
            "hardware/model mismatch at input {x:#x}"
        );
        if let Some(rec) = recorder.as_mut() {
            rec.sample(&sim, t as u64);
        }
    }
    if let (Some(path), Some(rec)) = (args.vcd, recorder) {
        std::fs::write(&path, rec.finish()).expect("write VCD");
        eprintln!("wrote waveform trace to {path}");
    }

    let lib = CellLibrary::nangate45();
    let reads: Vec<u32> = (0..256u32)
        .map(|i| (i.wrapping_mul(2654435761)) & ((1 << config.inputs()) - 1))
        .collect();
    let rep = characterize(&inst, &reads, &lib, 2.0).expect("characterise");
    eprintln!(
        "{}{}: {} cells, {} DFFs, {:.0} um^2, {:.2} ns critical path, {:.0} fJ/read",
        inst.netlist().name(),
        if args.harden { " (hardened)" } else { "" },
        inst.netlist().cell_count(),
        inst.netlist().total_dffs(),
        rep.area_um2,
        rep.critical_path_ns,
        rep.energy_per_read_fj,
    );
    println!("{}", inst.to_verilog());
}
