//! Tracked performance report: times the `OptForPart` kernel (fast vs the
//! retained reference implementation) at the paper's chart sizes and a
//! reduced `table2`-style search, then writes `BENCH_kernel.json` at the
//! repository root so successive PRs can track the performance trajectory.
//!
//! Run with `cargo run -p dalut-bench --release --bin perfreport`.
//! Accepts the usual harness flags (`--seed`, `--threads`, `--scale` for
//! the search section's function width). With `--metrics` the report
//! embeds a full metrics snapshot (per-phase iteration / kernel-call /
//! time breakdowns); `--trace PATH` streams every search event as JSONL.

use dalut_bench::report::write_json;
use dalut_bench::setup::{bssa_params, dalta_params};
use dalut_bench::{HarnessArgs, Observation};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::{InputDistribution, Partition};
use dalut_core::{ApproxLutBuilder, ArchPolicy, MetricsSnapshot, SearchOutcome};
use dalut_decomp::{bit_costs, opt_for_part, opt_for_part_ref, LsbFill, OptParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// One kernel timing row: fast vs reference at a given chart shape.
#[derive(Debug, Serialize)]
struct KernelRow {
    n: usize,
    b: usize,
    rows: usize,
    cols: usize,
    restarts: usize,
    iters_timed: usize,
    fast_ns_per_call: f64,
    ref_ns_per_call: f64,
    speedup: f64,
}

/// One search timing row (reduced `table2` workload).
#[derive(Debug, Serialize)]
struct SearchRow {
    benchmark: String,
    scale_bits: usize,
    algorithm: String,
    med: f64,
    seconds: f64,
    iterations: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    seed: u64,
    threads: usize,
    kernel: Vec<KernelRow>,
    search: Vec<SearchRow>,
    #[serde(skip_serializing_if = "Option::is_none")]
    metrics: Option<MetricsSnapshot>,
}

/// Times `f` over enough iterations for a stable per-call figure
/// (targets ~0.5 s of measurement after a warm-up call).
fn time_ns(mut f: impl FnMut()) -> (f64, usize) {
    f(); // warm-up
    let probe = Instant::now();
    f();
    let one = probe.elapsed().as_secs_f64().max(1e-9);
    let iters = (0.5 / one).clamp(3.0, 10_000.0) as usize;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() as f64 / iters as f64, iters)
}

fn kernel_section(args: &HarnessArgs) -> Vec<KernelRow> {
    // Paper parameters: Z = 30 restarts. The (16, 9) shape is the paper's
    // working point — bound-set size 9, i.e. the 512-column chart every
    // full-scale OptForPart call works on, with a 128-row free set.
    let opt = OptParams::default();
    [(10usize, 6usize), (16, 9)]
        .into_iter()
        .map(|(n, b)| {
            let target = Benchmark::Cos
                .table(Scale::Reduced(n))
                .expect("valid scale");
            let dist = InputDistribution::uniform(n).expect("valid width");
            let costs =
                bit_costs(&target, &target, n - 1, &dist, LsbFill::Accurate).expect("costs");
            let mut prng = StdRng::seed_from_u64(args.seed);
            let part = Partition::random(n, b, &mut prng);
            let (fast_ns, iters_timed) = time_ns(|| {
                let mut rng = StdRng::seed_from_u64(7);
                std::hint::black_box(opt_for_part(&costs, part, opt, &mut rng))
                    .expect("widths match");
            });
            let (ref_ns, _) = time_ns(|| {
                let mut rng = StdRng::seed_from_u64(7);
                std::hint::black_box(opt_for_part_ref(&costs, part, opt, &mut rng))
                    .expect("widths match");
            });
            let row = KernelRow {
                n,
                b,
                rows: part.rows(),
                cols: part.cols(),
                restarts: opt.restarts,
                iters_timed,
                fast_ns_per_call: fast_ns,
                ref_ns_per_call: ref_ns,
                speedup: ref_ns / fast_ns,
            };
            eprintln!(
                "kernel b={}: fast {:.0} ns/call, ref {:.0} ns/call, speedup {:.2}x",
                row.b, row.fast_ns_per_call, row.ref_ns_per_call, row.speedup
            );
            row
        })
        .collect()
}

fn search_section(args: &HarnessArgs, obs: &Observation) -> Vec<SearchRow> {
    // A reduced table2 workload: two representative benchmarks (one
    // continuous, one discrete), one run each, both algorithms.
    let scale_bits = args.scale_bits.min(8);
    let scale = Scale::Reduced(scale_bits);
    let mut out = Vec::new();
    let row = |bench: &Benchmark, algorithm: &str, o: &SearchOutcome| SearchRow {
        benchmark: bench.name().to_string(),
        scale_bits,
        algorithm: algorithm.to_string(),
        med: o.med,
        seconds: o.elapsed.as_secs_f64(),
        iterations: o.iterations,
    };
    for bench in [Benchmark::Cos, Benchmark::BrentKung] {
        let target = bench.table(scale).expect("benchmark builds");
        let dist = InputDistribution::uniform(target.inputs()).expect("valid width");
        let mut dp = dalta_params(args, target.inputs());
        dp.search.seed = args.seed;
        let dalta = obs.phase(&format!("search:{}:dalta", bench.name()), || {
            ApproxLutBuilder::new(&target)
                .distribution(dist.clone())
                .dalta(dp)
                .budget(args.budget())
                .observer(obs.observer())
                .run()
                .expect("dalta runs")
        });
        out.push(row(&bench, "dalta", &dalta));
        let mut bp = bssa_params(args, target.inputs());
        bp.search.seed = args.seed;
        let bssa = obs.phase(&format!("search:{}:bs-sa", bench.name()), || {
            ApproxLutBuilder::new(&target)
                .distribution(dist.clone())
                .bs_sa(bp)
                .policy(ArchPolicy::NormalOnly)
                .budget(args.budget())
                .observer(obs.observer())
                .run()
                .expect("bs-sa runs")
        });
        out.push(row(&bench, "bs-sa", &bssa));
        eprintln!(
            "search {}: DALTA {:.2}s (med {:.3}), BS-SA {:.2}s (med {:.3})",
            bench.name(),
            out[out.len() - 2].seconds,
            out[out.len() - 2].med,
            out[out.len() - 1].seconds,
            out[out.len() - 1].med,
        );
    }
    out
}

fn main() -> std::process::ExitCode {
    let args = HarnessArgs::from_env();
    let obs = match Observation::from_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("perfreport: cannot set up observation: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let report = Report {
        schema: "dalut-perfreport/v2".to_string(),
        seed: args.seed,
        threads: args.threads,
        kernel: obs.phase("kernel", || kernel_section(&args)),
        search: search_section(&args, &obs),
        metrics: obs.metrics_snapshot(),
    };
    let path = args.out_path(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernel.json"
    ));
    if let Err(e) = obs.finish() {
        eprintln!("perfreport: cannot flush trace: {e}");
        return std::process::ExitCode::FAILURE;
    }
    if let Err(e) = write_json(&path, &report) {
        eprintln!("perfreport: cannot write {}: {e}", path.display());
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("wrote {}", path.display());
    std::process::ExitCode::SUCCESS
}
