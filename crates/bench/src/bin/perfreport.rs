//! Tracked performance report: times the `OptForPart` kernel (fast vs the
//! retained reference implementation) at the paper's chart sizes and a
//! reduced `table2`-style search, then writes `BENCH_kernel.json` at the
//! repository root so successive PRs can track the performance trajectory.
//!
//! Run with `cargo run -p dalut-bench --release --bin perfreport`.
//! Accepts the usual harness flags (`--seed`, `--threads`, `--scale` for
//! the search section's function width). With `--metrics` the report
//! embeds a full metrics snapshot (per-phase iteration / kernel-call /
//! time breakdowns); `--trace PATH` streams every search event as JSONL.
//!
//! The four search rows are supervised work items: `--checkpoint-dir`
//! plus `--resume` skip searches that already finished, and
//! SIGINT/SIGTERM leaves a partial-marked report (exit nonzero).

use dalut_bench::report::{write_versioned_json, Versioned};
use dalut_bench::setup::{
    benchfns_resolver, bound_size, bssa_spec, dalta_spec, round_in_w, ENERGY_READS, PRUNE_KEEP,
};
use dalut_bench::signoff::{signoff_sweep, SignoffBank};
use dalut_bench::supervisor::{ItemError, Strategy, WorkItem};
use dalut_bench::{shutdown, HarnessArgs, Observation};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::{InputDistribution, Partition};
use dalut_core::checkpoint::{fingerprint, WorkKey};
use dalut_core::{
    ApproxLutBuilder, ApproxLutConfig, ArchPolicy, BsSaParams, CancelToken, DaltaParams, JobSpec,
    MetricsSnapshot, NoopObserver, Observer, RunBudget, SearchEvent, Termination,
};
use dalut_decomp::{bit_costs, opt_for_part, opt_for_part_ref, LsbFill, OptParams};
use dalut_est::doe::synthetic_config;
use dalut_est::{CalibrationOptions, CalibrationReport, EstimatorMode, ResourceEstimator};
use dalut_hw::{
    build_approx_lut, build_round_in, build_round_out, characterize, ArchInstance, ArchStyle,
    SimOptions, CHUNK_CYCLES,
};
use dalut_netlist::{critical_path_ns, detected_isa, CellKind, CellLibrary, SimBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One kernel timing row: fast vs reference at a given chart shape.
#[derive(Debug, Serialize)]
struct KernelRow {
    n: usize,
    b: usize,
    rows: usize,
    cols: usize,
    restarts: usize,
    iters_timed: usize,
    fast_ns_per_call: f64,
    ref_ns_per_call: f64,
    speedup: f64,
}

/// One search timing row (reduced `table2` workload).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SearchRow {
    benchmark: String,
    scale_bits: usize,
    algorithm: String,
    med: f64,
    seconds: f64,
    iterations: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    seed: u64,
    threads: usize,
    /// `true` when the search section was interrupted mid-sweep.
    partial: bool,
    kernel: Vec<KernelRow>,
    search: Vec<SearchRow>,
    #[serde(skip_serializing_if = "Option::is_none")]
    metrics: Option<MetricsSnapshot>,
}

impl Versioned for Report {
    const SCHEMA: &'static str = "dalut-perfreport/v2";
}

/// Times `f` over enough iterations for a stable per-call figure
/// (targets ~0.5 s of measurement after a warm-up call).
fn time_ns(mut f: impl FnMut()) -> (f64, usize) {
    f(); // warm-up
    let probe = Instant::now();
    f();
    let one = probe.elapsed().as_secs_f64().max(1e-9);
    let iters = (0.5 / one).clamp(3.0, 10_000.0) as usize;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() as f64 / iters as f64, iters)
}

fn kernel_section(args: &HarnessArgs) -> Vec<KernelRow> {
    // Paper parameters: Z = 30 restarts. The (16, 9) shape is the paper's
    // working point — bound-set size 9, i.e. the 512-column chart every
    // full-scale OptForPart call works on, with a 128-row free set.
    let opt = OptParams::default();
    [(10usize, 6usize), (16, 9)]
        .into_iter()
        .map(|(n, b)| {
            let target = Benchmark::Cos
                .table(Scale::Reduced(n))
                .expect("valid scale");
            let dist = InputDistribution::uniform(n).expect("valid width");
            let costs =
                bit_costs(&target, &target, n - 1, &dist, LsbFill::Accurate).expect("costs");
            let mut prng = StdRng::seed_from_u64(args.seed);
            let part = Partition::random(n, b, &mut prng);
            let (fast_ns, iters_timed) = time_ns(|| {
                let mut rng = StdRng::seed_from_u64(7);
                std::hint::black_box(opt_for_part(&costs, part, opt, &mut rng))
                    .expect("widths match");
            });
            let (ref_ns, _) = time_ns(|| {
                let mut rng = StdRng::seed_from_u64(7);
                std::hint::black_box(opt_for_part_ref(&costs, part, opt, &mut rng))
                    .expect("widths match");
            });
            let row = KernelRow {
                n,
                b,
                rows: part.rows(),
                cols: part.cols(),
                restarts: opt.restarts,
                iters_timed,
                fast_ns_per_call: fast_ns,
                ref_ns_per_call: ref_ns,
                speedup: ref_ns / fast_ns,
            };
            eprintln!(
                "kernel b={}: fast {:.0} ns/call, ref {:.0} ns/call, speedup {:.2}x",
                row.b, row.fast_ns_per_call, row.ref_ns_per_call, row.speedup
            );
            row
        })
        .collect()
}

/// One simulation-throughput row: one engine on one architecture over
/// the shared read trace, referenced against the scalar engine.
#[derive(Debug, Serialize)]
struct SimRow {
    arch: String,
    /// Engine name: `scalar`, `u64`, `w256`, `w512` or `chunked`
    /// (block-parallel stimulus on the auto-resolved wide engine).
    backend: String,
    cells: usize,
    dffs: usize,
    reads: usize,
    cycles_per_sec: f64,
    speedup_vs_scalar: f64,
    speedup_vs_u64: f64,
    /// `true` when outputs and the full `PowerReport` matched the
    /// scalar engine bit-for-bit.
    power_match: bool,
}

#[derive(Debug, Serialize)]
struct SimReport {
    seed: u64,
    benchmark: String,
    scale_bits: usize,
    /// Widest SIMD feature the CPU reports: `avx512f`, `avx2` or
    /// `portable`. Every wide backend runs everywhere (portable
    /// fallback); this records which code path the wide rows took.
    detected_isa: String,
    rows: Vec<SimRow>,
}

impl Versioned for SimReport {
    const SCHEMA: &'static str = "dalut-simreport/v2";
}

/// Times the power/accuracy sign-off simulation — scalar baseline, the
/// 64/256/512-bit compiled engines and the block-parallel chunked path
/// — on the five Fig. 5 architectures. Configuration quality is
/// irrelevant here — only netlist shape matters — so the searches use
/// the cheap `fast()` parameter sets.
fn sim_section(args: &HarnessArgs) -> SimReport {
    let scale_bits = args.scale_bits.min(8);
    let target = Benchmark::Cos
        .table(Scale::Reduced(scale_bits))
        .expect("benchmark builds");
    let n = target.inputs();
    let dist = InputDistribution::uniform(n).expect("valid width");
    let lib = CellLibrary::nangate45();
    let mut dp = DaltaParams::fast();
    dp.search.seed = args.seed;
    let dalta = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .dalta(dp)
        .run()
        .expect("search");
    let mut bp = BsSaParams::fast();
    bp.search.seed = args.seed;
    let search = |policy: ArchPolicy| {
        ApproxLutBuilder::new(&target)
            .distribution(dist.clone())
            .bs_sa(bp)
            .policy(policy)
            .run()
            .expect("search")
    };
    let bn = search(ArchPolicy::bto_normal_paper());
    let bnnd = search(ArchPolicy::bto_normal_nd_paper());
    let instances: Vec<(&str, ArchInstance)> = vec![
        ("RoundOut", build_round_out(&target, 1)),
        ("RoundIn", build_round_in(&target, round_in_w(n))),
        (
            "DALTA",
            build_approx_lut(&dalta.config, ArchStyle::Dalta).expect("build"),
        ),
        (
            "BTO-Normal",
            build_approx_lut(&bn.config, ArchStyle::BtoNormal).expect("build"),
        ),
        (
            "BTO-Normal-ND",
            build_approx_lut(&bnnd.config, ArchStyle::BtoNormalNd).expect("build"),
        ),
    ];
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x51B);
    let reads: Vec<u32> = (0..ENERGY_READS)
        .map(|_| rng.random_range(0..(1u32 << n)))
        .collect();
    // Engine matrix: the scalar baseline, every wide backend (all run
    // on any CPU — unsupported ISAs fall back to the portable path) and
    // the block-parallel chunked path. The chunk size is shrunk so the
    // 1024-read trace actually splits into several chunks.
    let wide_opts = |backend| SimOptions {
        backend,
        threads: 1,
        chunk_cycles: CHUNK_CYCLES,
    };
    let chunked_opts = SimOptions {
        backend: SimBackend::Auto,
        threads: 2,
        chunk_cycles: 128,
    };
    let engines: Vec<(String, SimOptions)> = SimBackend::all_wide()
        .into_iter()
        .map(|b| (b.to_string(), wide_opts(b)))
        .chain(std::iter::once(("chunked".to_string(), chunked_opts)))
        .collect();
    let mut rows = Vec::new();
    for (name, inst) in &instances {
        let clock = critical_path_ns(inst.netlist(), &lib).expect("acyclic") * 1.05;
        let cells = inst.netlist().cells().len();
        let dffs = inst
            .netlist()
            .cells()
            .iter()
            .filter(|c| c.kind == CellKind::Dff)
            .count();
        let (scalar_outs, scalar_power) = inst.measure_scalar(&reads, &lib, clock).expect("sim");
        let (scalar_ns, _) = time_ns(|| {
            std::hint::black_box(inst.measure_scalar(&reads, &lib, clock)).expect("sim");
        });
        let cps = |ns: f64| reads.len() as f64 * 1e9 / ns;
        rows.push(SimRow {
            arch: (*name).to_string(),
            backend: "scalar".to_string(),
            cells,
            dffs,
            reads: reads.len(),
            cycles_per_sec: cps(scalar_ns),
            speedup_vs_scalar: 1.0,
            speedup_vs_u64: f64::NAN,
            power_match: true,
        });
        let mut u64_ns = f64::NAN;
        for (engine, opts) in &engines {
            let (outs, power) = inst
                .measure_with(&reads, &lib, clock, opts, &NoopObserver)
                .expect("sim");
            let power_match = outs == scalar_outs && power == scalar_power;
            let (ns, _) = time_ns(|| {
                std::hint::black_box(inst.measure_with(&reads, &lib, clock, opts, &NoopObserver))
                    .expect("sim");
            });
            if engine == "u64" {
                u64_ns = ns;
            }
            let row = SimRow {
                arch: (*name).to_string(),
                backend: engine.clone(),
                cells,
                dffs,
                reads: reads.len(),
                cycles_per_sec: cps(ns),
                speedup_vs_scalar: scalar_ns / ns,
                speedup_vs_u64: u64_ns / ns,
                power_match,
            };
            eprintln!(
                "sim {name} [{engine}]: {:.2e} cyc/s, {:.2}x vs scalar, {:.2}x vs u64, match={}",
                row.cycles_per_sec, row.speedup_vs_scalar, row.speedup_vs_u64, row.power_match
            );
            rows.push(row);
        }
    }
    SimReport {
        seed: args.seed,
        benchmark: Benchmark::Cos.name().to_string(),
        scale_bits,
        detected_isa: detected_isa().to_string(),
        rows,
    }
}

/// Estimate vs exact-sign-off throughput at one geometry.
#[derive(Debug, Serialize)]
struct ThroughputRow {
    n: usize,
    b: usize,
    /// Reads per exact sign-off simulation.
    signoff_reads: usize,
    estimates_per_sec: f64,
    exact_signoffs_per_sec: f64,
    speedup: f64,
}

/// Wall-clock and best-point-energy comparison of the exact sweep flow
/// against the estimator-pruned flow over the same candidates.
#[derive(Debug, Serialize)]
struct SweepComparison {
    candidates: usize,
    keep: usize,
    /// One-off model fit (amortised: coefficients persist next to
    /// checkpoints), kept outside the timed flows.
    calibration_secs: f64,
    exact_secs: f64,
    pruned_secs: f64,
    speedup: f64,
    best_energy_exact_fj: f64,
    best_energy_pruned_fj: f64,
    /// `(pruned_best - exact_best) / exact_best`; >= 0, and ~0 when the
    /// true optimum survives pruning (CI gates this at 1 %).
    best_energy_rel_delta: f64,
}

/// The estimator subsystem's tracked numbers (`BENCH_estimator.json`).
#[derive(Debug, Serialize)]
struct EstimatorReport {
    seed: u64,
    /// Throughput at the paper's (n=16, b=9) working point.
    paper_point: ThroughputRow,
    /// Per-family calibration fit/validation error (reduced geometry).
    calibration: Vec<CalibrationReport>,
    /// Off-vs-prune mini-sweep over synthetic candidates.
    sweep: SweepComparison,
}

impl Versioned for EstimatorReport {
    const SCHEMA: &'static str = "dalut-estreport/v1";
}

/// Times the closed-form estimator against exact sign-off, fits the
/// per-family models, and runs the off-vs-prune mini-sweep whose energy
/// delta CI gates.
fn estimator_section(args: &HarnessArgs, observer: &dyn Observer) -> EstimatorReport {
    let lib = CellLibrary::nangate45();

    // --- Throughput at the paper's (16, 9) working point. ---
    let (pn, pb) = (16usize, 9usize);
    let paper_cfg = synthetic_config(pn, pn, pb, &["bto", "normal", "nd"], args.seed);
    let paper_dist = InputDistribution::uniform(pn).expect("valid width");
    let paper_est = ResourceEstimator::new(ArchStyle::BtoNormalNd, paper_dist);
    let (est_ns, _) = time_ns(|| {
        std::hint::black_box(paper_est.estimate(&paper_cfg)).expect("estimates");
    });
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xE57);
    let paper_reads: Vec<u32> = (0..256)
        .map(|_| rng.random_range(0..(1u32 << pn)))
        .collect();
    let paper_clock = paper_est
        .estimate(&paper_cfg)
        .expect("estimates")
        .critical_path_ns
        * 1.05;
    let (exact_ns, _) = time_ns(|| {
        let inst = build_approx_lut(&paper_cfg, ArchStyle::BtoNormalNd).expect("builds");
        std::hint::black_box(characterize(&inst, &paper_reads, &lib, paper_clock)).expect("sim");
    });
    let paper_point = ThroughputRow {
        n: pn,
        b: pb,
        signoff_reads: paper_reads.len(),
        estimates_per_sec: 1e9 / est_ns,
        exact_signoffs_per_sec: 1e9 / exact_ns,
        speedup: exact_ns / est_ns,
    };
    eprintln!(
        "estimator (16,9): {:.2e} estimates/s vs {:.2e} exact sign-offs/s ({:.0}x)",
        paper_point.estimates_per_sec, paper_point.exact_signoffs_per_sec, paper_point.speedup
    );

    // --- Calibration and the off-vs-prune mini-sweep (reduced n). ---
    let (n, b) = (10usize, bound_size(10));
    let dist = InputDistribution::uniform(n).expect("valid width");
    let t_cal = Instant::now();
    let bank = SignoffBank::prepare(
        &[
            ArchStyle::Dalta,
            ArchStyle::BtoNormal,
            ArchStyle::BtoNormalNd,
        ],
        &dist,
        &lib,
        &CalibrationOptions::for_width(n, b),
        None,
    )
    .expect("estimator calibration");
    let calibration_secs = t_cal.elapsed().as_secs_f64();

    let candidates: Vec<ApproxLutConfig> = (0..24)
        .map(|i| synthetic_config(n, 4, b, &["bto", "normal", "nd"], args.seed + i))
        .collect();
    let refs: Vec<&ApproxLutConfig> = candidates.iter().collect();
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xE58);
    let sweep_reads: Vec<u32> = (0..256).map(|_| rng.random_range(0..(1u32 << n))).collect();
    // Common clock from the analytic delays (exact by construction), so
    // both flows quote energy at identical conditions.
    let sweep_est = bank.estimator(ArchStyle::BtoNormalNd);
    let sweep_clock = refs
        .iter()
        .map(|c| sweep_est.estimate(c).expect("estimates").critical_path_ns)
        .fold(0.0f64, f64::max)
        * 1.05;

    // Exact flow: build + characterise every candidate.
    let t_exact = Instant::now();
    let exact_energies: Vec<f64> = refs
        .iter()
        .map(|c| {
            let inst = build_approx_lut(c, ArchStyle::BtoNormalNd).expect("builds");
            characterize(&inst, &sweep_reads, &lib, sweep_clock)
                .expect("sim")
                .energy_per_read_fj
        })
        .collect();
    let exact_secs = t_exact.elapsed().as_secs_f64();

    // Pruned flow: estimate everything, exact sign-off for survivors
    // only (the bank's netlist cache is still cold here, so the flow
    // pays its own builds).
    let t_prune = Instant::now();
    let points = signoff_sweep(
        &bank,
        ArchStyle::BtoNormalNd,
        &refs,
        EstimatorMode::Prune,
        PRUNE_KEEP,
        sweep_clock,
        &sweep_reads,
        observer,
    );
    let pruned_secs = t_prune.elapsed().as_secs_f64();
    let best_exact = exact_energies.iter().copied().fold(f64::INFINITY, f64::min);
    let best_pruned = points
        .iter()
        .filter(|p| p.source == "exact")
        .map(|p| p.energy_per_read_fj)
        .fold(f64::INFINITY, f64::min);
    let sweep = SweepComparison {
        candidates: refs.len(),
        keep: PRUNE_KEEP,
        calibration_secs,
        exact_secs,
        pruned_secs,
        speedup: exact_secs / pruned_secs,
        best_energy_exact_fj: best_exact,
        best_energy_pruned_fj: best_pruned,
        best_energy_rel_delta: (best_pruned - best_exact) / best_exact,
    };
    eprintln!(
        "estimator sweep: exact {:.2}s vs pruned {:.2}s ({:.1}x), best energy delta {:+.2}%",
        sweep.exact_secs,
        sweep.pruned_secs,
        sweep.speedup,
        sweep.best_energy_rel_delta * 100.0
    );
    EstimatorReport {
        seed: args.seed,
        paper_point,
        calibration: bank.reports.clone(),
        sweep,
    }
}

/// One prepared search workload: its labels plus the canonical
/// [`JobSpec`] — the same description a `dalut-serve` client submits,
/// so the timing rows measure exactly what the server would run.
struct SearchWorkload {
    bench: Benchmark,
    algorithm: &'static str,
    spec: JobSpec,
}

fn search_once(
    workload: &SearchWorkload,
    scale_bits: usize,
    budget: &RunBudget,
    observer: &dyn Observer,
) -> Result<SearchRow, ItemError> {
    let spec = workload
        .spec
        .canonicalize(&benchfns_resolver())
        .map_err(|e| ItemError::Failed(e.to_string()))?;
    let out = ApproxLutBuilder::from_spec(&spec)
        .map_err(|e| ItemError::Failed(e.to_string()))?
        .budget(budget.clone())
        .observer(observer)
        .run()
        .map_err(|e| ItemError::Failed(e.to_string()))?;
    if out.termination == Termination::Cancelled {
        return Err(ItemError::Cancelled);
    }
    eprintln!(
        "search {} {}: {:.2}s (med {:.3})",
        workload.bench.name(),
        workload.algorithm,
        out.elapsed.as_secs_f64(),
        out.med,
    );
    Ok(SearchRow {
        benchmark: workload.bench.name().to_string(),
        scale_bits,
        algorithm: workload.algorithm.to_string(),
        med: out.med,
        seconds: out.elapsed.as_secs_f64(),
        iterations: out.iterations,
    })
}

fn main() -> std::process::ExitCode {
    let args = HarnessArgs::from_env();
    let obs = match Observation::from_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("perfreport: cannot set up observation: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let token = CancelToken::new();
    shutdown::install(&token);
    let kernel = obs.phase("kernel", || kernel_section(&args));
    let sim = obs.phase("sim", || sim_section(&args));
    let est_report = obs.phase("estimator", || estimator_section(&args, obs.observer()));

    // A reduced table2 workload: two representative benchmarks (one
    // continuous, one discrete), one run each, both algorithms — exactly
    // four searches, each one a supervised item.
    let scale_bits = args.scale_bits.min(8);
    let scale = Scale::Reduced(scale_bits);
    let scale_label = format!("reduced-{scale_bits}");
    let budget = args.budget().with_cancel(&token);
    let workloads: Vec<SearchWorkload> = [Benchmark::Cos, Benchmark::BrentKung]
        .into_iter()
        .flat_map(|bench| {
            [
                ("dalta", dalta_spec(&args, bench, scale, args.seed)),
                (
                    "bs-sa",
                    bssa_spec(&args, bench, scale, ArchPolicy::NormalOnly, args.seed),
                ),
            ]
            .into_iter()
            .map(move |(algorithm, spec)| SearchWorkload {
                bench,
                algorithm,
                spec,
            })
        })
        .collect();
    let items: Vec<WorkItem<'_, SearchRow>> = workloads
        .iter()
        .map(|workload| {
            let budget = &budget;
            WorkItem::new(
                // The spec carries every result-shaping knob (params,
                // budget, policy), so it is the checkpoint key.
                WorkKey::new(
                    workload.bench.name(),
                    workload.algorithm,
                    args.seed,
                    &scale_label,
                    &workload.spec,
                ),
                vec![Strategy::new(
                    workload.algorithm,
                    move |o: &dyn Observer| search_once(workload, scale_bits, budget, o),
                )],
            )
        })
        .collect();
    let sweep_fp = fingerprint(&format!(
        "perfreport/{scale_label}/seed{}/budget{:?}",
        args.seed, args.budget_secs
    ));
    let supervisor = match args.supervisor(sweep_fp, &token) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perfreport: cannot open checkpoint dir: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let outcome = supervisor.run(items, obs.observer(), |_| {});
    if let Some(signal) = shutdown::take_requested_signal() {
        obs.emit(&SearchEvent::ShutdownRequested {
            signal: signal.to_string(),
        });
    }
    if outcome.resumed > 0 {
        eprintln!(
            "perfreport: resumed {} searches from checkpoint",
            outcome.resumed
        );
    }

    let report = Report {
        seed: args.seed,
        threads: args.threads,
        partial: !outcome.is_complete(),
        kernel,
        search: outcome
            .records
            .iter()
            .filter_map(|r| r.result.clone())
            .collect(),
        metrics: obs.metrics_snapshot(),
    };
    let path = args.out_path(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernel.json"
    ));
    if let Err(e) = obs.finish() {
        eprintln!("perfreport: cannot flush trace: {e}");
        return std::process::ExitCode::FAILURE;
    }
    if let Err(e) = write_versioned_json(&path, &report) {
        eprintln!("perfreport: cannot write {}: {e}", path.display());
        return std::process::ExitCode::FAILURE;
    }
    let sim_path = path.with_file_name("BENCH_sim.json");
    if let Err(e) = write_versioned_json(&sim_path, &sim) {
        eprintln!("perfreport: cannot write {}: {e}", sim_path.display());
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("wrote {}", sim_path.display());
    let est_path = path.with_file_name("BENCH_estimator.json");
    if let Err(e) = write_versioned_json(&est_path, &est_report) {
        eprintln!("perfreport: cannot write {}: {e}", est_path.display());
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("wrote {}", est_path.display());
    eprintln!(
        "wrote {}{}",
        path.display(),
        if report.partial { " (partial)" } else { "" }
    );
    if report.partial {
        eprintln!("perfreport: interrupted — resume with --checkpoint-dir ... --resume");
        return std::process::ExitCode::from(130);
    }
    std::process::ExitCode::SUCCESS
}
