//! Regenerates **Fig. 6**: the accuracy–energy trade-off of the cosine
//! function on BTO-Normal-ND — one point per (#BTO, #Normal, #ND)
//! per-bit mode allocation along the upgrade frontier, with the DALTA
//! reference point.
//!
//! The paper's headline: at least six consecutive configurations
//! dominate DALTA in both error and energy.
//!
//! Each configuration search run (DALTA and BS-SA repeats) is one
//! supervised work item whose `SearchOutcome` is checkpointed, so
//! `--checkpoint-dir`/`--resume` skip finished searches; SIGINT/SIGTERM
//! leave a partial-marked `fig6_results.json`.

use dalut_bench::report::{f3, write_json};
use dalut_bench::setup::{bound_size, bssa_params, dalta_params, ENERGY_READS, PRUNE_KEEP};
use dalut_bench::signoff::{signoff_sweep, EstimatorSummary, SignoffBank};
use dalut_bench::supervisor::{ItemError, Strategy, WorkItem};
use dalut_bench::{shutdown, HarnessArgs, Observation, Table};
use dalut_benchfns::Benchmark;
use dalut_boolfn::InputDistribution;
use dalut_core::checkpoint::{fingerprint, WorkKey};
use dalut_core::{
    mode_sweep, ApproxLutBuilder, ApproxLutConfig, ArchPolicy, CancelToken, Observer, SearchEvent,
    SearchOutcome, Termination,
};
use dalut_est::{CalibrationOptions, EstimatorMode};
use dalut_hw::{build_approx_lut, characterize_observed, ArchStyle};
use dalut_netlist::{critical_path_ns, CellLibrary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::process::ExitCode;

#[derive(Debug, Serialize)]
struct SweepPoint {
    bto: usize,
    normal: usize,
    nd: usize,
    med: f64,
    energy_per_read_fj: f64,
    dominates_dalta: bool,
    /// `"exact"` or `"estimated"` when the estimator was active; absent
    /// under `--estimator off` (bit-identical legacy schema).
    #[serde(skip_serializing_if = "Option::is_none")]
    energy_source: Option<&'static str>,
}

#[derive(Debug, Serialize)]
struct Fig6Results {
    schema: String,
    /// `true` when the run was interrupted before the sweep finished.
    partial: bool,
    dalta_med: f64,
    dalta_energy_fj: f64,
    points: Vec<SweepPoint>,
    /// Present when `--estimator prune|trust` was active.
    #[serde(skip_serializing_if = "Option::is_none")]
    estimator: Option<EstimatorSummary>,
}

fn main() -> ExitCode {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).expect("observation set up");
    let scale = args.scale();
    let lib = CellLibrary::nangate45();
    let bench = Benchmark::Cos;
    let token = CancelToken::new();
    shutdown::install(&token);
    eprintln!("fig6: {} at scale {scale:?}", bench.name());

    let target = bench.table(scale).expect("benchmark builds");
    let n = target.inputs();
    let dist = InputDistribution::uniform(n).expect("valid width");
    let out_path = args.out_path("fig6_results.json");
    let runs = args.effective_runs();
    let scale_label = format!("{scale:?}");
    let budget = args.budget().with_cancel(&token);

    // One supervised item per search run: the paper configures DALTA
    // from its best repeat and (at reduced scale) BS-SA likewise, so the
    // expensive part of Fig. 6 is `2 × runs` independent searches whose
    // outcomes checkpoint cleanly.
    let mut items: Vec<WorkItem<'_, SearchOutcome>> = Vec::new();
    for run in 0..runs {
        let seed = args.seed + 1000 * run as u64;
        let mut dp = dalta_params(&args, n);
        dp.search.seed = seed;
        let mut bp = bssa_params(&args, n);
        bp.search.seed = seed;
        let (target, dist, budget) = (&target, &dist, &budget);
        let search_once = move |o: &dyn Observer,
                                build: &dyn Fn(ApproxLutBuilder<'_>) -> ApproxLutBuilder<'_>|
              -> Result<SearchOutcome, ItemError> {
            let out = build(ApproxLutBuilder::new(target).distribution(dist.clone()))
                .budget(budget.clone())
                .observer(o)
                .run()
                .map_err(|e| ItemError::Failed(e.to_string()))?;
            if out.termination == Termination::Cancelled {
                return Err(ItemError::Cancelled);
            }
            Ok(out)
        };
        items.push(WorkItem::new(
            WorkKey::new(bench.name(), "dalta", seed, &scale_label, &dp),
            vec![Strategy::new("dalta", move |o: &dyn Observer| {
                search_once(o, &|bld| bld.dalta(dp))
            })],
        ));
        items.push(WorkItem::new(
            WorkKey::new(bench.name(), "bs-sa-nd", seed, &scale_label, &bp),
            vec![Strategy::new("bs-sa-nd", move |o: &dyn Observer| {
                search_once(o, &|bld| {
                    bld.bs_sa(bp).policy(ArchPolicy::bto_normal_nd_paper())
                })
            })],
        ));
    }
    let total = items.len();
    let sweep_fp = fingerprint(&format!(
        "fig6/{scale_label}/seed{}/runs{runs}/budget{:?}",
        args.seed, args.budget_secs
    ));
    let supervisor = args
        .supervisor(sweep_fp, &token)
        .expect("checkpoint dir usable");

    let write_partial = |dalta_med: f64| {
        let results = Fig6Results {
            schema: "dalut-fig6/v2".to_string(),
            partial: true,
            dalta_med,
            dalta_energy_fj: f64::NAN,
            points: Vec::new(),
            estimator: None,
        };
        if let Err(e) = write_json(&out_path, &results) {
            eprintln!("warning: partial results write failed: {e}");
        }
    };
    // The search phase checkpoints per item; the (cheap) hardware phase
    // below reruns on resume. Partial flushes keep the results file
    // parseable from the first flush onwards.
    let outcome = supervisor.run(items, obs.observer(), |snapshot| {
        let best_dalta = snapshot
            .completed
            .iter()
            .filter(|r| r.key.arch == "dalta")
            .filter_map(|r| r.result.as_ref())
            .map(|o| o.med)
            .fold(f64::NAN, f64::min);
        write_partial(best_dalta);
    });
    if let Some(signal) = shutdown::take_requested_signal() {
        obs.emit(&SearchEvent::ShutdownRequested {
            signal: signal.to_string(),
        });
    }
    if outcome.resumed > 0 {
        eprintln!(
            "fig6: resumed {} of {total} searches from checkpoint",
            outcome.resumed
        );
    }
    let best = |arch: &str| -> Option<SearchOutcome> {
        outcome
            .records
            .iter()
            .filter(|r| r.key.arch == arch)
            .filter_map(|r| r.result.clone())
            .min_by(|a, b| a.med.total_cmp(&b.med))
    };
    if !outcome.is_complete() {
        let dalta_med = best("dalta").map_or(f64::NAN, |o| o.med);
        obs.finish().expect("flush trace");
        write_partial(dalta_med);
        eprintln!("wrote {} (partial)", out_path.display());
        eprintln!("fig6: interrupted — resume with --checkpoint-dir ... --resume");
        return ExitCode::from(130);
    }
    let dalta = best("dalta").expect("at least one dalta run");
    let outcome_bssa = best("bs-sa-nd").expect("at least one bs-sa run");
    let options = outcome_bssa.mode_options.expect("policy records options");
    let points = mode_sweep(&target, &dist, &options).expect("sweep");

    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF166);
    let reads: Vec<u32> = (0..ENERGY_READS)
        .map(|_| rng.random_range(0..(1u32 << n)))
        .collect();

    // Hardware sign-off. `--estimator off` runs the legacy exact flow
    // unchanged (bit-identical output); `prune`/`trust` score every
    // sweep point with the calibrated closed-form model and pay netlist
    // build + simulation only for the survivors (or nobody, for trust).
    let (dalta_energy, sweep): (f64, Vec<(f64, Option<&'static str>)>);
    let mut est_summary = None;
    if args.estimator == EstimatorMode::Off {
        // Common clock: slowest of all builds.
        let mut instances = vec![(
            build_approx_lut(&dalta.config, ArchStyle::Dalta).expect("normal-only"),
            dalta.med,
            (0usize, dalta.config.outputs(), 0usize),
        )];
        for p in &points {
            instances.push((
                build_approx_lut(&p.config, ArchStyle::BtoNormalNd).expect("any config"),
                p.med,
                p.mode_counts,
            ));
        }
        let clock = instances
            .iter()
            .map(|(i, _, _)| critical_path_ns(i.netlist(), &lib).expect("acyclic"))
            .fold(0.0f64, f64::max)
            * 1.05;
        let mut energies = Vec::new();
        for (inst, _, _) in &instances {
            let rep = characterize_observed(inst, &reads, &lib, clock, obs.observer())
                .expect("characterise");
            energies.push(rep.energy_per_read_fj);
        }
        dalta_energy = energies[0];
        sweep = energies[1..].iter().map(|&e| (e, None)).collect();
    } else {
        let styles: &[ArchStyle] = if args.estimator == EstimatorMode::Trust {
            &[ArchStyle::Dalta, ArchStyle::BtoNormalNd]
        } else {
            &[ArchStyle::BtoNormalNd]
        };
        let bank = SignoffBank::prepare(
            styles,
            &dist,
            &lib,
            &CalibrationOptions::for_width(n, bound_size(n)),
            args.checkpoint_dir.as_deref(),
        )
        .expect("estimator calibration");
        // Common clock from analytic delays (exact by construction); the
        // DALTA reference is built exactly except under trust.
        let candidates: Vec<&ApproxLutConfig> = points.iter().map(|p| &p.config).collect();
        let point_est = bank.estimator(ArchStyle::BtoNormalNd);
        let max_point_delay = candidates
            .iter()
            .map(|c| {
                point_est
                    .estimate(c)
                    .expect("sweep configs estimate")
                    .critical_path_ns
            })
            .fold(0.0f64, f64::max);
        let dalta_delay = if args.estimator == EstimatorMode::Trust {
            bank.estimator(ArchStyle::Dalta)
                .estimate(&dalta.config)
                .expect("dalta estimates")
                .critical_path_ns
        } else {
            let inst = bank
                .cache
                .get_or_build(&dalta.config, ArchStyle::Dalta)
                .expect("normal-only");
            critical_path_ns(inst.netlist(), &lib).expect("acyclic")
        };
        let clock = dalta_delay.max(max_point_delay) * 1.05;
        dalta_energy = if args.estimator == EstimatorMode::Trust {
            bank.estimator(ArchStyle::Dalta)
                .with_clock(clock)
                .estimate(&dalta.config)
                .expect("dalta estimates")
                .energy_per_read_fj
        } else {
            let inst = bank
                .cache
                .get_or_build(&dalta.config, ArchStyle::Dalta)
                .expect("normal-only");
            characterize_observed(&inst, &reads, &lib, clock, obs.observer())
                .expect("characterise")
                .energy_per_read_fj
        };
        let signoffs = signoff_sweep(
            &bank,
            ArchStyle::BtoNormalNd,
            &candidates,
            args.estimator,
            PRUNE_KEEP,
            clock,
            &reads,
            obs.observer(),
        );
        let exact = signoffs.iter().filter(|p| p.source == "exact").count();
        est_summary = Some(bank.summary(args.estimator, candidates.len(), exact));
        sweep = signoffs
            .into_iter()
            .map(|p| (p.energy_per_read_fj, Some(p.source)))
            .collect();
    }

    let mut table = Table::new(&["(#BTO,#Normal,#ND)", "MED", "Energy fJ/read", "<= DALTA?"]);
    let mut results = Fig6Results {
        schema: "dalut-fig6/v2".to_string(),
        partial: false,
        dalta_med: dalta.med,
        dalta_energy_fj: dalta_energy,
        points: Vec::new(),
        estimator: est_summary,
    };
    table.row(vec![
        "DALTA (reference)".to_string(),
        f3(dalta.med),
        f3(dalta_energy),
        "-".to_string(),
    ]);
    let mut dominating = 0usize;
    for (p, &(e, source)) in points.iter().zip(&sweep) {
        let dom = p.med <= dalta.med && e <= dalta_energy;
        dominating += usize::from(dom);
        let (a, b, c) = p.mode_counts;
        table.row(vec![
            format!("({a},{b},{c})"),
            f3(p.med),
            f3(e),
            if dom { "yes" } else { "no" }.to_string(),
        ]);
        results.points.push(SweepPoint {
            bto: a,
            normal: b,
            nd: c,
            med: p.med,
            energy_per_read_fj: e,
            dominates_dalta: dom,
            energy_source: source,
        });
    }
    println!("\nFig. 6. Accuracy-energy trade-off of cos(x) on BTO-Normal-ND.\n");
    println!("{}", table.render());
    println!("{dominating} configurations dominate DALTA in both error and energy.");
    if let Some(s) = &results.estimator {
        println!(
            "Estimator ({}): {} candidates scored, {} exact sign-offs, {} netlist builds.",
            s.mode, s.candidates, s.exact_signoffs, s.cache_misses
        );
    }
    obs.finish().expect("flush trace");
    write_json(&out_path, &results).expect("write results");
    eprintln!("wrote {}", out_path.display());
    ExitCode::SUCCESS
}
