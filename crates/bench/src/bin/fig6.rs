//! Regenerates **Fig. 6**: the accuracy–energy trade-off of the cosine
//! function on BTO-Normal-ND — one point per (#BTO, #Normal, #ND)
//! per-bit mode allocation along the upgrade frontier, with the DALTA
//! reference point.
//!
//! The paper's headline: at least six consecutive configurations
//! dominate DALTA in both error and energy.

use dalut_bench::report::{f3, write_json};
use dalut_bench::setup::{bssa_params, dalta_params, ENERGY_READS};
use dalut_bench::{HarnessArgs, Observation, Table};
use dalut_benchfns::Benchmark;
use dalut_boolfn::InputDistribution;
use dalut_core::{mode_sweep, ApproxLutBuilder, ArchPolicy};
use dalut_hw::{build_approx_lut, characterize, ArchStyle};
use dalut_netlist::{critical_path_ns, CellLibrary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SweepPoint {
    bto: usize,
    normal: usize,
    nd: usize,
    med: f64,
    energy_per_read_fj: f64,
    dominates_dalta: bool,
}

#[derive(Debug, Serialize)]
struct Fig6Results {
    dalta_med: f64,
    dalta_energy_fj: f64,
    points: Vec<SweepPoint>,
}

fn main() {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).expect("observation set up");
    let scale = args.scale();
    let lib = CellLibrary::nangate45();
    let bench = Benchmark::Cos;
    eprintln!("fig6: {} at scale {scale:?}", bench.name());

    let target = bench.table(scale).expect("benchmark builds");
    let n = target.inputs();
    let dist = InputDistribution::uniform(n).expect("valid width");

    // DALTA reference point: best of the repeat runs, as the paper
    // configures DALTA from its best Table-II result (§V-B).
    let mut dalta: Option<dalut_core::SearchOutcome> = None;
    for run in 0..args.effective_runs() {
        let mut dp = dalta_params(&args, n);
        dp.search.seed = args.seed + 1000 * run as u64;
        let out = ApproxLutBuilder::new(&target)
            .distribution(dist.clone())
            .dalta(dp)
            .budget(args.budget())
            .observer(obs.observer())
            .run()
            .expect("dalta runs");
        if dalta.as_ref().is_none_or(|b| out.med < b.med) {
            dalta = Some(out);
        }
    }
    let dalta = dalta.expect("at least one run");
    // BS-SA with all three modes available, recording per-bit options.
    // The paper runs BS-SA once thanks to its stability at P = 500; the
    // reduced-scale default compensates for its noisier small-budget
    // behaviour with the same best-of-runs treatment.
    let mut outcome: Option<dalut_core::SearchOutcome> = None;
    for run in 0..args.effective_runs() {
        let mut bp = bssa_params(&args, n);
        bp.search.seed = args.seed + 1000 * run as u64;
        let out = ApproxLutBuilder::new(&target)
            .distribution(dist.clone())
            .bs_sa(bp)
            .policy(ArchPolicy::bto_normal_nd_paper())
            .budget(args.budget())
            .observer(obs.observer())
            .run()
            .expect("bs-sa runs");
        if outcome.as_ref().is_none_or(|b| out.med < b.med) {
            outcome = Some(out);
        }
    }
    let outcome = outcome.expect("at least one run");
    let options = outcome.mode_options.expect("policy records options");
    let points = mode_sweep(&target, &dist, &options).expect("sweep");

    // Common clock: slowest of all builds.
    let mut instances = vec![(
        build_approx_lut(&dalta.config, ArchStyle::Dalta).expect("normal-only"),
        dalta.med,
        (0usize, dalta.config.outputs(), 0usize),
    )];
    for p in &points {
        instances.push((
            build_approx_lut(&p.config, ArchStyle::BtoNormalNd).expect("any config"),
            p.med,
            p.mode_counts,
        ));
    }
    let clock = instances
        .iter()
        .map(|(i, _, _)| critical_path_ns(i.netlist(), &lib).expect("acyclic"))
        .fold(0.0f64, f64::max)
        * 1.05;
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF166);
    let reads: Vec<u32> = (0..ENERGY_READS)
        .map(|_| rng.random_range(0..(1u32 << n)))
        .collect();

    let mut energies = Vec::new();
    for (inst, _, _) in &instances {
        let rep = characterize(inst, &reads, &lib, clock).expect("characterise");
        energies.push(rep.energy_per_read_fj);
    }
    let (dalta_energy, sweep_energies) = (energies[0], &energies[1..]);

    let mut table = Table::new(&["(#BTO,#Normal,#ND)", "MED", "Energy fJ/read", "<= DALTA?"]);
    let mut results = Fig6Results {
        dalta_med: dalta.med,
        dalta_energy_fj: dalta_energy,
        points: Vec::new(),
    };
    table.row(vec![
        "DALTA (reference)".to_string(),
        f3(dalta.med),
        f3(dalta_energy),
        "-".to_string(),
    ]);
    let mut dominating = 0usize;
    for (p, &e) in points.iter().zip(sweep_energies) {
        let dom = p.med <= dalta.med && e <= dalta_energy;
        dominating += usize::from(dom);
        let (a, b, c) = p.mode_counts;
        table.row(vec![
            format!("({a},{b},{c})"),
            f3(p.med),
            f3(e),
            if dom { "yes" } else { "no" }.to_string(),
        ]);
        results.points.push(SweepPoint {
            bto: a,
            normal: b,
            nd: c,
            med: p.med,
            energy_per_read_fj: e,
            dominates_dalta: dom,
        });
    }
    println!("\nFig. 6. Accuracy-energy trade-off of cos(x) on BTO-Normal-ND.\n");
    println!("{}", table.render());
    println!("{dominating} configurations dominate DALTA in both error and energy.");
    obs.finish().expect("flush trace");
    let path = args.out_path("fig6_results.json");
    write_json(&path, &results).expect("write results");
    eprintln!("wrote {}", path.display());
}
