//! `chaosbench` — drives mixed traffic at a `dalut-serve` instance
//! through the fault-injecting [`ChaosProxy`] and writes
//! `BENCH_chaos.json` (`dalut-chaosbench/v1`).
//!
//! Two phases. First a **fault-free baseline**: every spec is submitted
//! over a clean connection and its verified outcome bytes recorded per
//! fingerprint. In self-contained mode (no `--addr`) the baseline runs
//! against its own throwaway in-process server, so the chaos phase
//! recomputes every search from scratch — with `threads = 1` and a
//! fixed seed the BS-SA search is bit-deterministic, so an honest
//! server must reproduce the baseline bytes exactly. With `--addr` the
//! baseline runs directly against the external server (the chaos phase
//! then exercises its cache path). `--skip-warmup` skips the baseline
//! phase; byte-identity then anchors on the first completed chaos-phase
//! response per fingerprint.
//!
//! Then the **chaos phase**: a fresh server (or the external one) is
//! fronted by a [`ChaosProxy`] running the full fault menu — connection
//! drops, byte corruption, slow-loris stalls, partial writes, duplicate
//! delivery — under a fixed seed, and a fleet of retrying
//! [`DalutClient`]s pushes every spec through it repeatedly. The client
//! stack verifies each response end to end (CRC + fingerprint); this
//! harness additionally cross-checks completed outcome bytes against
//! the baseline.
//!
//! The run fails (non-zero exit) if the server dies, any completed
//! response differs from the baseline, or any request fails to
//! eventually complete. A top-up loop keeps submitting until every
//! fault type has fired at least once, so a CI run with a fixed seed
//! always exercises the whole menu.

use dalut_bench::report::{write_versioned_json, Versioned};
use dalut_client::{ClientConfig, ClientError, ClientResult, DalutClient, FaultClass};
use dalut_core::{
    Algorithm, ArchPolicy, BsSaParams, BudgetSpec, DalutError, DistributionSpec, EstimatorMode,
    FunctionSource, JobSpec,
};
use dalut_serve::{ChaosPlan, ChaosProxy, ChaosSnapshot, Server, ServerConfig};
use serde::Serialize;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Duration;

struct Args {
    addr: Option<String>,
    jobs: usize,
    clients: usize,
    repeat: usize,
    workers: usize,
    seed: u64,
    request_timeout_ms: u64,
    skip_warmup: bool,
    out: PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: None,
            jobs: 4,
            clients: 4,
            repeat: 3,
            workers: 4,
            seed: 42,
            request_timeout_ms: 30_000,
            skip_warmup: false,
            out: PathBuf::from("BENCH_chaos.json"),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: chaosbench [--addr HOST:PORT] [--jobs N] [--clients N] [--repeat N] \
         [--workers N] [--seed N] [--request-timeout-ms MS] [--skip-warmup] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(val("--addr")),
            "--jobs" => args.jobs = parse_num(&val("--jobs")),
            "--clients" => args.clients = parse_num(&val("--clients")),
            "--repeat" => args.repeat = parse_num(&val("--repeat")),
            "--workers" => args.workers = parse_num(&val("--workers")),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--request-timeout-ms" => {
                args.request_timeout_ms = parse_num(&val("--request-timeout-ms")) as u64;
            }
            "--skip-warmup" => args.skip_warmup = true,
            "--out" => args.out = PathBuf::from(val("--out")),
            _ => usage(),
        }
    }
    args
}

fn parse_num(s: &str) -> usize {
    match s.parse() {
        Ok(n) if n > 0 => n,
        _ => usage(),
    }
}

/// One distinct, cheap, bit-deterministic search job per seed: 6-bit
/// cos under fast BS-SA parameters with a single search thread.
fn make_spec(seed: u64) -> JobSpec {
    let mut params = BsSaParams::fast();
    params.search.seed = seed;
    params.search.threads = 1;
    JobSpec {
        function: FunctionSource::Benchmark {
            name: "cos".to_string(),
            scale_bits: 6,
        },
        distribution: DistributionSpec::Uniform,
        algorithm: Algorithm::BsSa(params),
        policy: ArchPolicy::NormalOnly,
        budget: BudgetSpec::unlimited(),
        estimator: EstimatorMode::Off,
    }
}

fn fail(context: &str, e: &dyn std::fmt::Display) -> ExitCode {
    eprintln!("chaosbench: {context}: {e}");
    ExitCode::FAILURE
}

/// A running in-process server with its drain handle.
struct InProcess {
    addr: String,
    token: dalut_core::CancelToken,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start_server(workers: usize) -> Result<InProcess, DalutError> {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_dir: None,
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr()?.to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());
    Ok(InProcess {
        addr,
        token,
        handle,
    })
}

impl InProcess {
    /// Drains the server; `true` when the run loop exited cleanly —
    /// i.e. the server survived everything thrown at it.
    fn stop(self) -> bool {
        self.token.cancel();
        matches!(self.handle.join(), Ok(Ok(())))
    }
}

/// A client with policy tuned for the chaos run.
fn chaos_client(addr: &str, seed: u64, request_timeout_ms: u64) -> DalutClient {
    let mut config = ClientConfig::new(addr);
    config.seed = seed;
    config.max_attempts = 12;
    config.backoff_base_ms = 20;
    config.backoff_cap_ms = 1_000;
    config.connect_timeout = Duration::from_secs(5);
    config.request_timeout = Duration::from_millis(request_timeout_ms);
    DalutClient::new(config)
}

/// Submits every spec once over a clean connection, returning the
/// fingerprint → outcome-bytes map that anchors byte-identity.
fn run_baseline(
    addr: &str,
    specs: &[JobSpec],
    request_timeout_ms: u64,
) -> Result<HashMap<String, String>, ClientError> {
    let mut client = chaos_client(addr, 0, request_timeout_ms);
    let mut baseline = HashMap::new();
    for spec in specs {
        let result = client.submit(spec)?;
        baseline.insert(result.fingerprint, result.outcome_json);
    }
    Ok(baseline)
}

/// What one chaos-phase worker thread saw.
#[derive(Default)]
struct ClientReport {
    completed: Vec<ClientResult>,
    failures: Vec<ClientError>,
}

#[derive(Serialize)]
struct ChaosBenchReport {
    seed: u64,
    jobs: usize,
    clients: usize,
    requests: usize,
    completed: usize,
    eventual_completion_rate: f64,
    wrong_answers: usize,
    byte_identical: bool,
    server_alive: bool,
    total_attempts: u64,
    total_retries: u64,
    /// Proxy-side injection counts, per fault type.
    injected: HashMap<String, u64>,
    /// Client-side recovery counts, per observed fault class.
    recovered: HashMap<String, u64>,
    proxy_connections: u64,
    proxy_chunks: u64,
    failures: Vec<String>,
}

impl Versioned for ChaosBenchReport {
    const SCHEMA: &'static str = "dalut-chaosbench/v1";
}

fn injected_map(snap: &ChaosSnapshot) -> HashMap<String, u64> {
    HashMap::from([
        ("drop".to_string(), snap.drops),
        ("corrupt".to_string(), snap.corruptions),
        ("stall".to_string(), snap.stalls),
        ("partial".to_string(), snap.partials),
        ("duplicate".to_string(), snap.duplicates),
    ])
}

fn main() -> ExitCode {
    let args = parse_args();
    let specs: Vec<JobSpec> = (0..args.jobs)
        .map(|i| make_spec(args.seed.wrapping_add(i as u64)))
        .collect();

    // Phase 1: fault-free baseline. Self-contained mode uses a
    // throwaway twin server so the chaos phase recomputes every search.
    // `--skip-warmup` drops the phase entirely; byte-identity then
    // anchors on the first completed chaos-phase response per
    // fingerprint (searches stay bit-deterministic, so any divergence
    // between retries/clients is still caught).
    let (mut baseline, upstream, chaos_server) = if args.skip_warmup {
        eprintln!("chaosbench: --skip-warmup: anchoring on first completed responses");
        match &args.addr {
            Some(addr) => (HashMap::new(), addr.clone(), None),
            None => {
                let chaos = match start_server(args.workers) {
                    Ok(chaos) => chaos,
                    Err(e) => return fail("bind chaos server", &e),
                };
                let addr = chaos.addr.clone();
                (HashMap::new(), addr, Some(chaos))
            }
        }
    } else {
        match &args.addr {
            Some(addr) => {
                eprintln!("chaosbench: baseline against external server {addr}");
                match run_baseline(addr, &specs, args.request_timeout_ms) {
                    Ok(baseline) => (baseline, addr.clone(), None),
                    Err(e) => return fail("baseline", &e),
                }
            }
            None => {
                let twin = match start_server(args.workers) {
                    Ok(twin) => twin,
                    Err(e) => return fail("bind baseline server", &e),
                };
                eprintln!("chaosbench: baseline against twin server {}", twin.addr);
                let baseline = match run_baseline(&twin.addr, &specs, args.request_timeout_ms) {
                    Ok(baseline) => baseline,
                    Err(e) => return fail("baseline", &e),
                };
                if !twin.stop() {
                    return fail("baseline server", &"did not drain cleanly");
                }
                let chaos = match start_server(args.workers) {
                    Ok(chaos) => chaos,
                    Err(e) => return fail("bind chaos server", &e),
                };
                let addr = chaos.addr.clone();
                (baseline, addr, Some(chaos))
            }
        }
    };

    // Phase 2: the full fault menu between the clients and the server.
    let plan = ChaosPlan::full(args.seed);
    let proxy = match ChaosProxy::start(&upstream, plan) {
        Ok(proxy) => proxy,
        Err(e) => return fail("start chaos proxy", &e),
    };
    let proxy_addr = proxy.addr().to_string();
    eprintln!(
        "chaosbench: proxy {proxy_addr} → {upstream}, {} client(s) × {} request(s)",
        args.clients,
        args.jobs * args.repeat
    );

    let planned = args.clients * args.jobs * args.repeat;
    let reports: Mutex<Vec<ClientReport>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for c in 0..args.clients {
            let specs = &specs;
            let reports = &reports;
            let proxy_addr = proxy_addr.as_str();
            scope.spawn(move || {
                let mut client = chaos_client(
                    proxy_addr,
                    args.seed ^ (c as u64 + 1),
                    args.request_timeout_ms,
                );
                let mut report = ClientReport::default();
                for r in 0..args.repeat {
                    for s in 0..specs.len() {
                        // Offset the spec order per client and round so
                        // the fleet mixes hits and coalesced misses.
                        let spec = &specs[(s + c + r) % specs.len()];
                        match client.submit(spec) {
                            Ok(result) => report.completed.push(result),
                            Err(e) => report.failures.push(e),
                        }
                    }
                }
                reports.lock().expect("reports lock").push(report);
            });
        }
    });
    let mut reports = reports.into_inner().expect("reports lock");

    // Top-up: keep pushing single requests until every fault type has
    // fired, so a fixed-seed CI run always covers the whole menu.
    let mut extra_requests = 0usize;
    {
        let mut top_up = chaos_client(&proxy_addr, args.seed ^ 0xDEAD, args.request_timeout_ms);
        let mut extra = ClientReport::default();
        while extra_requests < 200 {
            let snap = proxy.stats();
            let menu_complete = snap.drops > 0
                && snap.corruptions > 0
                && snap.stalls > 0
                && snap.partials > 0
                && snap.duplicates > 0;
            if menu_complete {
                break;
            }
            let spec = &specs[extra_requests % specs.len()];
            match top_up.submit(spec) {
                Ok(result) => extra.completed.push(result),
                Err(e) => extra.failures.push(e),
            }
            extra_requests += 1;
        }
        reports.push(extra);
    }
    let requests = planned + extra_requests;

    // Aggregate and cross-check against the baseline.
    let mut completed = 0usize;
    let mut wrong_answers = 0usize;
    let mut total_attempts = 0u64;
    let mut total_retries = 0u64;
    let mut recovered: HashMap<String, u64> = FaultClass::all()
        .iter()
        .map(|c| (c.as_str().to_string(), 0))
        .collect();
    let mut failures: Vec<String> = Vec::new();
    for report in &reports {
        for result in &report.completed {
            completed += 1;
            total_attempts += u64::from(result.attempts);
            total_retries += result.retries.len() as u64;
            for class in &result.retries {
                *recovered.entry(class.as_str().to_string()).or_insert(0) += 1;
            }
            match baseline.get(&result.fingerprint) {
                Some(expected) if *expected == result.outcome_json => {}
                Some(_) => wrong_answers += 1,
                // Under --skip-warmup the first completed response for a
                // fingerprint becomes the anchor.
                None if args.skip_warmup => {
                    baseline.insert(result.fingerprint.clone(), result.outcome_json.clone());
                }
                None => wrong_answers += 1, // fingerprint outside the baseline set
            }
        }
        for failure in &report.failures {
            total_attempts += u64::from(match failure {
                ClientError::RetriesExhausted { attempts, .. } => *attempts,
                _ => 1,
            });
            failures.push(failure.to_string());
        }
    }

    let snap = proxy.stop();
    let server_alive = match chaos_server {
        Some(server) => server.stop(),
        // External server: alive iff a clean connection still answers.
        None => run_baseline(&upstream, &specs[..1], args.request_timeout_ms).is_ok(),
    };

    let report = ChaosBenchReport {
        seed: args.seed,
        jobs: args.jobs,
        clients: args.clients,
        requests,
        completed,
        eventual_completion_rate: if requests > 0 {
            completed as f64 / requests as f64
        } else {
            1.0
        },
        wrong_answers,
        byte_identical: wrong_answers == 0,
        server_alive,
        total_attempts,
        total_retries,
        injected: injected_map(&snap),
        recovered,
        proxy_connections: snap.connections,
        proxy_chunks: snap.chunks,
        failures,
    };

    println!(
        "chaosbench: {}/{} completed ({:.1}%), {} wrong, {} retries over {} attempts",
        report.completed,
        report.requests,
        report.eventual_completion_rate * 100.0,
        report.wrong_answers,
        report.total_retries,
        report.total_attempts
    );
    println!(
        "  injected: drop {} corrupt {} stall {} partial {} duplicate {} \
         ({} connections, {} chunks)",
        snap.drops,
        snap.corruptions,
        snap.stalls,
        snap.partials,
        snap.duplicates,
        snap.connections,
        snap.chunks
    );
    println!(
        "  server alive: {}  byte-identical: {}",
        report.server_alive, report.byte_identical
    );
    if let Err(e) = write_versioned_json(&args.out, &report) {
        return fail("write report", &e);
    }
    println!("wrote {}", args.out.display());

    if !report.server_alive || report.wrong_answers > 0 || report.completed < report.requests {
        for failure in report.failures.iter().take(8) {
            eprintln!("chaosbench: failure: {failure}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
