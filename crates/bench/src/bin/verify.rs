//! Full functional sign-off (the paper's "functionality is verified by
//! Synopsys VCS" step): for every benchmark, search a configuration, map
//! it onto each architecture that supports it, and check the hardware
//! against the software model on **every** input. Also cross-checks the
//! Verilog export through the bundled interpreter on a sample.
//!
//! ```sh
//! cargo run -p dalut-bench --release --bin verify
//! ```

use dalut_bench::report::write_json;
use dalut_bench::setup::bssa_params;
use dalut_bench::{HarnessArgs, Observation, Table};
use dalut_benchfns::Benchmark;
use dalut_boolfn::InputDistribution;
use dalut_core::{ApproxLutBuilder, ArchPolicy};
use dalut_hw::{build_approx_lut, ArchStyle};
use dalut_netlist::VerilogModule;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct VerifyRow {
    benchmark: String,
    arch: String,
    inputs_checked: usize,
    mismatches: usize,
    verilog_sample_ok: bool,
}

fn main() {
    let args = HarnessArgs::from_env();
    let obs = Observation::from_args(&args).expect("observation set up");
    let scale = args.scale();
    eprintln!("verify: exhaustive hardware sign-off at scale {scale:?}");

    let mut rows: Vec<VerifyRow> = Vec::new();
    let mut table = Table::new(&[
        "benchmark",
        "architecture",
        "inputs",
        "mismatches",
        "verilog",
    ]);
    for bench in Benchmark::all() {
        if let Some(only) = &args.only {
            if !bench.name().eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let target = bench.table(scale).expect("benchmark builds");
        let n = target.inputs();
        let dist = InputDistribution::uniform(n).expect("valid width");
        let mut params = bssa_params(&args, n);
        params.search.seed = args.seed;
        let outcome = ApproxLutBuilder::new(&target)
            .distribution(dist.clone())
            .bs_sa(params)
            .policy(ArchPolicy::bto_normal_nd_paper())
            .budget(args.budget())
            .observer(obs.observer())
            .run()
            .expect("search succeeds");
        let all_normal = outcome.config.mode_counts() == (0, outcome.config.outputs(), 0);

        let styles: Vec<ArchStyle> = [
            ArchStyle::Dalta,
            ArchStyle::BtoNormal,
            ArchStyle::BtoNormalNd,
        ]
        .into_iter()
        .filter(|s| match s {
            ArchStyle::Dalta => all_normal,
            ArchStyle::BtoNormal => outcome.config.mode_counts().2 == 0,
            ArchStyle::BtoNormalNd => true,
        })
        .collect();
        for style in styles {
            let inst = build_approx_lut(&outcome.config, style).expect("maps");
            let mut sim = inst.simulator().expect("acyclic");
            let mut mismatches = 0usize;
            for x in 0..(1u32 << n) {
                if inst.read(&mut sim, x) != outcome.config.eval(x) {
                    mismatches += 1;
                }
            }
            // Verilog export sample check through the interpreter.
            let module = VerilogModule::parse(&inst.to_verilog());
            let verilog_ok = match module {
                Err(_) => false,
                Ok(m) => {
                    let mut vs = m.interpreter();
                    let disabled: std::collections::HashSet<usize> =
                        inst.disabled_domains().iter().map(|d| d.index()).collect();
                    let enables: Vec<bool> = (1..inst.netlist().domains().len())
                        .map(|d| !disabled.contains(&d))
                        .collect();
                    (0..(1u32 << n))
                        .step_by(((1usize << n) / 64).max(1))
                        .all(|x| {
                            let mut vin = enables.clone();
                            vin.extend((0..n).map(|i| (x >> i) & 1 == 1));
                            let out = vs.step(&vin);
                            let word = out
                                .iter()
                                .enumerate()
                                .fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << i));
                            word == outcome.config.eval(x)
                        })
                }
            };
            table.row(vec![
                bench.name().to_string(),
                style.name().to_string(),
                (1usize << n).to_string(),
                mismatches.to_string(),
                if verilog_ok { "ok" } else { "FAIL" }.to_string(),
            ]);
            rows.push(VerifyRow {
                benchmark: bench.name().to_string(),
                arch: style.name().to_string(),
                inputs_checked: 1 << n,
                mismatches,
                verilog_sample_ok: verilog_ok,
            });
        }
    }
    println!("\nFunctional sign-off report.\n");
    println!("{}", table.render());
    let clean = rows
        .iter()
        .all(|r| r.mismatches == 0 && r.verilog_sample_ok);
    println!(
        "verdict: {}",
        if clean {
            "all architectures bit-exact against their models"
        } else {
            "MISMATCHES FOUND"
        }
    );
    obs.finish().expect("flush trace");
    let path = args.out_path("verify_results.json");
    write_json(&path, &rows).expect("write results");
    std::process::exit(i32::from(!clean));
}
