//! # dalut-bench
//!
//! Experiment harness for the DALUT reproduction: shared statistics,
//! CLI-argument handling and experiment orchestration used by the
//! table/figure regeneration binaries (`table1`, `table2`, `fig5`,
//! `fig6`) and the Criterion micro-benchmarks.
//!
//! Every binary accepts `--full` to run the paper's exact scale and
//! parameters (16-bit functions, `P = 1000/500`, `Z = 30`, `R = 5`,
//! 10 repetition runs); the default is a reduced configuration sized for
//! a small machine that preserves the qualitative shape of each result
//! (see DESIGN.md §2).
//!
//! All binaries share one flag set ([`HarnessArgs`]), including the
//! observability surface: `--trace PATH` streams every search event as
//! JSONL, `--metrics` embeds a metrics snapshot in the binary's JSON
//! report, `--progress` narrates coarse progress on stderr, and
//! `--budget-secs S` bounds each search's wall clock (see DESIGN.md §8).
//!
//! Long sweeps are crash-safe (see DESIGN.md §9): `--checkpoint-dir DIR`
//! checkpoints finished work items through the [`SweepSupervisor`],
//! `--resume` skips them on restart, `--max-retries N` bounds per-item
//! retry before the degradation chain kicks in, and SIGINT/SIGTERM trip
//! the run's `CancelToken` so a best-so-far results file is always
//! written ([`shutdown`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod args;
pub mod observation;
pub mod progress;
pub mod report;
pub mod setup;
pub mod signoff;
pub mod stats;
pub mod supervisor;

/// Re-exported from `dalut-serve`, where the handler moved so the
/// server's drain path and the harness binaries share one
/// implementation.
pub use dalut_serve::shutdown;

pub use args::HarnessArgs;
pub use observation::Observation;
pub use progress::StderrProgress;
pub use report::{write_json, write_versioned_json, Table, Versioned};
pub use signoff::{signoff_sweep, EstimatorSummary, PointSignoff, SignoffBank};
pub use stats::{geomean, RunStats};
pub use supervisor::{ItemError, Strategy, SupervisorOutcome, SweepSupervisor, WorkItem};
