//! Plain-text table rendering and JSON result persistence.

use serde::Serialize;
use std::path::Path;

/// A simple fixed-width text table (the harness prints paper-style rows).
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Writes a serialisable result object as pretty JSON next to the printed
/// table so EXPERIMENTS.md numbers stay traceable. Missing parent
/// directories (e.g. `results/`) are created first, and the write itself
/// is crash-safe (temp file → fsync → rename via
/// [`dalut_core::checkpoint::atomic_write`]): a run killed mid-write
/// leaves the previous report intact, never a torn or empty file.
///
/// # Errors
///
/// Returns an error if serialisation, directory creation or the write
/// fails.
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    dalut_core::checkpoint::atomic_write(path, json.as_bytes())
}

/// A report type with a stable, versioned schema tag.
///
/// Implementors drop their hand-rolled `schema: String` field;
/// [`write_versioned_json`] injects `Self::SCHEMA` as the report's
/// first key instead, so the tag can never drift from the type or be
/// forgotten at a construction site.
pub trait Versioned {
    /// The `"schema"` value, e.g. `"dalut-fleetsim/v1"`. Bump the
    /// suffix on any breaking change to the report's shape.
    const SCHEMA: &'static str;
}

/// [`write_json`], with the type's [`Versioned::SCHEMA`] injected as
/// the leading `"schema"` key. Produces byte-identical output to a
/// struct that declared `schema` as its first field.
///
/// # Errors
///
/// As [`write_json`]; additionally if `value` does not serialise to a
/// JSON object (versioned reports must be objects).
pub fn write_versioned_json<T: Serialize + Versioned>(
    path: impl AsRef<Path>,
    value: &T,
) -> std::io::Result<()> {
    let body = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let json = inject_schema(T::SCHEMA, &body).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "versioned report did not serialise to a JSON object",
        )
    })?;
    dalut_core::checkpoint::atomic_write(path, json.as_bytes())
}

/// Splices `"schema": <schema>` in as the first key of a
/// pretty-printed JSON object; `None` if `body` is not an object.
fn inject_schema(schema: &str, body: &str) -> Option<String> {
    let rest = body.strip_prefix('{')?;
    body.ends_with('}').then_some(())?;
    if rest.trim_start_matches(['\n', ' ']).starts_with('}') {
        // Empty object: the schema is the only key.
        Some(format!("{{\n  \"schema\": \"{schema}\"\n}}"))
    } else if let Some(fields) = rest.strip_prefix('\n') {
        // Pretty-printed: first field follows on its own line.
        Some(format!("{{\n  \"schema\": \"{schema}\",\n{fields}"))
    } else {
        // Compact object (e.g. a stubbed JSON library): same splice
        // without the layout.
        Some(format!("{{\"schema\":\"{schema}\",{rest}"))
    }
}

/// Formats a float with 2 decimals (table cells).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A temp dir unique to this process *and* call site, so parallel
    /// test invocations (or concurrent `cargo test` runs) never collide.
    fn unique_temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dalut_test_json_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["cos".into(), "9.47".into()]);
        t.row(vec!["Brent-Kung".into(), "0.09".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("cos "));
        // Columns align: 'value' entries start at the same offset.
        let off = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][off..off + 4], "9.47");
        assert_eq!(&lines[3][off..off + 4], "0.09");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn write_json_round_trips() {
        #[derive(Serialize)]
        struct R {
            x: f64,
        }
        let dir = unique_temp_dir("round_trip");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("r.json");
        write_json(&p, &R { x: 1.5 }).unwrap();
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(back["x"], 1.5);
        // Atomic write left no temp file behind.
        assert!(!dir.join("r.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_json_replaces_existing_report_atomically() {
        let dir = unique_temp_dir("replace");
        let p = dir.join("r.json");
        write_json(&p, &vec![1u32, 2, 3]).unwrap();
        write_json(&p, &vec![4u32]).unwrap();
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(back[0], 4.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_json_creates_missing_directories() {
        let dir = unique_temp_dir("nested");
        let p = dir.join("results").join("deep.json");
        #[derive(Serialize)]
        struct Ok2 {
            ok: bool,
        }
        write_json(&p, &Ok2 { ok: true }).unwrap();
        assert!(p.is_file());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_json_reports_unwritable_paths_as_errors() {
        // A file where a directory component should be: creation fails
        // with a typed io::Error instead of panicking.
        let dir = unique_temp_dir("blocked");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("not_a_dir"), b"x").unwrap();
        let p = dir.join("not_a_dir").join("r.json");
        assert!(write_json(&p, &1u32).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inject_schema_matches_a_declared_first_field() {
        #[derive(Serialize)]
        struct WithField {
            schema: String,
            x: u32,
        }
        #[derive(Serialize)]
        struct Without {
            x: u32,
        }
        let declared = serde_json::to_string_pretty(&WithField {
            schema: "dalut-test/v1".to_string(),
            x: 7,
        })
        .unwrap();
        let injected = inject_schema(
            "dalut-test/v1",
            &serde_json::to_string_pretty(&Without { x: 7 }).unwrap(),
        )
        .unwrap();
        assert_eq!(injected, declared);
    }

    #[test]
    fn inject_schema_handles_empty_and_compact_objects() {
        assert_eq!(
            inject_schema("s/v1", "{}").unwrap(),
            "{\n  \"schema\": \"s/v1\"\n}"
        );
        assert_eq!(
            inject_schema("s/v1", "{\"x\":1}").unwrap(),
            "{\"schema\":\"s/v1\",\"x\":1}"
        );
        assert!(inject_schema("s/v1", "[1,2]").is_none());
    }

    #[test]
    fn versioned_write_puts_schema_first() {
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        impl Versioned for R {
            const SCHEMA: &'static str = "dalut-test/v9";
        }
        let dir = unique_temp_dir("versioned");
        let p = dir.join("r.json");
        write_versioned_json(&p, &R { x: 3 }).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(text.contains("\"schema\": \"dalut-test/v9\""), "{text}");
        assert_eq!(back["x"], 3.0);
        assert!(text
            .trim_start_matches(['{', '\n', ' '])
            .starts_with("\"schema\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00"); // bankers-ish rounding of format!
        assert_eq!(f3(0.1234), "0.123");
    }
}
