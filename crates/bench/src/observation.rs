//! Wires the shared `--trace` / `--metrics` / `--progress` flags into a
//! single observer the harness binaries hand to [`ApproxLutBuilder`]
//! (`dalut_core::ApproxLutBuilder`): a JSONL trace file, an in-process
//! [`MetricsRecorder`] and the stderr narrator, fanned out behind one
//! [`MultiObserver`]. With no flags given the fan-out is empty and
//! reports itself disabled, so instrumented binaries pay nothing.

use crate::args::HarnessArgs;
use crate::progress::StderrProgress;
use dalut_core::{
    JsonlTraceWriter, MetricsRecorder, MetricsSnapshot, MultiObserver, Observer, SearchEvent,
};
use std::fs::File;
use std::io;
use std::sync::Arc;

/// The observability sinks a binary's arguments requested.
#[derive(Debug, Default)]
pub struct Observation {
    metrics: Option<Arc<MetricsRecorder>>,
    trace: Option<(String, Arc<JsonlTraceWriter<File>>)>,
    multi: MultiObserver,
}

impl Observation {
    /// Builds the sinks selected by `args`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the `--trace` file cannot be created.
    pub fn from_args(args: &HarnessArgs) -> io::Result<Self> {
        let mut obs = Self::default();
        if let Some(path) = &args.trace {
            let writer = Arc::new(JsonlTraceWriter::create(path)?);
            obs.multi.push(writer.clone());
            obs.trace = Some((path.clone(), writer));
        }
        if args.metrics {
            let metrics = Arc::new(MetricsRecorder::new());
            obs.multi.push(metrics.clone());
            obs.metrics = Some(metrics);
        }
        if args.progress {
            obs.multi.push(Arc::new(StderrProgress::new()));
        }
        Ok(obs)
    }

    /// The combined observer to pass to a search builder.
    pub fn observer(&self) -> &MultiObserver {
        &self.multi
    }

    /// Posts a harness-level event (e.g. phase brackets around non-search
    /// work, or fault-sweep progress) to every attached sink.
    pub fn emit(&self, event: &SearchEvent) {
        self.multi.on_event(event);
    }

    /// Brackets `f` in a named phase so metrics attribute its wall time.
    pub fn phase<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        self.emit(&SearchEvent::PhaseStarted {
            phase: name.to_string(),
        });
        let out = f();
        self.emit(&SearchEvent::PhaseFinished {
            phase: name.to_string(),
        });
        out
    }

    /// The metrics snapshot, if `--metrics` was given.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.metrics.as_ref().map(|m| m.snapshot())
    }

    /// Flushes the trace file (if any) and reports where it went on
    /// stderr.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error from the flush.
    pub fn finish(&self) -> io::Result<()> {
        if let Some((path, writer)) = &self.trace {
            writer.flush()?;
            eprintln!("wrote {} trace events to {path}", writer.lines());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_flags_build_a_disabled_observer() {
        let obs = Observation::from_args(&HarnessArgs::default()).unwrap();
        assert!(!obs.observer().enabled());
        assert!(obs.metrics_snapshot().is_none());
        obs.finish().unwrap();
    }

    #[test]
    fn metrics_flag_records_emitted_events() {
        let args = HarnessArgs {
            metrics: true,
            ..HarnessArgs::default()
        };
        let obs = Observation::from_args(&args).unwrap();
        assert!(obs.observer().enabled());
        obs.emit(&SearchEvent::BudgetTick { iterations: 1 });
        obs.phase("kernel", || {
            obs.emit(&SearchEvent::BudgetTick { iterations: 2 });
        });
        let snap = obs.metrics_snapshot().unwrap();
        assert_eq!(snap.counters.budget_ticks, 2);
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.phases[0].name, "kernel");
    }

    #[test]
    fn trace_flag_writes_jsonl() {
        let path = std::env::temp_dir().join(format!("dalut_obs_{}.jsonl", std::process::id()));
        let args = HarnessArgs {
            trace: Some(path.to_string_lossy().into_owned()),
            ..HarnessArgs::default()
        };
        let obs = Observation::from_args(&args).unwrap();
        obs.emit(&SearchEvent::BudgetTick { iterations: 1 });
        obs.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        drop(obs);
        let _ = std::fs::remove_file(&path);
    }
}
