//! Statistics helpers for the experiment tables.

/// Geometric mean of strictly useful (finite, non-negative) samples.
/// Zero samples are clamped to a tiny epsilon, matching how the paper's
/// geomean rows must have treated near-zero MEDs (Brent-Kung's 0.09).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(
                v.is_finite() && v >= 0.0,
                "geomean requires finite non-negative values"
            );
            v.max(1e-12).ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Min / average / sample-standard-deviation summary of repeated runs —
/// the three MED columns of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Smallest sample.
    pub min: f64,
    /// Arithmetic mean.
    pub avg: f64,
    /// Sample standard deviation (0 for a single sample).
    pub stdev: f64,
}

impl RunStats {
    /// Summarises a non-empty sample set.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "stats of empty slice");
        let n = samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let avg = samples.iter().sum::<f64>() / n;
        let stdev = if samples.len() < 2 {
            0.0
        } else {
            let var = samples.iter().map(|&s| (s - avg) * (s - avg)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        };
        Self { min, avg, stdev }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_known_value() {
        // sqrt(2 * 8) = 4.
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_handles_zero_samples() {
        let g = geomean(&[0.0, 1.0]);
        assert!(g > 0.0 && g < 1.0);
    }

    #[test]
    fn run_stats_matches_hand_computation() {
        let s = RunStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert!((s.avg - 2.5).abs() < 1e-12);
        // Sample stdev of 1..4 = sqrt(5/3).
        assert!((s.stdev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn run_stats_single_sample_has_zero_stdev() {
        let s = RunStats::from_samples(&[7.5]);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.stdev, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }
}
