//! Parameter derivation for the harness: paper-exact values under
//! `--full`, proportionally scaled values otherwise — plus the
//! [`JobSpec`] constructors turning those parameters into the canonical
//! work description the binaries and the `dalut-serve` server share.

use crate::args::HarnessArgs;
use dalut_benchfns::{Benchmark, Scale};
use dalut_core::{
    Algorithm, ArchPolicy, BsSaParams, BudgetSpec, DaltaParams, DistributionSpec, FunctionSource,
    JobSpec, SearchParams,
};

/// The resolver the harness uses for named benchmark sources: the ten
/// paper benchmarks (re-exported from `dalut-serve`, so a spec built
/// here resolves identically in-process and on the server).
pub use dalut_serve::benchfns_resolver;

/// Bound-set size for a given input width: the paper's `b = 9` at
/// `n = 16`, scaled proportionally (and clamped to a valid 0 < b < n).
pub fn bound_size(n: usize) -> usize {
    ((n * 9 + 8) / 16).clamp(1, n - 1)
}

/// RoundIn's dropped input bits: the paper's `w = 6` at `n = 16`, scaled.
pub fn round_in_w(n: usize) -> usize {
    ((n * 6 + 8) / 16).clamp(1, n - 1)
}

fn search_params(args: &HarnessArgs, n: usize) -> SearchParams {
    if args.full {
        let mut p = SearchParams::paper();
        p.threads = args.threads;
        p.seed = args.seed;
        p
    } else {
        SearchParams {
            bound_size: bound_size(n),
            rounds: 3,
            initial_patterns: 8,
            threads: args.threads,
            seed: args.seed,
        }
    }
}

/// DALTA parameters for the given width (paper: `P = 1000`).
pub fn dalta_params(args: &HarnessArgs, n: usize) -> DaltaParams {
    DaltaParams {
        search: search_params(args, n),
        partition_limit: if args.full { 1000 } else { 120 },
    }
}

/// BS-SA parameters for the given width (paper: `P = 500`, `N_beam = 3`,
/// `N_nb = 5`, `τ0 = 0.2`, `α = 0.9`, 10 SA processes).
pub fn bssa_params(args: &HarnessArgs, n: usize) -> BsSaParams {
    BsSaParams {
        search: search_params(args, n),
        partition_limit: if args.full { 500 } else { 60 },
        beam_width: 3,
        neighbors: 5,
        initial_temp: 0.2,
        alpha: 0.9,
        sa_processes: if args.full { 10 } else { 4 },
        stall_limit: 3,
        round1_fill: dalut_decomp::LsbFill::Predictive,
    }
}

/// The shared core of the spec constructors below: a named-benchmark
/// function source under the uniform distribution, with the budget and
/// estimator mode the harness arguments select.
fn job_spec(args: &HarnessArgs, bench: Benchmark, scale: Scale, algorithm: Algorithm) -> JobSpec {
    JobSpec {
        function: FunctionSource::Benchmark {
            name: bench.name().to_string(),
            scale_bits: scale.input_bits(),
        },
        distribution: DistributionSpec::Uniform,
        algorithm,
        policy: ArchPolicy::NormalOnly,
        budget: BudgetSpec::from_budget(&args.budget()),
        estimator: args.estimator,
    }
}

/// The canonical [`JobSpec`] for one DALTA-baseline run of `bench` at
/// `scale` under the harness arguments, seeded with `seed`.
#[must_use]
pub fn dalta_spec(args: &HarnessArgs, bench: Benchmark, scale: Scale, seed: u64) -> JobSpec {
    let mut params = dalta_params(args, scale.input_bits());
    params.search.seed = seed;
    job_spec(args, bench, scale, Algorithm::Dalta(params))
}

/// The canonical [`JobSpec`] for one BS-SA run of `bench` at `scale`
/// under `policy`, seeded with `seed`.
#[must_use]
pub fn bssa_spec(
    args: &HarnessArgs,
    bench: Benchmark,
    scale: Scale,
    policy: ArchPolicy,
    seed: u64,
) -> JobSpec {
    let mut params = bssa_params(args, scale.input_bits());
    params.search.seed = seed;
    let mut spec = job_spec(args, bench, scale, Algorithm::BsSa(params));
    spec.policy = policy;
    spec
}

/// The paper measures the energy of 1024 read operations.
pub const ENERGY_READS: usize = 1024;

/// Survivors the `--estimator prune` mode forwards to exact sign-off in
/// the Fig. 6 mode-tradeoff sweep: enough to keep the reported Pareto
/// front exact (the sweep has ~`m` points; the estimator's rank error is
/// well under this margin) while skipping most netlist builds.
pub const PRUNE_KEEP: usize = 6;

/// Relative score margin added on top of [`PRUNE_KEEP`]: candidates
/// estimated within 5 % of the `PRUNE_KEEP`-th cheapest also survive to
/// exact sign-off. This absorbs model error at the pruning boundary —
/// the calibrated energy error is ~1–3 %, so the true optimum cannot be
/// estimated past the cutoff — at the cost of a few extra sign-offs
/// only when candidates are nearly tied anyway.
pub const PRUNE_MARGIN: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_size_matches_paper_at_16() {
        assert_eq!(bound_size(16), 9);
        assert_eq!(round_in_w(16), 6);
    }

    #[test]
    fn scaled_sizes_stay_valid() {
        for n in 4..=16 {
            let b = bound_size(n);
            assert!(b >= 1 && b < n, "n={n} b={b}");
            let w = round_in_w(n);
            assert!(w >= 1 && w < n);
        }
    }

    #[test]
    fn full_args_use_paper_parameters() {
        let args = HarnessArgs {
            full: true,
            ..HarnessArgs::default()
        };
        let d = dalta_params(&args, 16);
        assert_eq!(d.partition_limit, 1000);
        assert_eq!(d.search.rounds, 5);
        let b = bssa_params(&args, 16);
        assert_eq!(b.partition_limit, 500);
        assert_eq!(b.sa_processes, 10);
    }

    #[test]
    fn reduced_args_scale_down() {
        let args = HarnessArgs::default();
        let d = dalta_params(&args, 10);
        assert!(d.partition_limit < DaltaParams::paper().partition_limit);
        assert_eq!(d.search.bound_size, bound_size(10));
    }
}
