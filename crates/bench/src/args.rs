//! Minimal CLI-argument handling shared by the harness binaries (no CLI
//! dependency: two flags and three numeric options).

use dalut_benchfns::Scale;

/// Common harness options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Run the paper's full scale and parameters.
    pub full: bool,
    /// Total input bits for reduced-scale runs (even, 4..=16).
    pub scale_bits: usize,
    /// Number of repetition runs (Table II uses 10).
    pub runs: usize,
    /// Whether `--runs` was given explicitly (overrides the `--full`
    /// default of 10).
    pub runs_explicit: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for partition evaluation.
    pub threads: usize,
    /// Restrict to one benchmark by name, if given.
    pub only: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            full: false,
            scale_bits: 10,
            runs: 3,
            runs_explicit: false,
            seed: 1,
            threads: 1,
            only: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `--full`, `--scale N`, `--runs N`, `--seed N`,
    /// `--threads N`, `--only NAME` from an iterator of arguments.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed argument.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => out.full = true,
                "--scale" => out.scale_bits = num(&mut args, "--scale")?,
                "--runs" => {
                    out.runs = num(&mut args, "--runs")?;
                    out.runs_explicit = true;
                }
                "--seed" => out.seed = num(&mut args, "--seed")?,
                "--threads" => out.threads = num(&mut args, "--threads")?,
                "--only" => {
                    out.only = Some(args.next().ok_or("--only needs a benchmark name")?)
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: [--full] [--scale BITS] [--runs N] [--seed N] [--threads N] [--only NAME]"
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with the usage string on
    /// error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The benchmark scale these arguments select.
    pub fn scale(&self) -> Scale {
        if self.full {
            Scale::Paper
        } else {
            Scale::Reduced(self.scale_bits)
        }
    }

    /// Number of runs: the paper's 10 under `--full`, unless `--runs`
    /// was given explicitly.
    pub fn effective_runs(&self) -> usize {
        if self.full && !self.runs_explicit {
            10
        } else {
            self.runs
        }
    }
}

fn num<T: std::str::FromStr>(
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    flag: &str,
) -> Result<T, String> {
    args.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag} needs a numeric value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_reduced_scale() {
        let a = parse(&[]).unwrap();
        assert!(!a.full);
        assert_eq!(a.scale(), Scale::Reduced(10));
        assert_eq!(a.effective_runs(), 3);
    }

    #[test]
    fn full_flag_selects_paper_scale() {
        let a = parse(&["--full"]).unwrap();
        assert_eq!(a.scale(), Scale::Paper);
        assert_eq!(a.effective_runs(), 10);
        // Explicit --runs overrides the paper default.
        let a = parse(&["--full", "--runs", "1"]).unwrap();
        assert_eq!(a.effective_runs(), 1);
    }

    #[test]
    fn numeric_options_parse() {
        let a = parse(&[
            "--scale",
            "12",
            "--runs",
            "5",
            "--seed",
            "9",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(a.scale_bits, 12);
        assert_eq!(a.runs, 5);
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, 4);
    }

    #[test]
    fn only_filter_parses() {
        let a = parse(&["--only", "cos"]).unwrap();
        assert_eq!(a.only.as_deref(), Some("cos"));
    }

    #[test]
    fn malformed_arguments_error() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--runs", "x"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }
}
