//! Minimal CLI-argument handling shared by the harness binaries (no CLI
//! dependency): one parser, one flag set, every binary.
//!
//! Alongside the original scale/seed options, the parser carries the
//! observability surface (`--trace`, `--metrics`, `--progress`), run
//! budgets (`--budget-secs`) and output redirection (`--out`), plus the
//! hardware-mapping options `synth` needs (`--harden`, `--vcd`,
//! `--arch`) and the crash-safety surface (`--checkpoint-dir`,
//! `--resume`, `--max-retries`). Binaries ignore options that do not
//! apply to them.

use crate::supervisor::SweepSupervisor;
use dalut_benchfns::Scale;
use dalut_core::checkpoint::CheckpointStore;
use dalut_core::{CancelToken, RunBudget};
use dalut_est::EstimatorMode;
use dalut_hw::{set_default_sim_options, SimOptions, CHUNK_CYCLES};
use dalut_netlist::SimBackend;
use std::path::PathBuf;
use std::time::Duration;

/// Common harness options.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Run the paper's full scale and parameters.
    pub full: bool,
    /// Total input bits for reduced-scale runs (even, 4..=16).
    pub scale_bits: usize,
    /// Number of repetition runs (Table II uses 10).
    pub runs: usize,
    /// Whether `--runs` was given explicitly (overrides the `--full`
    /// default of 10).
    pub runs_explicit: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for partition evaluation.
    pub threads: usize,
    /// Restrict to one benchmark by name, if given.
    pub only: Option<String>,
    /// Wall-clock budget per search, in seconds.
    pub budget_secs: Option<f64>,
    /// Redirect the binary's JSON report to this path.
    pub out: Option<String>,
    /// Stream every search event as JSONL to this path.
    pub trace: Option<String>,
    /// Collect a metrics snapshot and embed/print it.
    pub metrics: bool,
    /// Narrate search progress on stderr.
    pub progress: bool,
    /// `synth`: triplicate the configuration bits (TMR hardening).
    pub harden: bool,
    /// `synth`: record a VCD waveform of the sign-off sweep here.
    pub vcd: Option<String>,
    /// `synth`: target architecture style name.
    pub arch: Option<String>,
    /// Directory for sweep checkpoints (enables checkpointing).
    pub checkpoint_dir: Option<String>,
    /// Resume from the newest checkpoint in `--checkpoint-dir`.
    pub resume: bool,
    /// Retries per work-item strategy before degrading.
    pub max_retries: u32,
    /// How sweeps use the analytic resource estimator: `off` signs off
    /// every candidate exactly (bit-identical to the pre-estimator
    /// flow), `prune` (default) signs off only the analytically cheapest
    /// survivors, `trust` skips exact sign-off entirely.
    pub estimator: EstimatorMode,
    /// Sign-off simulation engine: `scalar`, `u64`, `w256`, `w512` or
    /// `auto` (default; widest backend the CPU supports). Every backend
    /// is bit-identical — this flag only changes speed.
    pub sim_backend: SimBackend,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            full: false,
            scale_bits: 10,
            runs: 3,
            runs_explicit: false,
            seed: 1,
            threads: 1,
            only: None,
            budget_secs: None,
            out: None,
            trace: None,
            metrics: false,
            progress: false,
            harden: false,
            vcd: None,
            arch: None,
            checkpoint_dir: None,
            resume: false,
            max_retries: 2,
            estimator: EstimatorMode::default(),
            sim_backend: SimBackend::Auto,
        }
    }
}

const USAGE: &str = "usage: [--full] [--scale BITS] [--runs N] [--seed N] [--threads N] \
[--only NAME] [--budget-secs S] [--out PATH] [--trace PATH] [--metrics] [--progress] \
[--harden] [--vcd PATH] [--arch NAME] [--checkpoint-dir DIR] [--resume] [--max-retries N] \
[--estimator off|prune|trust] [--sim-backend scalar|u64|w256|w512|auto]";

impl HarnessArgs {
    /// Parses the shared flag set from an iterator of arguments.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed argument.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => out.full = true,
                "--scale" => out.scale_bits = num(&mut args, "--scale")?,
                "--runs" => {
                    out.runs = num(&mut args, "--runs")?;
                    out.runs_explicit = true;
                }
                "--seed" => out.seed = num(&mut args, "--seed")?,
                "--threads" => out.threads = num(&mut args, "--threads")?,
                "--only" => out.only = Some(args.next().ok_or("--only needs a benchmark name")?),
                "--budget-secs" => {
                    let secs: f64 = num(&mut args, "--budget-secs")?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err("--budget-secs needs a positive number".to_string());
                    }
                    out.budget_secs = Some(secs);
                }
                "--out" => out.out = Some(args.next().ok_or("--out needs a path")?),
                "--trace" => out.trace = Some(args.next().ok_or("--trace needs a path")?),
                "--metrics" => out.metrics = true,
                "--progress" => out.progress = true,
                "--harden" => out.harden = true,
                "--vcd" => out.vcd = Some(args.next().ok_or("--vcd needs a path")?),
                "--arch" => {
                    out.arch = Some(args.next().ok_or("--arch needs an architecture name")?)
                }
                "--checkpoint-dir" => {
                    out.checkpoint_dir =
                        Some(args.next().ok_or("--checkpoint-dir needs a directory")?)
                }
                "--resume" => out.resume = true,
                "--max-retries" => out.max_retries = num(&mut args, "--max-retries")?,
                "--estimator" => {
                    out.estimator = args
                        .next()
                        .ok_or(format!(
                            "--estimator needs a mode ({})",
                            EstimatorMode::CHOICES
                        ))?
                        .parse()?
                }
                "--sim-backend" => {
                    out.sim_backend = args
                        .next()
                        .ok_or("--sim-backend needs an engine (scalar|u64|w256|w512|auto)")?
                        .parse()?
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with the usage string on
    /// error, and installs the parsed [`SimOptions`] as the process
    /// default so every sign-off simulation in the binary honours
    /// `--sim-backend`/`--threads`.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => {
                set_default_sim_options(a.sim_options());
                a
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The simulation options these arguments select: engine from
    /// `--sim-backend`, block-parallel workers from `--threads`, fixed
    /// [`CHUNK_CYCLES`] chunking (so results never depend on the thread
    /// count).
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            backend: self.sim_backend,
            threads: self.threads,
            chunk_cycles: CHUNK_CYCLES,
        }
    }

    /// The benchmark scale these arguments select.
    pub fn scale(&self) -> Scale {
        if self.full {
            Scale::Paper
        } else {
            Scale::Reduced(self.scale_bits)
        }
    }

    /// Number of runs: the paper's 10 under `--full`, unless `--runs`
    /// was given explicitly.
    pub fn effective_runs(&self) -> usize {
        if self.full && !self.runs_explicit {
            10
        } else {
            self.runs
        }
    }

    /// The per-search budget these arguments select: a wall-clock
    /// deadline when `--budget-secs` was given, unlimited otherwise.
    pub fn budget(&self) -> RunBudget {
        match self.budget_secs {
            Some(secs) => RunBudget::unlimited().with_deadline(Duration::from_secs_f64(secs)),
            None => RunBudget::unlimited(),
        }
    }

    /// The report path: `--out` when given, else the binary's default.
    pub fn out_path(&self, default: impl Into<PathBuf>) -> PathBuf {
        self.out
            .as_deref()
            .map_or_else(|| default.into(), Into::into)
    }

    /// Builds the sweep supervisor these arguments select: retry cap from
    /// `--max-retries`, checkpointing into `--checkpoint-dir` (resuming
    /// under `--resume`), cancellation shared with `token`.
    ///
    /// `sweep_fingerprint` must cover every argument that shapes results
    /// (see [`SweepSupervisor::new`]); binaries pass a fingerprint of
    /// scale/seed/runs/params.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the checkpoint directory cannot be
    /// created.
    pub fn supervisor(
        &self,
        sweep_fingerprint: u64,
        token: &CancelToken,
    ) -> std::io::Result<SweepSupervisor> {
        let mut sup = SweepSupervisor::new(self.threads, self.seed, sweep_fingerprint)
            .max_retries(self.max_retries)
            .cancel_token(token);
        if let Some(dir) = &self.checkpoint_dir {
            sup = sup.checkpoints(CheckpointStore::open(dir)?, self.resume);
        }
        Ok(sup)
    }
}

fn num<T: std::str::FromStr>(
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    flag: &str,
) -> Result<T, String> {
    args.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag} needs a numeric value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_reduced_scale() {
        let a = parse(&[]).unwrap();
        assert!(!a.full);
        assert_eq!(a.scale(), Scale::Reduced(10));
        assert_eq!(a.effective_runs(), 3);
        assert!(!a.metrics && !a.progress && a.trace.is_none());
    }

    #[test]
    fn full_flag_selects_paper_scale() {
        let a = parse(&["--full"]).unwrap();
        assert_eq!(a.scale(), Scale::Paper);
        assert_eq!(a.effective_runs(), 10);
        // Explicit --runs overrides the paper default.
        let a = parse(&["--full", "--runs", "1"]).unwrap();
        assert_eq!(a.effective_runs(), 1);
    }

    #[test]
    fn numeric_options_parse() {
        let a = parse(&[
            "--scale",
            "12",
            "--runs",
            "5",
            "--seed",
            "9",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(a.scale_bits, 12);
        assert_eq!(a.runs, 5);
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, 4);
    }

    #[test]
    fn only_filter_parses() {
        let a = parse(&["--only", "cos"]).unwrap();
        assert_eq!(a.only.as_deref(), Some("cos"));
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse(&["--trace", "t.jsonl", "--metrics", "--progress"]).unwrap();
        assert_eq!(a.trace.as_deref(), Some("t.jsonl"));
        assert!(a.metrics);
        assert!(a.progress);
    }

    #[test]
    fn budget_flag_builds_a_deadline() {
        let a = parse(&["--budget-secs", "2.5"]).unwrap();
        assert_eq!(a.budget_secs, Some(2.5));
        // No flag: an unlimited budget.
        let b = parse(&[]).unwrap();
        assert!(b.budget_secs.is_none());
        let _ = b.budget();
        // Non-positive budgets are rejected at parse time.
        assert!(parse(&["--budget-secs", "0"]).is_err());
        assert!(parse(&["--budget-secs", "-1"]).is_err());
    }

    #[test]
    fn out_path_prefers_explicit_flag() {
        let a = parse(&["--out", "custom.json"]).unwrap();
        assert_eq!(a.out_path("default.json"), PathBuf::from("custom.json"));
        let b = parse(&[]).unwrap();
        assert_eq!(b.out_path("default.json"), PathBuf::from("default.json"));
    }

    #[test]
    fn synth_options_parse() {
        let a = parse(&["--harden", "--vcd", "w.vcd", "--arch", "bto-normal"]).unwrap();
        assert!(a.harden);
        assert_eq!(a.vcd.as_deref(), Some("w.vcd"));
        assert_eq!(a.arch.as_deref(), Some("bto-normal"));
    }

    #[test]
    fn crash_safety_flags_parse() {
        let a = parse(&["--checkpoint-dir", "ckpt", "--resume", "--max-retries", "5"]).unwrap();
        assert_eq!(a.checkpoint_dir.as_deref(), Some("ckpt"));
        assert!(a.resume);
        assert_eq!(a.max_retries, 5);
        let b = parse(&[]).unwrap();
        assert!(b.checkpoint_dir.is_none());
        assert!(!b.resume);
        assert_eq!(b.max_retries, 2);
        assert!(parse(&["--checkpoint-dir"]).is_err());
        assert!(parse(&["--max-retries", "x"]).is_err());
    }

    #[test]
    fn estimator_flag_parses_and_defaults_to_prune() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.estimator, EstimatorMode::Prune);
        for (s, m) in [
            ("off", EstimatorMode::Off),
            ("prune", EstimatorMode::Prune),
            ("trust", EstimatorMode::Trust),
        ] {
            assert_eq!(parse(&["--estimator", s]).unwrap().estimator, m);
        }
        assert!(parse(&["--estimator"]).is_err());
        assert!(parse(&["--estimator", "exact"]).is_err());
    }

    #[test]
    fn sim_backend_flag_parses_and_defaults_to_auto() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.sim_backend, SimBackend::Auto);
        for (s, b) in [
            ("scalar", SimBackend::Scalar),
            ("u64", SimBackend::U64),
            ("w256", SimBackend::W256),
            ("w512", SimBackend::W512),
            ("auto", SimBackend::Auto),
        ] {
            assert_eq!(parse(&["--sim-backend", s]).unwrap().sim_backend, b);
        }
        assert!(parse(&["--sim-backend"]).is_err());
        assert!(parse(&["--sim-backend", "avx"]).is_err());
        let opts = parse(&["--sim-backend", "w256", "--threads", "3"])
            .unwrap()
            .sim_options();
        assert_eq!(opts.backend, SimBackend::W256);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.chunk_cycles, CHUNK_CYCLES);
    }

    #[test]
    fn malformed_arguments_error() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--runs", "x"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--budget-secs", "fast"]).is_err());
    }
}
