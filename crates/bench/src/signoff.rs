//! Estimator-pruned exact sign-off for the sweep binaries.
//!
//! The Fig. 6 mode sweep (and any other candidate sweep) historically
//! paid a full netlist build + 1024-read simulation per candidate. Under
//! `--estimator prune` the flow becomes: score every candidate with the
//! closed-form [`ResourceEstimator`], forward only the
//! [`PRUNE_KEEP`](crate::setup::PRUNE_KEEP) analytically cheapest ones —
//! plus near-ties within [`PRUNE_MARGIN`](crate::setup::PRUNE_MARGIN) of
//! the cutoff, so boundary-level model error cannot drop the true
//! optimum — (plus any caller-pinned references) to exact sign-off, and
//! quote the
//! estimator's numbers for the pruned remainder. `--estimator off`
//! bypasses this module entirely (bit-identical legacy flow);
//! `--estimator trust` skips exact sign-off for every candidate.
//!
//! Calibration coefficients are fitted once per run against a seeded
//! design-of-experiments sweep ([`dalut_est::calibrate`]) and — when a
//! `--checkpoint-dir` is set — persisted as `estimator_coeffs.json`
//! (`dalut-est-coeffs/v1`) beside the sweep checkpoints, so a resumed
//! run prunes with the model it started with.

use std::path::{Path, PathBuf};

use dalut_boolfn::InputDistribution;
use dalut_core::{
    select_survivors_with_margin, ApproxLutConfig, Observer, ResourceScorer, SearchEvent,
};
use dalut_est::{
    calibrate_families, CalibrationOptions, CalibrationReport, CoeffStore, EstError, EstimatorMode,
    ResourceEstimate, ResourceEstimator,
};
use dalut_hw::{characterize_observed, ArchStyle, InstanceCache};
use dalut_netlist::CellLibrary;
use serde::Serialize;

/// File name of the persisted coefficient store inside a checkpoint
/// directory.
pub const COEFFS_FILE: &str = "estimator_coeffs.json";

/// A calibrated estimator bank for one sweep: per-family coefficients,
/// the shared instance memo-cache for the exact sign-offs, and the fit
/// reports for the harness' JSON output.
#[derive(Debug)]
pub struct SignoffBank {
    dist: InputDistribution,
    lib: CellLibrary,
    store: CoeffStore,
    /// Fit/exactness reports of the families calibrated this run (empty
    /// when every family was loaded from a persisted store).
    pub reports: Vec<CalibrationReport>,
    /// Memoized netlist builds, shared across all exact sign-offs.
    pub cache: InstanceCache,
}

impl SignoffBank {
    /// Prepares estimators for `styles`: loads `estimator_coeffs.json`
    /// from `checkpoint_dir` when a valid store covering every family
    /// exists, otherwise calibrates with `opts` (and persists the result
    /// when a checkpoint directory is set).
    ///
    /// # Errors
    ///
    /// Propagates calibration failures ([`EstError`]).
    pub fn prepare(
        styles: &[ArchStyle],
        dist: &InputDistribution,
        lib: &CellLibrary,
        opts: &CalibrationOptions,
        checkpoint_dir: Option<&str>,
    ) -> Result<Self, EstError> {
        let path = checkpoint_dir.map(|d: &str| Path::new(d).join(COEFFS_FILE));
        if let Some(store) = path.as_ref().and_then(|p| load_covering(p, styles, lib)) {
            return Ok(Self {
                dist: dist.clone(),
                lib: lib.clone(),
                store,
                reports: Vec::new(),
                cache: InstanceCache::new(),
            });
        }
        let (store, reports) = calibrate_families(styles, dist, lib, opts)?;
        if let Some(p) = &path {
            if let Err(e) = store.save(p) {
                eprintln!("warning: could not persist {}: {e}", p.display());
            }
        }
        Ok(Self {
            dist: dist.clone(),
            lib: lib.clone(),
            store,
            reports,
            cache: InstanceCache::new(),
        })
    }

    /// The calibrated estimator for one family (physical prior if the
    /// family was never calibrated).
    #[must_use]
    pub fn estimator(&self, style: ArchStyle) -> ResourceEstimator {
        let est = ResourceEstimator::new(style, self.dist.clone()).with_library(self.lib.clone());
        match self.store.get(style.name()) {
            Some(set) => est.with_model(set.model),
            None => est,
        }
    }

    /// The persisted/in-memory coefficient store.
    #[must_use]
    pub fn store(&self) -> &CoeffStore {
        &self.store
    }
}

fn load_covering(path: &PathBuf, styles: &[ArchStyle], lib: &CellLibrary) -> Option<CoeffStore> {
    let store = CoeffStore::load(path).ok()?;
    if store.library != lib.name {
        return None;
    }
    styles
        .iter()
        .all(|s| store.get(s.name()).is_some())
        .then_some(store)
}

/// The estimator block embedded in a harness' JSON report when pruning
/// was active.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EstimatorSummary {
    /// `"prune"` or `"trust"`.
    pub mode: String,
    /// Candidates scored analytically.
    pub candidates: usize,
    /// Candidates that paid exact sign-off.
    pub exact_signoffs: usize,
    /// Fit/exactness reports of the families calibrated this run (empty
    /// when coefficients were loaded from a persisted store).
    pub calibration: Vec<CalibrationReport>,
    /// Netlist-cache hits during the exact sign-offs.
    pub cache_hits: u64,
    /// Netlist-cache misses (builds performed).
    pub cache_misses: u64,
}

impl SignoffBank {
    /// The report block for a finished sweep.
    #[must_use]
    pub fn summary(
        &self,
        mode: EstimatorMode,
        candidates: usize,
        exact_signoffs: usize,
    ) -> EstimatorSummary {
        EstimatorSummary {
            mode: mode.to_string(),
            candidates,
            exact_signoffs,
            calibration: self.reports.clone(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
        }
    }
}

/// One sweep candidate's sign-off result: exact when it survived
/// pruning, estimated otherwise.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PointSignoff {
    /// Energy per read, fJ — exact or estimated per `source`.
    pub energy_per_read_fj: f64,
    /// Critical-path delay, ns (analytic; exact for built survivors).
    pub critical_path_ns: f64,
    /// `"exact"` or `"estimated"`.
    pub source: &'static str,
    /// The full estimate (present for every candidate in prune/trust
    /// modes — survivors keep it for estimate-vs-exact validation).
    pub estimate: Option<ResourceEstimate>,
}

/// Signs off a homogeneous candidate sweep under the given estimator
/// mode: estimates every candidate, prunes to the `keep` analytically
/// cheapest plus [`PRUNE_MARGIN`](crate::setup::PRUNE_MARGIN) near-ties
/// (`Prune`) or none at all (`Trust`), pays exact sign-off for
/// survivors only, and emits [`SearchEvent::EstimateBatch`] /
/// [`SearchEvent::PruneDecision`] so the metrics layer counts the work.
///
/// All candidates are quoted at the common `clock_period_ns`. Do not
/// call this with [`EstimatorMode::Off`] — the legacy exact path should
/// run unchanged instead.
///
/// # Panics
///
/// Panics when called with [`EstimatorMode::Off`], or if a surviving
/// candidate fails to build or simulate (sweep candidates are
/// mode-compatible by construction).
pub fn signoff_sweep(
    bank: &SignoffBank,
    style: ArchStyle,
    candidates: &[&ApproxLutConfig],
    mode: EstimatorMode,
    keep: usize,
    clock_period_ns: f64,
    reads: &[u32],
    observer: &dyn Observer,
) -> Vec<PointSignoff> {
    assert!(
        mode != EstimatorMode::Off,
        "signoff_sweep is the pruned path; run the exact flow for --estimator off"
    );
    let est = bank.estimator(style).with_clock(clock_period_ns);
    let estimates: Vec<ResourceEstimate> = candidates
        .iter()
        .map(|c| {
            est.estimate(c)
                .expect("sweep candidates are mode-compatible")
        })
        .collect();
    observer.on_event(&SearchEvent::EstimateBatch {
        arch: style.name().to_string(),
        candidates: candidates.len(),
    });

    let survivors: Vec<usize> = match mode {
        EstimatorMode::Trust => Vec::new(),
        _ => select_survivors_with_margin(
            &est as &dyn ResourceScorer,
            candidates,
            keep,
            crate::setup::PRUNE_MARGIN,
        ),
    };
    observer.on_event(&SearchEvent::PruneDecision {
        candidates: candidates.len(),
        kept: survivors.len(),
        mode: mode.to_string(),
    });

    let mut out: Vec<PointSignoff> = estimates
        .into_iter()
        .map(|e| PointSignoff {
            energy_per_read_fj: e.energy_per_read_fj,
            critical_path_ns: e.critical_path_ns,
            source: "estimated",
            estimate: Some(e),
        })
        .collect();
    for i in survivors {
        let inst = bank
            .cache
            .get_or_build(candidates[i], style)
            .expect("survivor builds");
        let rep = characterize_observed(&inst, reads, &bank.lib, clock_period_ns, observer)
            .expect("survivor simulates");
        out[i].energy_per_read_fj = rep.energy_per_read_fj;
        out[i].critical_path_ns = rep.critical_path_ns;
        out[i].source = "exact";
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_core::MetricsRecorder;
    use dalut_est::doe::synthetic_config;

    fn bank(styles: &[ArchStyle]) -> SignoffBank {
        let dist = InputDistribution::uniform(6).unwrap();
        let lib = CellLibrary::nangate45();
        let mut opts = CalibrationOptions::fast();
        opts.samples = 6;
        opts.reads = 64;
        SignoffBank::prepare(styles, &dist, &lib, &opts, None).unwrap()
    }

    #[test]
    fn prune_mode_signs_off_only_survivors() {
        let b = bank(&[ArchStyle::BtoNormalNd]);
        let configs: Vec<_> = (0..5)
            .map(|i| synthetic_config(6, 2, 3, &[["bto", "normal", "nd"][i % 3]], 50 + i as u64))
            .collect();
        let refs: Vec<&ApproxLutConfig> = configs.iter().collect();
        let reads: Vec<u32> = (0..64).collect();
        let metrics = MetricsRecorder::new();
        let points = signoff_sweep(
            &b,
            ArchStyle::BtoNormalNd,
            &refs,
            EstimatorMode::Prune,
            2,
            1.5,
            &reads,
            &metrics,
        );
        assert_eq!(points.len(), 5);
        assert_eq!(points.iter().filter(|p| p.source == "exact").count(), 2);
        assert!(points.iter().all(|p| p.estimate.is_some()));
        assert!(points.iter().all(|p| p.energy_per_read_fj > 0.0));
        let c = metrics.snapshot().counters;
        assert_eq!(c.estimate_batches, 1);
        assert_eq!(c.estimates_made, 5);
        assert_eq!(c.prune_decisions, 1);
        assert_eq!(c.candidates_pruned, 3);
        // The two exact sign-offs were distinct configs: two cache misses.
        assert_eq!(b.cache.misses(), 2);
    }

    #[test]
    fn trust_mode_builds_nothing() {
        let b = bank(&[ArchStyle::BtoNormal]);
        let configs: Vec<_> = (0..3)
            .map(|i| synthetic_config(6, 2, 3, &["bto", "normal"], 70 + i as u64))
            .collect();
        let refs: Vec<&ApproxLutConfig> = configs.iter().collect();
        let reads: Vec<u32> = (0..32).collect();
        let metrics = MetricsRecorder::new();
        let points = signoff_sweep(
            &b,
            ArchStyle::BtoNormal,
            &refs,
            EstimatorMode::Trust,
            2,
            1.5,
            &reads,
            &metrics,
        );
        assert!(points.iter().all(|p| p.source == "estimated"));
        assert_eq!(b.cache.misses() + b.cache.hits(), 0);
    }

    #[test]
    fn prepare_persists_and_reloads_coefficients() {
        let dir = std::env::temp_dir().join("dalut-signoff-coeffs-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap();
        let dist = InputDistribution::uniform(6).unwrap();
        let lib = CellLibrary::nangate45();
        let mut opts = CalibrationOptions::fast();
        opts.samples = 6;
        opts.reads = 64;
        let first =
            SignoffBank::prepare(&[ArchStyle::BtoNormal], &dist, &lib, &opts, Some(dirs)).unwrap();
        assert!(!first.reports.is_empty());
        assert!(dir.join(COEFFS_FILE).exists());
        // Second prepare loads the persisted store: no recalibration.
        let second =
            SignoffBank::prepare(&[ArchStyle::BtoNormal], &dist, &lib, &opts, Some(dirs)).unwrap();
        assert!(second.reports.is_empty());
        assert_eq!(second.store(), first.store());
        // A store that does not cover the requested family recalibrates.
        let third = SignoffBank::prepare(
            &[ArchStyle::BtoNormal, ArchStyle::Dalta],
            &dist,
            &lib,
            &opts,
            Some(dirs),
        )
        .unwrap();
        assert!(!third.reports.is_empty());
        assert!(third.store().get("DALTA").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
