//! A stderr progress sink for the harness binaries: narrates the
//! coarse-grained search lifecycle (`--progress`) without any terminal
//! dependency. Hot-path events (temperature steps, neighbour batches,
//! kernel invocations, budget ticks) are deliberately ignored — they
//! arrive thousands of times per second and belong in a `--trace` file.

use dalut_core::{Observer, SearchEvent};
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// Prints one stderr line per coarse search-lifecycle event.
#[derive(Debug)]
pub struct StderrProgress {
    start: Instant,
    // Serialises lines from parallel searches so they never interleave.
    lock: Mutex<()>,
}

impl StderrProgress {
    /// Creates a sink; timestamps are relative to this call.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            lock: Mutex::new(()),
        }
    }

    fn line(&self, msg: &str) {
        let t = self.start.elapsed().as_secs_f64();
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        // Best-effort: a closed stderr must not kill the run.
        let _ = writeln!(std::io::stderr(), "[{t:8.2}s] {msg}");
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer for StderrProgress {
    fn on_event(&self, event: &SearchEvent) {
        match event {
            SearchEvent::SearchStarted {
                algorithm,
                inputs,
                outputs,
                rounds,
                seed,
            } => self.line(&format!(
                "{algorithm}: {inputs} in / {outputs} out, {rounds} rounds, seed {seed}"
            )),
            SearchEvent::PhaseStarted { phase } => self.line(&format!("phase {phase}...")),
            SearchEvent::PhaseFinished { phase } => self.line(&format!("phase {phase} done")),
            SearchEvent::RoundFinished { round, med } => {
                self.line(&format!("  round {round}: med {med:.4}"));
            }
            SearchEvent::FaultSweepProgress {
                arch,
                completed,
                total,
            } => self.line(&format!("fault sweep {arch}: {completed}/{total}")),
            SearchEvent::SearchFinished {
                med,
                iterations,
                termination,
            } => self.line(&format!(
                "finished: med {med:.4} after {iterations} iterations ({termination:?})"
            )),
            SearchEvent::CheckpointSaved {
                generation,
                completed,
            } => self.line(&format!(
                "checkpoint saved (generation {generation}, {completed} items done)"
            )),
            SearchEvent::CheckpointLoaded {
                generation,
                completed,
                in_flight,
            } => self.line(&format!(
                "checkpoint loaded (generation {generation}): skipping {completed} done, replaying {in_flight} in flight"
            )),
            SearchEvent::ItemRetried {
                key,
                attempt,
                backoff_ms,
            } => self.line(&format!(
                "retrying {key} (attempt {attempt} failed, backing off {backoff_ms} ms)"
            )),
            SearchEvent::ItemDegraded { key, strategy } => match strategy {
                Some(s) => self.line(&format!("{key} degraded to {s}")),
                None => self.line(&format!("{key} failed — recorded as failed placeholder")),
            },
            SearchEvent::ShutdownRequested { signal } => self.line(&format!(
                "{signal} received — cancelling, will flush checkpoint and partial results"
            )),
            SearchEvent::SloViolated { observed, target } => self.line(&format!(
                "SLO violated: windowed error {observed:.4} > target {target:.4}"
            )),
            SearchEvent::FaultSuspected { jump, threshold } => self.line(&format!(
                "fault suspected: error jump {jump:.4} > threshold {threshold:.4}"
            )),
            SearchEvent::ScrubCompleted { repaired_bits } => {
                self.line(&format!("scrub completed: {repaired_bits} bits repaired"));
            }
            SearchEvent::VariantSwapped { from, to, upgrade } => self.line(&format!(
                "variant {} {from} -> {to}",
                if *upgrade { "upgrade" } else { "relax" }
            )),
            SearchEvent::SloRecovered { observed, target } => self.line(&format!(
                "SLO recovered: windowed error {observed:.4} <= target {target:.4}"
            )),
            // Hot-path events: too frequent for a line-per-event sink.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_sink_accepts_every_event_kind() {
        let sink = StderrProgress::new();
        for event in [
            SearchEvent::SearchStarted {
                algorithm: "bs-sa".into(),
                inputs: 6,
                outputs: 3,
                rounds: 2,
                seed: 1,
            },
            SearchEvent::PhaseStarted {
                phase: "beam".into(),
            },
            SearchEvent::RoundFinished { round: 1, med: 0.5 },
            SearchEvent::TemperatureStep { temperature: 0.18 },
            SearchEvent::BudgetTick { iterations: 3 },
            SearchEvent::FaultSweepProgress {
                arch: "DALTA".into(),
                completed: 2,
                total: 7,
            },
            SearchEvent::CheckpointSaved {
                generation: 3,
                completed: 4,
            },
            SearchEvent::CheckpointLoaded {
                generation: 3,
                completed: 4,
                in_flight: 1,
            },
            SearchEvent::ItemRetried {
                key: "cos/bs-sa/seed1/paper/0".into(),
                attempt: 1,
                backoff_ms: 250,
            },
            SearchEvent::ItemDegraded {
                key: "cos/bs-sa/seed1/paper/0".into(),
                strategy: Some("dalta".into()),
            },
            SearchEvent::ShutdownRequested {
                signal: "SIGINT".into(),
            },
            SearchEvent::SearchFinished {
                med: 0.25,
                iterations: 9,
                termination: dalut_core::Termination::Completed,
            },
        ] {
            sink.on_event(&event);
        }
        assert!(sink.enabled());
    }
}
