//! End-to-end search benchmarks: DALTA vs BS-SA wall-clock on one
//! benchmark function — the runtime comparison behind Table II's Time
//! columns (the paper reports BS-SA at roughly half DALTA's runtime with
//! its `P = 500` vs `P = 1000` budgets).

use criterion::{criterion_group, criterion_main, Criterion};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::InputDistribution;
use dalut_core::{ApproxLutBuilder, ArchPolicy, BsSaParams, DaltaParams, SearchParams};

fn scaled_search(n: usize) -> SearchParams {
    SearchParams {
        bound_size: (n * 9 + 8) / 16,
        rounds: 2,
        initial_patterns: 6,
        threads: 1,
        seed: 3,
    }
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    group.sample_size(10);
    let n = 8;
    let target = Benchmark::Cos.table(Scale::Reduced(n)).unwrap();
    let dist = InputDistribution::uniform(n).unwrap();

    // Budgets in the paper's 2:1 ratio (P = 1000 vs 500).
    let dalta = DaltaParams {
        search: scaled_search(n),
        partition_limit: 24,
    };
    let bssa = BsSaParams {
        search: scaled_search(n),
        partition_limit: 12,
        beam_width: 3,
        neighbors: 5,
        initial_temp: 0.2,
        alpha: 0.9,
        sa_processes: 2,
        stall_limit: 3,
        round1_fill: dalut_decomp::LsbFill::Predictive,
    };

    group.bench_function("dalta_cos8", |b| {
        b.iter(|| {
            ApproxLutBuilder::new(&target)
                .distribution(dist.clone())
                .dalta(dalta)
                .run()
                .unwrap()
        })
    });
    let bssa_run = |policy: ArchPolicy| {
        ApproxLutBuilder::new(&target)
            .distribution(dist.clone())
            .bs_sa(bssa)
            .policy(policy)
            .run()
            .unwrap()
    };
    group.bench_function("bssa_cos8", |b| b.iter(|| bssa_run(ArchPolicy::NormalOnly)));
    group.bench_function("bssa_cos8_nd_policy", |b| {
        b.iter(|| bssa_run(ArchPolicy::bto_normal_nd_paper()))
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
