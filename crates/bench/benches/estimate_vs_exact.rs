//! Closed-form estimation vs exact sign-off at the paper's working
//! point (n = 16, b = 9): the per-candidate cost the `--estimator prune`
//! flow avoids for every pruned configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use dalut_boolfn::InputDistribution;
use dalut_est::doe::synthetic_config;
use dalut_est::ResourceEstimator;
use dalut_hw::{build_approx_lut, characterize, ArchStyle};
use dalut_netlist::CellLibrary;

fn bench_estimate_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_vs_exact");
    group.sample_size(10);
    let (n, m, b) = (16usize, 16usize, 9usize);
    let cfg = synthetic_config(n, m, b, &["bto", "normal", "nd"], 1);
    let dist = InputDistribution::uniform(n).unwrap();
    let lib = CellLibrary::nangate45();
    let est = ResourceEstimator::new(ArchStyle::BtoNormalNd, dist);
    let clock = est.estimate(&cfg).unwrap().critical_path_ns * 1.05;
    let reads: Vec<u32> = (0..256u32)
        .map(|i| i.wrapping_mul(2_654_435_761) & 0xFFFF)
        .collect();

    group.bench_function("estimate_16_9", |bch| {
        bch.iter(|| est.estimate(&cfg).unwrap())
    });
    group.bench_function("exact_signoff_16_9", |bch| {
        bch.iter(|| {
            let inst = build_approx_lut(&cfg, ArchStyle::BtoNormalNd).unwrap();
            characterize(&inst, &reads, &lib, clock).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_estimate_vs_exact);
criterion_main!(benches);
