//! Criterion micro-benchmarks of the `OptForPart` kernel — the hot loop
//! both search algorithms spend most of their runtime in (paper §V-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::{InputDistribution, Partition};
use dalut_decomp::{
    bit_costs, opt_for_part, opt_for_part_bto, opt_for_part_nd, opt_for_part_ref, LsbFill,
    OptParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_opt_for_part(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_for_part");
    group.sample_size(20);
    for n in [8usize, 10, 12] {
        let target = Benchmark::Cos.table(Scale::Reduced(n)).unwrap();
        let dist = InputDistribution::uniform(n).unwrap();
        let costs = bit_costs(&target, &target, n - 1, &dist, LsbFill::Accurate).unwrap();
        let b = (n * 9 + 8) / 16;
        let mut rng = StdRng::seed_from_u64(1);
        let part = Partition::random(n, b, &mut rng);

        group.bench_with_input(BenchmarkId::new("normal_z8", n), &n, |bench, _| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                opt_for_part(
                    &costs,
                    part,
                    OptParams {
                        restarts: 8,
                        max_iters: 64,
                    },
                    &mut rng,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("bto", n), &n, |bench, _| {
            bench.iter(|| opt_for_part_bto(&costs, part))
        });
        group.bench_with_input(BenchmarkId::new("nd_z8", n), &n, |bench, _| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                opt_for_part_nd(
                    &costs,
                    part,
                    OptParams {
                        restarts: 8,
                        max_iters: 64,
                    },
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

/// Fast bit-packed kernel vs the retained reference kernel at the paper's
/// working point: `Z = 30` restarts (`OptParams::default`) and the paper's
/// `b = 9` bound-set size on a 16-input function (a 128 × 512 chart) — the
/// speedup acceptance gate of the kernel rewrite.
fn bench_fast_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_fast_vs_ref");
    group.sample_size(20);
    let opt = OptParams::default();
    for (n, b) in [(10usize, 6usize), (16, 9)] {
        let target = Benchmark::Cos.table(Scale::Reduced(n)).unwrap();
        let dist = InputDistribution::uniform(n).unwrap();
        let costs = bit_costs(&target, &target, n - 1, &dist, LsbFill::Accurate).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let part = Partition::random(n, b, &mut rng);

        group.bench_with_input(BenchmarkId::new("fast", format!("b{b}")), &b, |bench, _| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                opt_for_part(&costs, part, opt, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("ref", format!("b{b}")), &b, |bench, _| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                opt_for_part_ref(&costs, part, opt, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_bit_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_costs");
    group.sample_size(30);
    let target = Benchmark::Multiplier.table(Scale::Reduced(12)).unwrap();
    let dist = InputDistribution::uniform(12).unwrap();
    for fill in [LsbFill::FromApprox, LsbFill::Accurate, LsbFill::Predictive] {
        group.bench_with_input(
            BenchmarkId::new("fill", format!("{fill:?}")),
            &fill,
            |bench, &fill| bench.iter(|| bit_costs(&target, &target, 6, &dist, fill).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_opt_for_part,
    bench_fast_vs_reference,
    bench_bit_costs
);
criterion_main!(benches);
