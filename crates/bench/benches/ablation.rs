//! Ablation benchmarks for the design decisions DESIGN.md §6 calls out:
//!
//! 1. shared partition-independent cost arrays vs recomputing per
//!    partition (the implementation's central performance lever);
//! 2. restart count `Z` sweep for the alternating optimisation;
//! 3. predictive-LSB cost model vs DALTA's accurate fill (quality is
//!    studied in tests/experiments; here we show the models cost the
//!    same, i.e. the accuracy win is free).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::{InputDistribution, Partition, TruthTable};
use dalut_decomp::{bit_costs, opt_for_part, LsbFill, OptParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> (TruthTable, InputDistribution, Vec<Partition>) {
    let n = 10;
    let target = Benchmark::Ln.table(Scale::Reduced(n)).unwrap();
    let dist = InputDistribution::uniform(n).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let parts: Vec<Partition> = (0..8).map(|_| Partition::random(n, 6, &mut rng)).collect();
    (target, dist, parts)
}

/// Ablation 1: cost arrays shared across partitions vs recomputed.
fn bench_cost_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cost_sharing");
    group.sample_size(10);
    let (target, dist, parts) = fixture();
    let opt = OptParams {
        restarts: 6,
        max_iters: 64,
    };

    group.bench_function("shared_costs_8_partitions", |b| {
        b.iter(|| {
            let costs = bit_costs(&target, &target, 5, &dist, LsbFill::Accurate).unwrap();
            let mut rng = StdRng::seed_from_u64(9);
            parts
                .iter()
                .map(|&p| opt_for_part(&costs, p, opt, &mut rng).unwrap().0)
                .sum::<f64>()
        })
    });
    group.bench_function("recomputed_costs_8_partitions", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            parts
                .iter()
                .map(|&p| {
                    // What a naive implementation does: rebuild the cost
                    // model for every candidate partition.
                    let costs = bit_costs(&target, &target, 5, &dist, LsbFill::Accurate).unwrap();
                    opt_for_part(&costs, p, opt, &mut rng).unwrap().0
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

/// Ablation 2: restart count Z.
fn bench_restarts(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_restarts");
    group.sample_size(15);
    let (target, dist, parts) = fixture();
    let costs = bit_costs(&target, &target, 5, &dist, LsbFill::Accurate).unwrap();
    for z in [1usize, 8, 30] {
        group.bench_with_input(BenchmarkId::new("z", z), &z, |b, &z| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                opt_for_part(
                    &costs,
                    parts[0],
                    OptParams {
                        restarts: z,
                        max_iters: 64,
                    },
                    &mut rng,
                )
                .unwrap()
                .0
            })
        });
    }
    group.finish();
}

/// Ablation 3: LSB-fill model cost parity.
fn bench_fill_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fill_models");
    group.sample_size(20);
    let (target, dist, _) = fixture();
    for (name, fill) in [
        ("accurate_dalta", LsbFill::Accurate),
        ("predictive_bssa", LsbFill::Predictive),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| bit_costs(&target, &target, 5, &dist, fill).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cost_sharing,
    bench_restarts,
    bench_fill_models
);
criterion_main!(benches);
