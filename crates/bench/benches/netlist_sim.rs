//! Netlist-substrate benchmarks: simulation throughput and analysis cost
//! on DFF-RAM LUT structures (the building block every Fig. 5 energy
//! number is measured on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dalut_bench::setup::round_in_w;
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::InputDistribution;
use dalut_core::{ApproxLutBuilder, ArchPolicy, BsSaParams, DaltaParams, NoopObserver};
use dalut_hw::lut::dff_lut;
use dalut_hw::{
    build_approx_lut, build_round_in, build_round_out, ArchInstance, ArchStyle, SimOptions,
    CHUNK_CYCLES,
};
use dalut_netlist::{
    area_um2, critical_path_ns, BatchSimulator, CellLibrary, Netlist, SimBackend, Simulator, LANES,
    ROOT_DOMAIN,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_lut(addr_bits: usize) -> (Netlist, Vec<(dalut_netlist::NetId, bool)>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut nl = Netlist::new("lut");
    let addr = nl.input_bus("a", addr_bits);
    let contents: Vec<bool> = (0..1usize << addr_bits).map(|_| rng.random()).collect();
    let lut = dff_lut(&mut nl, &contents, &addr, ROOT_DOMAIN);
    nl.output("y", lut.output);
    (nl, lut.presets)
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_sim");
    group.sample_size(20);
    for addr_bits in [6usize, 8, 10] {
        let (nl, presets) = build_lut(addr_bits);
        group.bench_with_input(
            BenchmarkId::new("reads_256", addr_bits),
            &addr_bits,
            |b, &bits| {
                b.iter(|| {
                    let mut sim = Simulator::new(&nl).unwrap();
                    for &(q, v) in &presets {
                        sim.preset_dff(q, v).unwrap();
                    }
                    let mut acc = 0u64;
                    for i in 0..256u64 {
                        acc ^= sim.eval_word(i % (1 << bits));
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

/// Scalar one-cycle-at-a-time simulation vs the 64-way bit-parallel
/// [`BatchSimulator`] on the same LUT and read trace — the engines the
/// power/accuracy sign-off path chooses between.
fn bench_fast_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_fast_vs_scalar");
    group.sample_size(20);
    const CYCLES: usize = 1024;
    for addr_bits in [6usize, 8, 10] {
        let (nl, presets) = build_lut(addr_bits);
        let mask = (1u64 << addr_bits) - 1;
        let reads: Vec<u64> = (0..CYCLES as u64).map(|i| i & mask).collect();
        group.throughput(Throughput::Elements(CYCLES as u64));
        group.bench_with_input(BenchmarkId::new("scalar", addr_bits), &addr_bits, |b, _| {
            b.iter(|| {
                let mut sim = Simulator::new(&nl).unwrap();
                for &(q, v) in &presets {
                    sim.preset_dff(q, v).unwrap();
                }
                let mut acc = 0u64;
                for &x in &reads {
                    acc ^= sim.eval_word(x);
                }
                acc
            })
        });
        group.bench_with_input(
            BenchmarkId::new("batched", addr_bits),
            &addr_bits,
            |b, &bits| {
                b.iter(|| {
                    let mut sim = BatchSimulator::new(&nl).unwrap();
                    for &(q, v) in &presets {
                        sim.preset_dff(q, v).unwrap();
                    }
                    // Pack 64 successive reads into one word per address
                    // bit, simulate the block, fold the output word.
                    let mut in_words = vec![0u64; bits];
                    let mut out_words = [0u64; 1];
                    let mut acc = 0u64;
                    for block in reads.chunks(LANES) {
                        for (bit, word) in in_words.iter_mut().enumerate() {
                            *word = 0;
                            for (lane, &x) in block.iter().enumerate() {
                                *word |= ((x >> bit) & 1) << lane;
                            }
                        }
                        sim.step_block(&in_words, block.len(), &mut out_words)
                            .expect("well-formed block");
                        acc ^= out_words[0];
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

/// The five Fig. 5 architectures at a reduced width, found with the
/// cheap `fast()` parameter sets — configuration quality is irrelevant
/// here, only netlist shape matters.
fn fig5_instances() -> Vec<(&'static str, ArchInstance)> {
    let scale_bits = 6usize;
    let target = Benchmark::Cos
        .table(Scale::Reduced(scale_bits))
        .expect("benchmark builds");
    let n = target.inputs();
    let dist = InputDistribution::uniform(n).expect("valid width");
    let dalta = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .dalta(DaltaParams::fast())
        .run()
        .expect("search");
    let search = |policy: ArchPolicy| {
        ApproxLutBuilder::new(&target)
            .distribution(dist.clone())
            .bs_sa(BsSaParams::fast())
            .policy(policy)
            .run()
            .expect("search")
    };
    let bn = search(ArchPolicy::bto_normal_paper());
    let bnnd = search(ArchPolicy::bto_normal_nd_paper());
    vec![
        ("RoundOut", build_round_out(&target, 1)),
        ("RoundIn", build_round_in(&target, round_in_w(n))),
        (
            "DALTA",
            build_approx_lut(&dalta.config, ArchStyle::Dalta).expect("build"),
        ),
        (
            "BTO-Normal",
            build_approx_lut(&bn.config, ArchStyle::BtoNormal).expect("build"),
        ),
        (
            "BTO-Normal-ND",
            build_approx_lut(&bnnd.config, ArchStyle::BtoNormalNd).expect("build"),
        ),
    ]
}

/// The compiled wide engines (64/256/512-bit words) against each other
/// and the block-parallel chunked path on the five Fig. 5
/// architectures — the engines `--sim-backend` chooses between. Every
/// variant returns bit-identical outputs and power; only speed differs.
fn bench_wide_vs_u64(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_wide_vs_u64");
    group.sample_size(10);
    const CYCLES: usize = 1024;
    let lib = CellLibrary::nangate45();
    for (name, inst) in fig5_instances() {
        let n = inst.inputs();
        let mut rng = StdRng::seed_from_u64(5);
        let reads: Vec<u32> = (0..CYCLES)
            .map(|_| rng.random_range(0..(1u32 << n)))
            .collect();
        let clock = critical_path_ns(inst.netlist(), &lib).expect("acyclic") * 1.05;
        group.throughput(Throughput::Elements(CYCLES as u64));
        let engines = SimBackend::all_wide()
            .into_iter()
            .map(|backend| {
                (
                    backend.to_string(),
                    SimOptions {
                        backend,
                        threads: 1,
                        chunk_cycles: CHUNK_CYCLES,
                    },
                )
            })
            // Chunked: small chunks so 1024 reads split across workers.
            .chain(std::iter::once((
                "chunked".to_string(),
                SimOptions {
                    backend: SimBackend::Auto,
                    threads: 2,
                    chunk_cycles: 128,
                },
            )));
        for (engine, opts) in engines {
            group.bench_with_input(BenchmarkId::new(engine, name), &opts, |b, opts| {
                b.iter(|| {
                    inst.measure_with(&reads, &lib, clock, opts, &NoopObserver)
                        .expect("sim")
                })
            });
        }
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_analysis");
    group.sample_size(20);
    let lib = CellLibrary::nangate45();
    let (nl, _) = build_lut(10);
    group.bench_function("critical_path_1k_lut", |b| {
        b.iter(|| critical_path_ns(&nl, &lib).unwrap())
    });
    group.bench_function("area_1k_lut", |b| b.iter(|| area_um2(&nl, &lib)));
    group.bench_function("topo_order_1k_lut", |b| b.iter(|| nl.topo_order().unwrap()));
    group.finish();
}

fn bench_opt(c: &mut Criterion) {
    use dalut_netlist::{equivalent_random, optimize};
    let mut group = c.benchmark_group("netlist_opt");
    group.sample_size(20);
    // A routing-heavy netlist: static mux trees that fold to wires.
    let build = || {
        let mut nl = Netlist::new("routed");
        let ins = nl.input_bus("x", 8);
        for j in 0..8usize {
            let sel: Vec<_> = (0..3).map(|b| nl.constant((j >> b) & 1 == 1)).collect();
            let y = nl.mux_tree(&ins, &sel);
            nl.output(format!("y[{j}]"), y);
        }
        nl
    };
    let nl = build();
    group.bench_function("optimize_static_crossbar", |b| b.iter(|| optimize(&nl)));
    let (opt, _) = optimize(&nl);
    group.bench_function("equiv_random_64", |b| {
        b.iter(|| equivalent_random(&nl, &opt, 64, 1).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sim,
    bench_fast_vs_scalar,
    bench_wide_vs_u64,
    bench_analysis,
    bench_opt
);
criterion_main!(benches);
