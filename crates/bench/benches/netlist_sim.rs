//! Netlist-substrate benchmarks: simulation throughput and analysis cost
//! on DFF-RAM LUT structures (the building block every Fig. 5 energy
//! number is measured on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dalut_hw::lut::dff_lut;
use dalut_netlist::{
    area_um2, critical_path_ns, BatchSimulator, CellLibrary, Netlist, Simulator, LANES, ROOT_DOMAIN,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_lut(addr_bits: usize) -> (Netlist, Vec<(dalut_netlist::NetId, bool)>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut nl = Netlist::new("lut");
    let addr = nl.input_bus("a", addr_bits);
    let contents: Vec<bool> = (0..1usize << addr_bits).map(|_| rng.random()).collect();
    let lut = dff_lut(&mut nl, &contents, &addr, ROOT_DOMAIN);
    nl.output("y", lut.output);
    (nl, lut.presets)
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_sim");
    group.sample_size(20);
    for addr_bits in [6usize, 8, 10] {
        let (nl, presets) = build_lut(addr_bits);
        group.bench_with_input(
            BenchmarkId::new("reads_256", addr_bits),
            &addr_bits,
            |b, &bits| {
                b.iter(|| {
                    let mut sim = Simulator::new(&nl).unwrap();
                    for &(q, v) in &presets {
                        sim.preset_dff(q, v).unwrap();
                    }
                    let mut acc = 0u64;
                    for i in 0..256u64 {
                        acc ^= sim.eval_word(i % (1 << bits));
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

/// Scalar one-cycle-at-a-time simulation vs the 64-way bit-parallel
/// [`BatchSimulator`] on the same LUT and read trace — the engines the
/// power/accuracy sign-off path chooses between.
fn bench_fast_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_fast_vs_scalar");
    group.sample_size(20);
    const CYCLES: usize = 1024;
    for addr_bits in [6usize, 8, 10] {
        let (nl, presets) = build_lut(addr_bits);
        let mask = (1u64 << addr_bits) - 1;
        let reads: Vec<u64> = (0..CYCLES as u64).map(|i| i & mask).collect();
        group.throughput(Throughput::Elements(CYCLES as u64));
        group.bench_with_input(BenchmarkId::new("scalar", addr_bits), &addr_bits, |b, _| {
            b.iter(|| {
                let mut sim = Simulator::new(&nl).unwrap();
                for &(q, v) in &presets {
                    sim.preset_dff(q, v).unwrap();
                }
                let mut acc = 0u64;
                for &x in &reads {
                    acc ^= sim.eval_word(x);
                }
                acc
            })
        });
        group.bench_with_input(
            BenchmarkId::new("batched", addr_bits),
            &addr_bits,
            |b, &bits| {
                b.iter(|| {
                    let mut sim = BatchSimulator::new(&nl).unwrap();
                    for &(q, v) in &presets {
                        sim.preset_dff(q, v).unwrap();
                    }
                    // Pack 64 successive reads into one word per address
                    // bit, simulate the block, fold the output word.
                    let mut in_words = vec![0u64; bits];
                    let mut out_words = [0u64; 1];
                    let mut acc = 0u64;
                    for block in reads.chunks(LANES) {
                        for (bit, word) in in_words.iter_mut().enumerate() {
                            *word = 0;
                            for (lane, &x) in block.iter().enumerate() {
                                *word |= ((x >> bit) & 1) << lane;
                            }
                        }
                        sim.step_block(&in_words, block.len(), &mut out_words);
                        acc ^= out_words[0];
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_analysis");
    group.sample_size(20);
    let lib = CellLibrary::nangate45();
    let (nl, _) = build_lut(10);
    group.bench_function("critical_path_1k_lut", |b| {
        b.iter(|| critical_path_ns(&nl, &lib).unwrap())
    });
    group.bench_function("area_1k_lut", |b| b.iter(|| area_um2(&nl, &lib)));
    group.bench_function("topo_order_1k_lut", |b| b.iter(|| nl.topo_order().unwrap()));
    group.finish();
}

fn bench_opt(c: &mut Criterion) {
    use dalut_netlist::{equivalent_random, optimize};
    let mut group = c.benchmark_group("netlist_opt");
    group.sample_size(20);
    // A routing-heavy netlist: static mux trees that fold to wires.
    let build = || {
        let mut nl = Netlist::new("routed");
        let ins = nl.input_bus("x", 8);
        for j in 0..8usize {
            let sel: Vec<_> = (0..3).map(|b| nl.constant((j >> b) & 1 == 1)).collect();
            let y = nl.mux_tree(&ins, &sel);
            nl.output(format!("y[{j}]"), y);
        }
        nl
    };
    let nl = build();
    group.bench_function("optimize_static_crossbar", |b| b.iter(|| optimize(&nl)));
    let (opt, _) = optimize(&nl);
    group.bench_function("equiv_random_64", |b| {
        b.iter(|| equivalent_random(&nl, &opt, 64, 1).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sim,
    bench_fast_vs_scalar,
    bench_analysis,
    bench_opt
);
criterion_main!(benches);
