//! Architecture-measurement benchmarks: building and characterising the
//! three decomposition architectures on one configuration (the inner
//! loop of the Fig. 5 harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dalut_benchfns::{Benchmark, Scale};
use dalut_boolfn::InputDistribution;
use dalut_core::{ApproxLutBuilder, ApproxLutConfig, ArchPolicy, BsSaParams};
use dalut_hw::{build_approx_lut, characterize, ArchStyle};
use dalut_netlist::CellLibrary;

fn config_for(policy: ArchPolicy) -> ApproxLutConfig {
    let n = 8;
    let target = Benchmark::Exp.table(Scale::Reduced(n)).unwrap();
    let dist = InputDistribution::uniform(n).unwrap();
    let mut params = BsSaParams::fast();
    params.search.bound_size = 4;
    ApproxLutBuilder::new(&target)
        .distribution(dist)
        .bs_sa(params)
        .policy(policy)
        .run()
        .unwrap()
        .config
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_build");
    group.sample_size(20);
    let normal = config_for(ArchPolicy::NormalOnly);
    let nd = config_for(ArchPolicy::bto_normal_nd_paper());
    group.bench_function("dalta_arch", |b| {
        b.iter(|| build_approx_lut(&normal, ArchStyle::Dalta).unwrap())
    });
    group.bench_function("bto_normal_arch", |b| {
        b.iter(|| build_approx_lut(&normal, ArchStyle::BtoNormal).unwrap())
    });
    group.bench_function("bto_normal_nd_arch", |b| {
        b.iter(|| build_approx_lut(&nd, ArchStyle::BtoNormalNd).unwrap())
    });
    group.finish();
}

fn bench_characterize(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_characterize");
    group.sample_size(10);
    let lib = CellLibrary::nangate45();
    let cfg = config_for(ArchPolicy::bto_normal_nd_paper());
    let inst = build_approx_lut(&cfg, ArchStyle::BtoNormalNd).unwrap();
    for reads in [256usize, 1024] {
        let trace: Vec<u32> = (0..reads as u32).map(|i| (i * 37) % 256).collect();
        group.bench_with_input(BenchmarkId::new("reads", reads), &reads, |b, _| {
            b.iter(|| characterize(&inst, &trace, &lib, 1.0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_characterize);
criterion_main!(benches);
