//! Pre-compiled configuration variants and the ordered bank the
//! controller hot-swaps between.

use crate::error::RuntimeError;
use dalut_core::ApproxLutConfig;
use dalut_hw::{build_approx_lut, characterize, ArchInstance, ArchStyle};
use dalut_netlist::CellLibrary;

/// One pre-compiled operating point: an [`ApproxLutConfig`] built into a
/// live [`ArchInstance`], annotated with its nominal error and measured
/// serving energy.
///
/// Variants destined for the same [`VariantBank`] must be built in the
/// same [`ArchStyle`] so a hot-swap is a pure configuration-memory
/// rewrite — [`ArchStyle::BtoNormalNd`] realises every
/// [`BitMode`](dalut_core::BitMode) and is the natural choice.
#[derive(Debug)]
pub struct Variant {
    label: String,
    config: ApproxLutConfig,
    expected_med: f64,
    energy_per_read_fj: f64,
    inst: ArchInstance,
}

impl Variant {
    /// Builds a variant with a caller-supplied energy figure (e.g. from a
    /// previous characterisation run or an estimator).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Hw`] if the configuration cannot be built
    /// in `style`, or [`RuntimeError::InvalidBank`] if the annotations
    /// are not finite and non-negative.
    pub fn new(
        label: impl Into<String>,
        config: ApproxLutConfig,
        style: ArchStyle,
        expected_med: f64,
        energy_per_read_fj: f64,
    ) -> Result<Self, RuntimeError> {
        if !(expected_med.is_finite() && expected_med >= 0.0) {
            return Err(RuntimeError::InvalidBank {
                detail: format!("expected_med {expected_med} must be finite and non-negative"),
            });
        }
        if !(energy_per_read_fj.is_finite() && energy_per_read_fj >= 0.0) {
            return Err(RuntimeError::InvalidBank {
                detail: format!(
                    "energy_per_read_fj {energy_per_read_fj} must be finite and non-negative"
                ),
            });
        }
        let inst = build_approx_lut(&config, style)?;
        Ok(Self {
            label: label.into(),
            config,
            expected_med,
            energy_per_read_fj,
            inst,
        })
    }

    /// Builds a variant and measures its serving energy by simulating
    /// `reads` against `lib` at `clock_period_ns` — the same measurement
    /// [`characterize`] reports in the paper-reproduction benches.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Hw`] if the configuration cannot be
    /// built, or [`RuntimeError::Netlist`] if it cannot be simulated.
    pub fn characterized(
        label: impl Into<String>,
        config: ApproxLutConfig,
        style: ArchStyle,
        expected_med: f64,
        lib: &CellLibrary,
        clock_period_ns: f64,
        reads: &[u32],
    ) -> Result<Self, RuntimeError> {
        let inst = build_approx_lut(&config, style)?;
        let report = characterize(&inst, reads, lib, clock_period_ns)?;
        Self::new(
            label,
            config,
            style,
            expected_med,
            report.energy_per_read_fj,
        )
    }

    /// Display label (e.g. `"bto7"` or `"pareto-2"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The logical configuration this variant realises.
    pub fn config(&self) -> &ApproxLutConfig {
        &self.config
    }

    /// Nominal mean error distance under the design distribution.
    pub fn expected_med(&self) -> f64 {
        self.expected_med
    }

    /// Measured (or estimated) serving energy per read, in fJ.
    pub fn energy_per_read_fj(&self) -> f64 {
        self.energy_per_read_fj
    }

    /// The live hardware instance.
    pub fn instance(&self) -> &ArchInstance {
        &self.inst
    }
}

/// An ordered ladder of variants, cheapest-and-least-accurate first.
///
/// The bank is the controller's reconfiguration space: index `i + 1`
/// must cost strictly more energy per read and promise no worse nominal
/// error than index `i`, so "upgrade" always means "spend energy to buy
/// accuracy" and "relax" the reverse.
#[derive(Debug)]
pub struct VariantBank {
    variants: Vec<Variant>,
}

impl VariantBank {
    /// Validates the ladder and wraps it.
    ///
    /// Variants may differ in stored-bit footprint (a partition change
    /// resizes the tables); a hot-swap is modelled as a full rewrite of
    /// the destination variant's configuration memory, so the swap cost
    /// is always well-defined.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidBank`] if `variants` is empty, the
    /// interfaces disagree, the energy ladder is not strictly
    /// increasing, or the nominal error is not non-increasing.
    pub fn new(variants: Vec<Variant>) -> Result<Self, RuntimeError> {
        let bad = |detail: String| Err(RuntimeError::InvalidBank { detail });
        let Some(first) = variants.first() else {
            return bad("a variant bank needs at least one variant".into());
        };
        let (n, m) = (first.inst.inputs(), first.inst.outputs());
        for pair in variants.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if b.inst.inputs() != n || b.inst.outputs() != m {
                return bad(format!(
                    "variant {} has interface {}x{}, expected {}x{}",
                    b.label,
                    b.inst.inputs(),
                    b.inst.outputs(),
                    n,
                    m
                ));
            }
            if b.energy_per_read_fj <= a.energy_per_read_fj {
                return bad(format!(
                    "energy must strictly increase along the ladder: {} ({} fJ) after {} ({} fJ)",
                    b.label, b.energy_per_read_fj, a.label, a.energy_per_read_fj
                ));
            }
            if b.expected_med > a.expected_med {
                return bad(format!(
                    "nominal error must not increase along the ladder: {} ({}) after {} ({})",
                    b.label, b.expected_med, a.label, a.expected_med
                ));
            }
        }
        Ok(Self { variants })
    }

    /// Number of variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Always `false` — construction rejects empty banks.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The variant at ladder position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> &Variant {
        &self.variants[index]
    }

    /// All variants, cheapest first.
    pub fn variants(&self) -> &[Variant] {
        &self.variants
    }
}
