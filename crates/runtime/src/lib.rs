//! # dalut-runtime
//!
//! Self-correcting runtime reconfiguration for the paper's approximate
//! LUT architectures: an online controller that keeps a *live* instance
//! inside an error service-level objective while it is being served —
//! under workload drift and storage faults — by exploiting exactly the
//! reconfigurability the DATE 2023 architecture exists to provide.
//!
//! The pieces:
//!
//! * [`ErrorSlo`] — the objective plus the detection/hysteresis policy
//!   (window, dwell, fault-jump threshold, relax band);
//! * [`Variant`] / [`VariantBank`] — pre-compiled operating points on
//!   one physical fabric, ordered cheapest-first, each annotated with
//!   nominal error and measured serving energy;
//! * [`Controller`] — per epoch, samples reads from the live input
//!   distribution, measures served error on the 64-way batched
//!   simulator against the golden target, and reacts: *scrub* (restore
//!   corrupted configuration bits through the writable-DFF path),
//!   *upgrade* (hot-swap to a more accurate variant on SLO violation),
//!   *relax* (swap back down once margin recovers). Every detection and
//!   transition is emitted as a
//!   [`SearchEvent`](dalut_core::SearchEvent), so the existing
//!   observer, metrics and progress stack narrates and counts the
//!   controller for free.
//!
//! The controller is deterministic given its RNG: it holds no
//! wall-clock state, so fixed-seed fleets replay bit-identically —
//! which is what makes the `fleetsim` bench's kill+resume guarantee and
//! the `controller_behavior` test suite possible.
//!
//! ## Example
//!
//! ```
//! use dalut_boolfn::{InputDistribution, TruthTable};
//! use dalut_core::{ApproxLutBuilder, BsSaParams, NoopObserver};
//! use dalut_hw::ArchStyle;
//! use dalut_runtime::{Controller, ErrorSlo, Variant, VariantBank};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let target = TruthTable::from_fn(6, 3, |x| (x >> 3) ^ (x & 7)).unwrap();
//! let outcome = ApproxLutBuilder::new(&target)
//!     .bs_sa(BsSaParams::fast())
//!     .run()
//!     .unwrap();
//! // A one-variant bank: monitoring only, no swap headroom.
//! let v = Variant::new("only", outcome.config, ArchStyle::BtoNormal, outcome.med, 1.0).unwrap();
//! let bank = VariantBank::new(vec![v]).unwrap();
//! let dist = InputDistribution::uniform(6).unwrap();
//! let mut ctl = Controller::new(&target, dist, &bank, 0, ErrorSlo::new(4.0)).unwrap();
//! let mut rng = StdRng::seed_from_u64(7);
//! let report = ctl.step(&mut rng, &NoopObserver).unwrap();
//! assert_eq!(report.epoch, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod controller;
pub mod error;
pub mod slo;
pub mod variant;

pub use controller::{ControlAction, ControlTotals, Controller, EpochReport};
pub use error::RuntimeError;
pub use slo::ErrorSlo;
pub use variant::{Variant, VariantBank};
