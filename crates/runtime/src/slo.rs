//! The error service-level objective and controller policy knobs.

use crate::error::RuntimeError;
use serde::{Deserialize, Serialize};

/// The error SLO a [`Controller`](crate::Controller) enforces, plus the
/// detection and hysteresis policy around it.
///
/// The controller estimates the mean absolute output error once per
/// *epoch* from `samples_per_epoch` reads drawn from the live input
/// distribution, then averages the last `window` epochs. The windowed
/// mean crossing `target` is an SLO violation; an epoch-to-epoch jump
/// above `fault_jump` is treated as a suspected storage fault (drift is
/// gradual, upsets are sudden). `min_dwell` epochs must pass between
/// reconfigurations so one noisy epoch cannot make the controller
/// thrash, and the controller only relaxes to a cheaper variant once the
/// windowed error has fallen below `relax_margin · target` — the
/// hysteresis band that keeps upgrade/relax cycles apart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorSlo {
    /// Maximum acceptable windowed mean absolute error.
    pub target: f64,
    /// Relax only when the windowed error is below `relax_margin · target`
    /// (exclusive band edge, `0 < relax_margin < 1`).
    pub relax_margin: f64,
    /// Number of epochs in the sliding error window (`>= 1`).
    pub window: usize,
    /// Minimum epochs between reconfigurations (dwell-time hysteresis).
    pub min_dwell: usize,
    /// Epoch-to-epoch error jump that flags a suspected fault and
    /// triggers a scrub.
    pub fault_jump: f64,
    /// Reads sampled per epoch for the error estimate (`>= 1`).
    pub samples_per_epoch: usize,
    /// Reads served per epoch, for the energy ledger.
    pub epoch_reads: u64,
    /// Energy charged per single-bit configuration write (fJ), for
    /// scrubs and hot-swaps.
    pub write_energy_fj: f64,
}

impl ErrorSlo {
    /// A policy with conventional defaults for the given error target:
    /// half-target relax band, 4-epoch window, 2-epoch dwell, fault jump
    /// at `4 · target`, 256 samples and 1024 served reads per epoch,
    /// 10 fJ per configuration write.
    pub fn new(target: f64) -> Self {
        Self {
            target,
            relax_margin: 0.5,
            window: 4,
            min_dwell: 2,
            fault_jump: 4.0 * target,
            samples_per_epoch: 256,
            epoch_reads: 1024,
            write_energy_fj: 10.0,
        }
    }

    /// Checks every field is in range.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidSlo`] naming the offending field.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        let bad = |detail: String| Err(RuntimeError::InvalidSlo { detail });
        if !(self.target.is_finite() && self.target > 0.0) {
            return bad(format!(
                "target {} must be finite and positive",
                self.target
            ));
        }
        if !(self.relax_margin.is_finite() && self.relax_margin > 0.0 && self.relax_margin < 1.0) {
            return bad(format!(
                "relax_margin {} must lie strictly between 0 and 1",
                self.relax_margin
            ));
        }
        if self.window == 0 {
            return bad("window must hold at least one epoch".into());
        }
        if !(self.fault_jump.is_finite() && self.fault_jump > 0.0) {
            return bad(format!(
                "fault_jump {} must be finite and positive",
                self.fault_jump
            ));
        }
        if self.samples_per_epoch == 0 {
            return bad("samples_per_epoch must be at least 1".into());
        }
        if self.epoch_reads == 0 {
            return bad("epoch_reads must be at least 1".into());
        }
        if !(self.write_energy_fj.is_finite() && self.write_energy_fj >= 0.0) {
            return bad(format!(
                "write_energy_fj {} must be finite and non-negative",
                self.write_energy_fj
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ErrorSlo::new(2.5).validate().is_ok());
    }

    #[test]
    fn each_field_is_checked() {
        let ok = ErrorSlo::new(1.0);
        let cases: Vec<ErrorSlo> = vec![
            ErrorSlo {
                target: 0.0,
                ..ok.clone()
            },
            ErrorSlo {
                target: f64::NAN,
                ..ok.clone()
            },
            ErrorSlo {
                relax_margin: 0.0,
                ..ok.clone()
            },
            ErrorSlo {
                relax_margin: 1.0,
                ..ok.clone()
            },
            ErrorSlo {
                window: 0,
                ..ok.clone()
            },
            ErrorSlo {
                fault_jump: 0.0,
                ..ok.clone()
            },
            ErrorSlo {
                samples_per_epoch: 0,
                ..ok.clone()
            },
            ErrorSlo {
                epoch_reads: 0,
                ..ok.clone()
            },
            ErrorSlo {
                write_energy_fj: -1.0,
                ..ok.clone()
            },
        ];
        for (i, slo) in cases.iter().enumerate() {
            assert!(
                matches!(slo.validate(), Err(RuntimeError::InvalidSlo { .. })),
                "case {i} should be rejected"
            );
        }
        assert!(ok.validate().is_ok());
    }
}
