//! Typed errors for the runtime controller.

use dalut_boolfn::BoolFnError;
use dalut_hw::HwError;
use dalut_netlist::NetlistError;
use std::fmt;

/// Errors raised while building or driving a [`Controller`].
///
/// [`Controller`]: crate::Controller
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// An [`ErrorSlo`](crate::ErrorSlo) field is out of range.
    InvalidSlo {
        /// What was wrong.
        detail: String,
    },
    /// A [`VariantBank`](crate::VariantBank) violates its invariants
    /// (empty, mismatched interfaces, or a non-monotone ladder).
    InvalidBank {
        /// What was wrong.
        detail: String,
    },
    /// A controller request was inconsistent with its configuration
    /// (bad start index, mismatched distribution width, …).
    InvalidRequest {
        /// What was wrong.
        detail: String,
    },
    /// A hardware-model error (building instances, rewriting tables).
    Hw(HwError),
    /// A netlist simulation error.
    Netlist(NetlistError),
    /// A Boolean-function layer error (distributions, truth tables).
    BoolFn(BoolFnError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSlo { detail } => write!(f, "invalid SLO: {detail}"),
            Self::InvalidBank { detail } => write!(f, "invalid variant bank: {detail}"),
            Self::InvalidRequest { detail } => write!(f, "invalid request: {detail}"),
            Self::Hw(e) => write!(f, "hardware error: {e}"),
            Self::Netlist(e) => write!(f, "netlist error: {e}"),
            Self::BoolFn(e) => write!(f, "boolean function error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Hw(e) => Some(e),
            Self::Netlist(e) => Some(e),
            Self::BoolFn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HwError> for RuntimeError {
    fn from(e: HwError) -> Self {
        Self::Hw(e)
    }
}

impl From<NetlistError> for RuntimeError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}

impl From<BoolFnError> for RuntimeError {
    fn from(e: BoolFnError) -> Self {
        Self::BoolFn(e)
    }
}
