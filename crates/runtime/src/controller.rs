//! The online error-SLO controller.

use crate::error::RuntimeError;
use crate::slo::ErrorSlo;
use crate::variant::{Variant, VariantBank};
use dalut_boolfn::{InputDistribution, TruthTable};
use dalut_core::{Observer, SearchEvent};
use dalut_hw::FaultModel;
use dalut_netlist::NetId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What the controller did in one epoch (at most one action per epoch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ControlAction {
    /// Monitoring only.
    None,
    /// A suspected fault triggered a configuration scrub.
    Scrubbed {
        /// Stored bits corrected back to the variant's golden contents.
        repaired_bits: usize,
    },
    /// Hot-swapped to the next, more accurate variant.
    Upgraded {
        /// Label served before the swap.
        from: String,
        /// Label serving after the swap.
        to: String,
    },
    /// Hot-swapped back to the next cheaper variant.
    Relaxed {
        /// Label served before the swap.
        from: String,
        /// Label serving after the swap.
        to: String,
    },
}

/// One epoch of controller telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (0-based, monotonically increasing).
    pub epoch: u64,
    /// This epoch's sampled mean absolute error.
    pub observed_err: f64,
    /// Windowed mean error after folding in this epoch.
    pub window_err: f64,
    /// Whether the windowed error exceeded the SLO target this epoch.
    pub violated: bool,
    /// The action taken (after the measurement).
    pub action: ControlAction,
    /// Ladder index of the variant serving at the end of the epoch.
    pub variant_index: usize,
    /// Label of the variant serving at the end of the epoch.
    pub variant: String,
    /// Configuration bits written this epoch (scrub repairs or a swap).
    pub writes: u64,
    /// Energy charged to this epoch: served reads at the pre-action
    /// variant's per-read energy, plus configuration writes.
    pub energy_fj: f64,
}

/// Running totals across every epoch a controller has stepped.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControlTotals {
    /// Epochs stepped.
    pub epochs: u64,
    /// Epochs whose windowed error violated the SLO.
    pub violated_epochs: u64,
    /// Scrub actions taken.
    pub scrubs: u64,
    /// Stored bits corrected across all scrubs.
    pub bits_repaired: u64,
    /// Upgrade swaps taken.
    pub upgrades: u64,
    /// Relax swaps taken.
    pub relaxes: u64,
    /// Total configuration bits written.
    pub writes: u64,
    /// Total energy charged (fJ).
    pub energy_fj: f64,
    /// Sum of per-epoch observed errors (for the mean).
    pub err_sum: f64,
}

impl ControlTotals {
    /// Fraction of epochs in violation (0 if none stepped).
    pub fn violation_rate(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.violated_epochs as f64 / self.epochs as f64
        }
    }

    /// Mean of the per-epoch observed errors (0 if none stepped).
    pub fn mean_err(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.err_sum / self.epochs as f64
        }
    }
}

/// An online controller wrapping one live approximate-LUT instance.
///
/// Per [`step`](Self::step) the controller samples reads from the live
/// input distribution, measures the served error against the golden
/// target on the batched simulator, and reacts under its
/// [`ErrorSlo`] policy: a sudden error jump is treated as a suspected
/// storage fault and *scrubbed* (the stored bits diff-written back to
/// the serving variant's golden contents); sustained drift above the
/// target *upgrades* to the next, more accurate pre-compiled variant;
/// ample margin *relaxes* back down the ladder. Every transition is
/// emitted as a [`SearchEvent`] so the existing observer/metrics stack
/// counts it.
///
/// The controller holds no wall-clock state — two controllers stepped
/// with equal seeds and scripts produce bit-identical reports.
#[derive(Debug)]
pub struct Controller<'a> {
    target: TruthTable,
    dist: InputDistribution,
    cdf: Vec<f64>,
    bank: &'a VariantBank,
    slo: ErrorSlo,
    current: usize,
    stored: Vec<(NetId, bool)>,
    window: VecDeque<f64>,
    prev_err: Option<f64>,
    dwell: usize,
    epoch: u64,
    in_violation: bool,
    actions_enabled: bool,
    totals: ControlTotals,
}

impl<'a> Controller<'a> {
    /// Attaches a controller to `bank`, serving variant `start` with the
    /// golden configuration loaded.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidSlo`] on a bad policy, or
    /// [`RuntimeError::InvalidRequest`] if `start` is out of range or
    /// `target`/`dist` do not match the bank's interface.
    pub fn new(
        target: &TruthTable,
        dist: InputDistribution,
        bank: &'a VariantBank,
        start: usize,
        slo: ErrorSlo,
    ) -> Result<Self, RuntimeError> {
        slo.validate()?;
        if start >= bank.len() {
            return Err(RuntimeError::InvalidRequest {
                detail: format!(
                    "start index {start} out of range for {} variants",
                    bank.len()
                ),
            });
        }
        let inst = bank.get(start).instance();
        if target.inputs() != inst.inputs() || target.outputs() != inst.outputs() {
            return Err(RuntimeError::InvalidRequest {
                detail: format!(
                    "target is {}x{} but the bank serves {}x{}",
                    target.inputs(),
                    target.outputs(),
                    inst.inputs(),
                    inst.outputs()
                ),
            });
        }
        if dist.inputs() != target.inputs() {
            return Err(RuntimeError::InvalidRequest {
                detail: format!(
                    "distribution covers {} input bits, target has {}",
                    dist.inputs(),
                    target.inputs()
                ),
            });
        }
        let cdf = cumulative(&dist);
        let stored = inst.presets().to_vec();
        Ok(Self {
            target: target.clone(),
            dist,
            cdf,
            bank,
            slo,
            current: start,
            stored,
            window: VecDeque::new(),
            prev_err: None,
            dwell: 0,
            epoch: 0,
            in_violation: false,
            actions_enabled: true,
            totals: ControlTotals::default(),
        })
    }

    /// Enables or disables corrective actions. With actions off the
    /// controller still measures, windows and reports violations — the
    /// "uncontrolled" baseline arm — but never scrubs or swaps, so the
    /// served hardware stays bit-identical to an unmanaged instance.
    #[must_use]
    pub fn with_actions(mut self, enabled: bool) -> Self {
        self.actions_enabled = enabled;
        self
    }

    /// Replaces the live input distribution (workload drift).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidRequest`] on a width mismatch.
    pub fn set_distribution(&mut self, dist: InputDistribution) -> Result<(), RuntimeError> {
        if dist.inputs() != self.target.inputs() {
            return Err(RuntimeError::InvalidRequest {
                detail: format!(
                    "distribution covers {} input bits, target has {}",
                    dist.inputs(),
                    self.target.inputs()
                ),
            });
        }
        self.cdf = cumulative(&dist);
        self.dist = dist;
        Ok(())
    }

    /// Applies a fault model to the *live* stored bits (the copy the
    /// controller serves from), returning how many flipped. The golden
    /// per-variant contents are untouched — that is what scrubbing
    /// restores.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Hw`] if the model's parameters are
    /// invalid.
    pub fn inject(&mut self, model: &FaultModel, rng: &mut StdRng) -> Result<usize, RuntimeError> {
        model.validate()?;
        Ok(model.apply(&mut self.stored, rng))
    }

    /// Diff-writes the stored bits back to the serving variant's golden
    /// contents, returning the number of corrected bits.
    pub fn scrub(&mut self) -> usize {
        let golden = self.bank.get(self.current).instance().presets();
        let mut repaired = 0;
        for (slot, &(q, v)) in self.stored.iter_mut().zip(golden) {
            debug_assert_eq!(slot.0, q, "scrub must target the same DFFs");
            if slot.1 != v {
                slot.1 = v;
                repaired += 1;
            }
        }
        repaired
    }

    /// Number of stored bits currently differing from the serving
    /// variant's golden contents.
    pub fn corrupted_bits(&self) -> usize {
        let golden = self.bank.get(self.current).instance().presets();
        self.stored
            .iter()
            .zip(golden)
            .filter(|(s, g)| s.1 != g.1)
            .count()
    }

    /// Ladder index of the serving variant.
    pub fn current_index(&self) -> usize {
        self.current
    }

    /// The serving variant.
    pub fn current_variant(&self) -> &Variant {
        self.bank.get(self.current)
    }

    /// The policy in force.
    pub fn slo(&self) -> &ErrorSlo {
        &self.slo
    }

    /// Epochs stepped so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Running totals.
    pub fn totals(&self) -> &ControlTotals {
        &self.totals
    }

    /// Exhaustively reads every input through the *live* stored bits —
    /// the bit-exactness oracle for scrub and idleness tests.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Netlist`] if the instance cannot be
    /// simulated.
    pub fn read_all(&self) -> Result<Vec<u32>, RuntimeError> {
        let inst = self.bank.get(self.current).instance();
        let len = 1usize << inst.inputs();
        let reads: Vec<u32> = (0..len as u32).collect();
        Ok(inst.read_sequence_with_presets(&self.stored, &reads)?)
    }

    /// Runs one epoch: sample, measure, detect, react. Returns the
    /// epoch's telemetry; emits [`SearchEvent`]s on the observer for
    /// every detection and transition.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Netlist`] if the serving instance cannot
    /// be simulated.
    pub fn step(
        &mut self,
        rng: &mut StdRng,
        observer: &dyn Observer,
    ) -> Result<EpochReport, RuntimeError> {
        let epoch = self.epoch;
        self.epoch += 1;

        // Measure: sample reads from the live distribution and compare
        // the served outputs against the golden target.
        let samples: Vec<u32> = (0..self.slo.samples_per_epoch)
            .map(|_| self.sample(rng))
            .collect();
        let observed = self.sampled_error(&samples)?;
        let jump = self.prev_err.map_or(0.0, |p| observed - p);
        self.prev_err = Some(observed);
        if self.window.len() == self.slo.window {
            self.window.pop_front();
        }
        self.window.push_back(observed);
        let window_err = self.window.iter().sum::<f64>() / self.window.len() as f64;

        // Detect: violation entry/exit with edge-triggered events.
        let violated = window_err > self.slo.target;
        if observer.enabled() {
            if violated && !self.in_violation {
                observer.on_event(&SearchEvent::SloViolated {
                    observed: window_err,
                    target: self.slo.target,
                });
            }
            if !violated && self.in_violation {
                observer.on_event(&SearchEvent::SloRecovered {
                    observed: window_err,
                    target: self.slo.target,
                });
            }
        }
        self.in_violation = violated;

        // Energy for the epoch's served reads is charged at the variant
        // that actually served them (pre-action).
        let serving_fj =
            self.slo.epoch_reads as f64 * self.bank.get(self.current).energy_per_read_fj();
        let mut writes = 0u64;
        let mut action = ControlAction::None;

        if self.actions_enabled {
            // React, at most once per epoch, in priority order: a sudden
            // jump means the stored bits are suspect — scrub before
            // spending energy on an upgrade the fault would waste.
            if jump > self.slo.fault_jump {
                if observer.enabled() {
                    observer.on_event(&SearchEvent::FaultSuspected {
                        jump,
                        threshold: self.slo.fault_jump,
                    });
                }
                let repaired = self.scrub();
                if observer.enabled() {
                    observer.on_event(&SearchEvent::ScrubCompleted {
                        repaired_bits: repaired,
                    });
                }
                writes += repaired as u64;
                self.totals.scrubs += 1;
                self.totals.bits_repaired += repaired as u64;
                if repaired > 0 {
                    // The measurement described damaged hardware; start
                    // the monitor fresh on the repaired instance.
                    self.reset_monitor();
                    self.dwell = 0;
                    action = ControlAction::Scrubbed {
                        repaired_bits: repaired,
                    };
                } else {
                    // Clean storage: the jump is genuine drift, fall
                    // through to the swap logic below.
                    action = ControlAction::Scrubbed { repaired_bits: 0 };
                }
            }
            let scrub_repaired =
                matches!(action, ControlAction::Scrubbed { repaired_bits } if repaired_bits > 0);
            if !scrub_repaired && violated && self.dwell >= self.slo.min_dwell {
                if self.current + 1 < self.bank.len() {
                    let from = self.bank.get(self.current).label().to_owned();
                    writes += self.swap(self.current + 1);
                    let to = self.bank.get(self.current).label().to_owned();
                    if observer.enabled() {
                        observer.on_event(&SearchEvent::VariantSwapped {
                            from: from.clone(),
                            to: to.clone(),
                            upgrade: true,
                        });
                    }
                    self.totals.upgrades += 1;
                    action = ControlAction::Upgraded { from, to };
                }
            } else if !scrub_repaired
                && !violated
                && matches!(action, ControlAction::None)
                && self.window.len() == self.slo.window
                && self.dwell >= self.slo.min_dwell
                && self.current > 0
                && window_err < self.slo.target * self.slo.relax_margin
            {
                // Relax only after a shadow evaluation: replay this
                // epoch's samples through the cheaper variant's golden
                // configuration and step down only if *it* would also
                // sit inside the hysteresis band on the live workload.
                // (A nominal-error heuristic here thrashes under drift:
                // the design-distribution MED says nothing about the
                // distribution currently being served.)
                let shadow = self.shadow_error(self.current - 1, &samples)?;
                if shadow < self.slo.target * self.slo.relax_margin {
                    let from = self.bank.get(self.current).label().to_owned();
                    writes += self.swap(self.current - 1);
                    let to = self.bank.get(self.current).label().to_owned();
                    if observer.enabled() {
                        observer.on_event(&SearchEvent::VariantSwapped {
                            from: from.clone(),
                            to: to.clone(),
                            upgrade: false,
                        });
                    }
                    self.totals.relaxes += 1;
                    action = ControlAction::Relaxed { from, to };
                }
            }
        }
        match action {
            ControlAction::None | ControlAction::Scrubbed { repaired_bits: 0 } => self.dwell += 1,
            _ => {}
        }

        let energy_fj = serving_fj + writes as f64 * self.slo.write_energy_fj;
        self.totals.epochs += 1;
        self.totals.violated_epochs += u64::from(violated);
        self.totals.writes += writes;
        self.totals.energy_fj += energy_fj;
        self.totals.err_sum += observed;

        Ok(EpochReport {
            epoch,
            observed_err: observed,
            window_err,
            violated,
            action,
            variant_index: self.current,
            variant: self.bank.get(self.current).label().to_owned(),
            writes,
            energy_fj,
        })
    }

    /// Hot-swap: load variant `to`'s golden contents into the live
    /// stored bits. Modelled as a full configuration rewrite, so the
    /// write count is the fabric's preset footprint.
    fn swap(&mut self, to: usize) -> u64 {
        self.stored = self.bank.get(to).instance().presets().to_vec();
        self.current = to;
        self.reset_monitor();
        self.dwell = 0;
        self.stored.len() as u64
    }

    fn reset_monitor(&mut self) {
        self.window.clear();
        self.prev_err = None;
        // `in_violation` is left alone: recovery is reported from the
        // next measurement, not assumed.
    }

    /// Draws one input code by inverse-CDF sampling.
    fn sample(&self, rng: &mut StdRng) -> u32 {
        let r: f64 = rng.random();
        self.cdf.partition_point(|&c| c <= r) as u32
    }

    /// Mean absolute served error over `samples`, measured on the
    /// process-default simulation backend with the live stored bits
    /// loaded.
    fn sampled_error(&self, samples: &[u32]) -> Result<f64, RuntimeError> {
        self.measured_error(self.current, &self.stored, samples)
    }

    /// Shadow evaluation: the error variant `index` *would* serve on
    /// `samples`, measured from its golden (uncorrupted) configuration.
    fn shadow_error(&self, index: usize, samples: &[u32]) -> Result<f64, RuntimeError> {
        let presets = self.bank.get(index).instance().presets().to_vec();
        self.measured_error(index, &presets, samples)
    }

    fn measured_error(
        &self,
        index: usize,
        presets: &[(NetId, bool)],
        samples: &[u32],
    ) -> Result<f64, RuntimeError> {
        let inst = self.bank.get(index).instance();
        let out = inst.read_sequence_with_presets(presets, samples)?;
        let total: f64 = samples
            .iter()
            .zip(&out)
            .map(|(&x, &y)| (f64::from(self.target.eval(x)) - f64::from(y)).abs())
            .sum();
        Ok(total / samples.len() as f64)
    }
}

/// Cumulative distribution over the input codes, for inverse sampling.
/// `cdf[x]` is `P(X <= x)`; the final entry is clamped to cover 1.0.
fn cumulative(dist: &InputDistribution) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = dist
        .to_vec()
        .into_iter()
        .map(|p| {
            acc += p;
            acc
        })
        .collect();
    if let Some(last) = cdf.last_mut() {
        *last = f64::INFINITY;
    }
    cdf
}
