//! Behavioural contract of the online SLO controller.
//!
//! The scenarios run on a hand-built two-variant bank whose error
//! profile is exact by construction: two pure-BTO output bits over the
//! low-3-bit bound set, where the "cheap" variant's bit-0 pattern is
//! flipped on bound columns 2 and 5. Every read drawn from a
//! distribution over those columns errs by exactly 1; every read drawn
//! elsewhere is exact. That makes the per-epoch error estimate
//! independent of which RNG implementation backs the sampling, so the
//! assertions hold under any `rand` backend.

use dalut_boolfn::{InputDistribution, Partition, TruthTable};
use dalut_core::{ApproxLutConfig, BitConfig, NoopObserver, RecordingObserver, SearchEvent};
use dalut_decomp::{AnyDecomp, BtoDecomp};
use dalut_hw::{build_approx_lut, ArchStyle, FaultModel};
use dalut_runtime::{ControlAction, Controller, ErrorSlo, Variant, VariantBank};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact bit-0 / bit-1 patterns defining the golden function
/// `g(x) = pe0[x & 7] + 2 * pe1[x & 7]`.
const PE0: [bool; 8] = [false, true, false, true, true, false, true, false];
const PE1: [bool; 8] = [true, true, false, false, true, false, true, true];
/// Bound columns where the cheap variant's bit 0 is flipped.
const DIFF_COLS: [u32; 2] = [2, 5];

fn bto_config(pat0: &[bool], pat1: &[bool]) -> ApproxLutConfig {
    let p = Partition::new(6, 0b000111).unwrap();
    let bits = vec![
        BitConfig {
            bit: 0,
            decomp: AnyDecomp::Bto(BtoDecomp::new(p, pat0.to_vec()).unwrap()),
            expected_error: 0.0,
        },
        BitConfig {
            bit: 1,
            decomp: AnyDecomp::Bto(BtoDecomp::new(p, pat1.to_vec()).unwrap()),
            expected_error: 0.0,
        },
    ];
    ApproxLutConfig::new(6, 2, bits).unwrap()
}

fn exact_config() -> ApproxLutConfig {
    bto_config(&PE0, &PE1)
}

fn cheap_config() -> ApproxLutConfig {
    let mut pc0 = PE0;
    for &c in &DIFF_COLS {
        pc0[c as usize] = !pc0[c as usize];
    }
    bto_config(&pc0, &PE1)
}

/// Bank: cheap (errs by exactly 1 on DIFF_COLS) then exact.
fn bank() -> VariantBank {
    let cheap = Variant::new("cheap", cheap_config(), ArchStyle::BtoNormal, 0.1, 2.0).unwrap();
    let acc = Variant::new("acc", exact_config(), ArchStyle::BtoNormal, 0.0, 10.0).unwrap();
    VariantBank::new(vec![cheap, acc]).unwrap()
}

fn golden() -> TruthTable {
    exact_config().to_truth_table()
}

/// Mass only on inputs whose bound column is in `cols`.
fn dist_on_cols(cols: &[u32]) -> InputDistribution {
    let weights: Vec<f64> = (0..64u32)
        .map(|x| if cols.contains(&(x & 7)) { 1.0 } else { 0.0 })
        .collect();
    InputDistribution::from_weights(weights).unwrap()
}

/// Every sampled read errs by exactly 1 on the cheap variant.
fn dist_bad() -> InputDistribution {
    dist_on_cols(&DIFF_COLS)
}

/// Every sampled read is exact on both variants.
fn dist_good() -> InputDistribution {
    dist_on_cols(&[0, 1, 3, 4, 6, 7])
}

#[test]
fn fixed_seed_runs_are_bit_identical() {
    let bank = bank();
    let target = golden();
    let slo = ErrorSlo {
        target: 0.5,
        relax_margin: 0.5,
        window: 2,
        min_dwell: 1,
        fault_jump: 0.7,
        samples_per_epoch: 32,
        epoch_reads: 64,
        write_energy_fj: 1.0,
    };
    let script = |rng: &mut StdRng| -> (Vec<_>, _) {
        let mut ctl = Controller::new(&target, dist_good(), &bank, 0, slo.clone()).unwrap();
        let mut reports = Vec::new();
        for _ in 0..3 {
            reports.push(ctl.step(rng, &NoopObserver).unwrap());
        }
        ctl.set_distribution(dist_bad()).unwrap();
        for _ in 0..4 {
            reports.push(ctl.step(rng, &NoopObserver).unwrap());
        }
        ctl.inject(&FaultModel::Seu { probability: 0.3 }, rng)
            .unwrap();
        for _ in 0..4 {
            reports.push(ctl.step(rng, &NoopObserver).unwrap());
        }
        ctl.set_distribution(dist_good()).unwrap();
        for _ in 0..4 {
            reports.push(ctl.step(rng, &NoopObserver).unwrap());
        }
        (reports, ctl.totals().clone())
    };
    let mut rng_a = StdRng::seed_from_u64(42);
    let mut rng_b = StdRng::seed_from_u64(42);
    let (reports_a, totals_a) = script(&mut rng_a);
    let (reports_b, totals_b) = script(&mut rng_b);
    assert_eq!(
        reports_a, reports_b,
        "same seed must replay bit-identically"
    );
    assert_eq!(totals_a, totals_b);
    assert_eq!(reports_a.len(), 15);
    // And before the (seed-dependent) fault injection, a different seed
    // still produces the same *decisions*, because the error profile is
    // exact by construction: 0 on the good workload, 1 on the bad one.
    let mut rng_c = StdRng::seed_from_u64(7);
    let (reports_c, _) = script(&mut rng_c);
    assert_eq!(
        reports_a[..7]
            .iter()
            .map(|r| r.variant_index)
            .collect::<Vec<_>>(),
        reports_c[..7]
            .iter()
            .map(|r| r.variant_index)
            .collect::<Vec<_>>()
    );
}

#[test]
fn violation_upgrades_then_recovery_relaxes() {
    let bank = bank();
    let target = golden();
    let slo = ErrorSlo {
        target: 0.5,
        relax_margin: 0.5,
        window: 2,
        min_dwell: 1,
        fault_jump: 1000.0, // scrubbing disabled: this scenario is pure drift
        samples_per_epoch: 64,
        epoch_reads: 1024,
        write_energy_fj: 1.0,
    };
    let mut ctl = Controller::new(&target, dist_good(), &bank, 0, slo).unwrap();
    let obs = RecordingObserver::default();
    let mut rng = StdRng::seed_from_u64(3);
    let mut reports = Vec::new();

    // Quiet start on the benign workload.
    for _ in 0..2 {
        reports.push(ctl.step(&mut rng, &obs).unwrap());
    }
    assert!(reports.iter().all(|r| !r.violated && r.observed_err == 0.0));

    // Drift: the workload concentrates on the cheap variant's bad columns.
    ctl.set_distribution(dist_bad()).unwrap();
    for _ in 0..2 {
        reports.push(ctl.step(&mut rng, &obs).unwrap());
    }
    let upgrade = reports.last().unwrap();
    assert!(upgrade.violated, "window must cross the target");
    assert_eq!(
        upgrade.action,
        ControlAction::Upgraded {
            from: "cheap".into(),
            to: "acc".into()
        }
    );
    assert_eq!(upgrade.variant_index, 1);
    assert!(upgrade.writes > 0, "a hot-swap rewrites the fabric");

    // The accurate variant is exact even on the hostile workload: the
    // very next epoch reports recovery.
    reports.push(ctl.step(&mut rng, &obs).unwrap());
    assert!(!reports.last().unwrap().violated);

    // Margin is back (and the workload relaxes): the controller steps
    // back down the ladder once the window refills and dwell passes.
    ctl.set_distribution(dist_good()).unwrap();
    let mut relaxed_at = None;
    for _ in 0..4 {
        let r = ctl.step(&mut rng, &obs).unwrap();
        if matches!(r.action, ControlAction::Relaxed { .. }) {
            relaxed_at = Some(r.clone());
        }
        reports.push(r);
    }
    let relaxed = relaxed_at.expect("controller must relax once margin recovers");
    assert_eq!(
        relaxed.action,
        ControlAction::Relaxed {
            from: "acc".into(),
            to: "cheap".into()
        }
    );
    assert_eq!(reports.last().unwrap().variant_index, 0);
    assert!(!reports.last().unwrap().violated, "relax must not thrash");

    // Event stream: violation entry, upgrade, recovery, relax — in order.
    let events = obs.events();
    let idx = |pred: &dyn Fn(&SearchEvent) -> bool| events.iter().position(|e| pred(e));
    let viol = idx(&|e| matches!(e, SearchEvent::SloViolated { .. })).expect("SloViolated");
    let up = idx(&|e| matches!(e, SearchEvent::VariantSwapped { upgrade: true, .. }))
        .expect("upgrade VariantSwapped");
    let rec = idx(&|e| matches!(e, SearchEvent::SloRecovered { .. })).expect("SloRecovered");
    let down = idx(&|e| matches!(e, SearchEvent::VariantSwapped { upgrade: false, .. }))
        .expect("relax VariantSwapped");
    assert!(viol <= up && up < rec && rec < down, "events out of order");

    let totals = ctl.totals();
    assert_eq!(totals.upgrades, 1);
    assert_eq!(totals.relaxes, 1);
    assert_eq!(totals.scrubs, 0);
    // Energy ledger: served reads at the serving variant's figure plus
    // one write per rewritten bit.
    let expected: f64 = reports.iter().map(|r| r.energy_fj).sum();
    assert!((totals.energy_fj - expected).abs() < 1e-9);
}

#[test]
fn scrub_repairs_injected_fault_back_to_bit_exact_golden() {
    let bank = bank();
    let target = golden();
    let slo = ErrorSlo {
        target: 10.0, // generous: this scenario is pure fault recovery
        relax_margin: 0.5,
        window: 2,
        min_dwell: 1000, // swaps disabled
        fault_jump: 0.2,
        samples_per_epoch: 64,
        epoch_reads: 64,
        write_energy_fj: 1.0,
    };
    // Serve the exact variant; sample only inputs where g(x) >= 1, so a
    // zeroed fabric is *guaranteed* to raise the error estimate by at
    // least 1 regardless of which samples the RNG draws.
    let dist = dist_good();
    let mut ctl = Controller::new(&target, dist, &bank, 1, slo).unwrap();
    let golden_outputs = ctl.read_all().unwrap();
    let obs = RecordingObserver::default();
    let mut rng = StdRng::seed_from_u64(11);

    // Healthy epoch establishes the baseline.
    let r0 = ctl.step(&mut rng, &obs).unwrap();
    assert_eq!(r0.observed_err, 0.0);

    // Deterministic total damage: every stored bit stuck at 0.
    let injected = ctl
        .inject(
            &FaultModel::StuckAt {
                probability: 1.0,
                value: false,
            },
            &mut rng,
        )
        .unwrap();
    assert!(injected > 0, "the fabric stores some 1s");
    assert_eq!(ctl.corrupted_bits(), injected);

    // The next epoch sees the jump, suspects a fault and scrubs.
    let r1 = ctl.step(&mut rng, &obs).unwrap();
    assert!(r1.observed_err >= 1.0, "zeroed fabric errs on every sample");
    assert_eq!(
        r1.action,
        ControlAction::Scrubbed {
            repaired_bits: injected
        }
    );
    assert_eq!(r1.writes, injected as u64);
    assert_eq!(ctl.corrupted_bits(), 0);
    assert_eq!(
        ctl.read_all().unwrap(),
        golden_outputs,
        "scrub must restore bit-exact golden behaviour"
    );

    // And the post-scrub epoch measures clean again.
    let r2 = ctl.step(&mut rng, &obs).unwrap();
    assert_eq!(r2.observed_err, 0.0);
    assert_eq!(r2.action, ControlAction::None);

    let events = obs.events();
    assert!(events
        .iter()
        .any(|e| matches!(e, SearchEvent::FaultSuspected { .. })));
    assert!(events.iter().any(
        |e| matches!(e, SearchEvent::ScrubCompleted { repaired_bits } if *repaired_bits == injected)
    ));
    let totals = ctl.totals();
    assert_eq!(totals.scrubs, 1);
    assert_eq!(totals.bits_repaired, injected as u64);
    assert_eq!(totals.upgrades, 0);
}

#[test]
fn shadow_evaluation_blocks_relax_on_hostile_workload() {
    // Serving the accurate variant, the window looks comfortably inside
    // the relax band (the accurate variant is exact everywhere). But the
    // live workload sits on the cheap variant's bad columns, so the
    // shadow replay of the epoch's samples through the cheaper variant
    // measures error 1.0 — far outside the band — and relax must never
    // fire, no matter how long the margin holds.
    let bank = bank();
    let target = golden();
    let slo = ErrorSlo {
        target: 0.5,
        relax_margin: 0.5, // relax band: window and shadow both < 0.25
        window: 2,
        min_dwell: 1,
        fault_jump: 1000.0,
        samples_per_epoch: 64,
        epoch_reads: 64,
        write_energy_fj: 1.0,
    };
    let mut ctl = Controller::new(&target, dist_bad(), &bank, 1, slo).unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..6 {
        let r = ctl.step(&mut rng, &NoopObserver).unwrap();
        assert_eq!(r.observed_err, 0.0, "the accurate variant is exact");
        assert_eq!(
            r.action,
            ControlAction::None,
            "shadow evaluation must veto the relax"
        );
        assert_eq!(r.variant_index, 1);
    }

    // Once the workload actually moves off the bad columns, the shadow
    // clears and the relax goes through.
    ctl.set_distribution(dist_good()).unwrap();
    let mut relaxed = false;
    for _ in 0..4 {
        let r = ctl.step(&mut rng, &NoopObserver).unwrap();
        relaxed |= matches!(r.action, ControlAction::Relaxed { .. });
    }
    assert!(relaxed, "benign workload must unlock the relax");
    assert_eq!(ctl.totals().relaxes, 1);
}

#[test]
fn attached_but_idle_controller_is_bit_transparent() {
    // One-variant bank, generous SLO, no faults: the controller must be
    // a pure observer — no actions, no writes, and the served outputs
    // bit-identical to a bare unmanaged instance.
    let acc = Variant::new("acc", exact_config(), ArchStyle::BtoNormal, 0.0, 10.0).unwrap();
    let bank = VariantBank::new(vec![acc]).unwrap();
    let target = golden();
    let mut ctl = Controller::new(
        &target,
        InputDistribution::uniform(6).unwrap(),
        &bank,
        0,
        ErrorSlo::new(5.0),
    )
    .unwrap();
    let obs = RecordingObserver::default();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        let r = ctl.step(&mut rng, &obs).unwrap();
        assert_eq!(r.action, ControlAction::None);
        assert_eq!(r.writes, 0);
        assert!(!r.violated);
        assert_eq!(r.observed_err, 0.0);
    }
    assert!(obs.events().is_empty(), "an idle controller emits nothing");

    // Bit-exactness against a bare instance of the same config.
    let bare = build_approx_lut(&exact_config(), ArchStyle::BtoNormal).unwrap();
    let mut sim = bare.simulator().unwrap();
    let bare_outputs: Vec<u32> = (0..64u32).map(|x| bare.read(&mut sim, x)).collect();
    assert_eq!(ctl.read_all().unwrap(), bare_outputs);
}

#[test]
fn disabled_actions_observe_but_never_react() {
    // The "uncontrolled" baseline arm: same policy, hostile workload,
    // but corrective actions off. Violations are recorded; the hardware
    // is never touched.
    let bank = bank();
    let target = golden();
    let slo = ErrorSlo {
        target: 0.5,
        relax_margin: 0.5,
        window: 2,
        min_dwell: 1,
        fault_jump: 1000.0,
        samples_per_epoch: 64,
        epoch_reads: 64,
        write_energy_fj: 1.0,
    };
    let mut ctl = Controller::new(&target, dist_bad(), &bank, 0, slo)
        .unwrap()
        .with_actions(false);
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..6 {
        let r = ctl.step(&mut rng, &NoopObserver).unwrap();
        assert_eq!(r.action, ControlAction::None);
        assert_eq!(r.writes, 0);
        assert_eq!(r.variant_index, 0, "must never swap");
    }
    let totals = ctl.totals();
    assert!(totals.violated_epochs > 0, "violations must still be seen");
    assert_eq!(totals.upgrades + totals.relaxes + totals.scrubs, 0);
}
