//! The TCP front-end: listener, connection threads and the drain path.
//!
//! One lightweight thread per connection reads newline-delimited
//! [`ClientFrame`]s and hands submissions to the shared [`Scheduler`];
//! responses are written through a mutex-guarded clone of the stream, so
//! worker threads deliver result frames directly without a hop back to
//! the connection thread. The accept loop polls a [`CancelToken`]
//! (typically wired to SIGINT via [`shutdown::install`]) and on
//! cancellation performs a graceful drain: stop accepting, refuse new
//! submissions, cancel running searches (each still yields a best-so-far
//! result frame), wait for the pool to go idle, then return `Ok(())`.
//!
//! [`shutdown::install`]: crate::shutdown::install

use crate::cache::ConfigCache;
use crate::protocol::{ClientFrame, ServerStats, PROTOCOL_SCHEMA};
use crate::scheduler::{
    benchfns_resolver, AdmissionLimits, ResponseSink, Scheduler, SubmitOutcome,
};
use dalut_core::CancelToken;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often blocked loops re-check the shutdown token.
const POLL: Duration = Duration::from_millis(25);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Search worker threads.
    pub workers: usize,
    /// Directory for the persistent config cache; `None` keeps the
    /// cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Admission-control limits.
    pub limits: AdmissionLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            cache_dir: None,
            limits: AdmissionLimits::default(),
        }
    }
}

/// A bound, ready-to-run server. Create with [`Server::bind`], then
/// call [`run`](Server::run), which blocks until the shutdown token
/// trips and the drain finishes.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    workers: usize,
    shutdown: CancelToken,
    next_conn: AtomicU64,
}

impl Server {
    /// Binds the listener, opens (or creates) the cache and starts the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket and cache-directory I/O errors.
    pub fn bind(config: &ServerConfig) -> io::Result<Self> {
        let cache = Arc::new(match &config.cache_dir {
            Some(dir) => ConfigCache::open(dir)?,
            None => ConfigCache::in_memory(),
        });
        let scheduler = Arc::new(Scheduler::new(
            cache,
            config.limits,
            Box::new(benchfns_resolver()),
        ));
        scheduler.spawn_workers(config.workers);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            scheduler,
            workers: config.workers,
            shutdown: CancelToken::new(),
            next_conn: AtomicU64::new(0),
        })
    }

    /// The bound address (useful with port `:0`).
    ///
    /// # Errors
    ///
    /// Propagates `TcpListener::local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A clone of the token that stops the server; wire it to
    /// [`shutdown::install`](crate::shutdown::install) or cancel it
    /// from another thread.
    #[must_use]
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// The scheduler, for in-process inspection (stats, cache counters).
    #[must_use]
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Accepts connections until the shutdown token trips, then drains:
    /// refuses new work, cancels running searches, waits for every
    /// accepted job's result frame to be delivered and joins the pool.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (`WouldBlock` and interrupts
    /// are retried).
    pub fn run(self) -> io::Result<()> {
        while !self.shutdown.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
                    let scheduler = Arc::clone(&self.scheduler);
                    let shutdown = self.shutdown.clone();
                    let workers = self.workers;
                    let _ = std::thread::Builder::new()
                        .name(format!("dalut-conn-{conn}"))
                        .spawn(move || {
                            let _ = serve_connection(&scheduler, stream, conn, workers, &shutdown);
                        });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Graceful drain: every job accepted before the signal still
        // gets its result frame (cancelled searches report best-so-far)
        // and the cache never gains a partial on-disk entry, because
        // entries are written atomically and only for completed runs.
        self.scheduler.drain();
        self.scheduler.wait_idle();
        self.scheduler.join_workers();
        Ok(())
    }
}

/// A [`ResponseSink`] writing newline-terminated frames to one
/// connection. Write errors mark the sink dead and later frames are
/// dropped — a vanished client must not take a worker down with it.
struct TcpSink {
    stream: Mutex<Option<TcpStream>>,
}

impl TcpSink {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream: Mutex::new(Some(stream)),
        }
    }
}

impl std::fmt::Debug for TcpSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSink").finish_non_exhaustive()
    }
}

impl ResponseSink for TcpSink {
    fn send(&self, frame: &str) {
        let mut guard = self.stream.lock().expect("sink lock");
        if let Some(stream) = guard.as_mut() {
            let ok = stream
                .write_all(frame.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .and_then(|()| stream.flush())
                .is_ok();
            if !ok {
                *guard = None;
            }
        }
    }
}

/// Reads frames off one connection until EOF or shutdown.
fn serve_connection(
    scheduler: &Arc<Scheduler>,
    stream: TcpStream,
    conn: u64,
    workers: usize,
    shutdown: &CancelToken,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    let write_half = stream.try_clone()?;
    let sink: Arc<TcpSink> = Arc::new(TcpSink::new(write_half));
    sink.send(&hello_frame(workers, scheduler.cache().len()));

    let default_client = format!("conn-{conn}");
    // Tokens of this connection's queued jobs, for cancel frames.
    let mut submitted: HashMap<u64, CancelToken> = HashMap::new();
    let mut reader = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if shutdown.is_cancelled() {
            return Ok(()); // drain path delivers remaining result frames
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                    let line = line.trim();
                    if !line.is_empty() {
                        handle_frame(scheduler, line, &default_client, &sink, &mut submitted);
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Dispatches one parsed line.
fn handle_frame(
    scheduler: &Arc<Scheduler>,
    line: &str,
    default_client: &str,
    sink: &Arc<TcpSink>,
    submitted: &mut HashMap<u64, CancelToken>,
) {
    match serde_json::from_str::<ClientFrame>(line) {
        Ok(ClientFrame::Submit {
            id,
            client,
            stream,
            spec,
        }) => {
            let bucket = client.as_deref().unwrap_or(default_client);
            let dyn_sink: Arc<dyn ResponseSink> = Arc::clone(sink) as Arc<dyn ResponseSink>;
            if let SubmitOutcome::Queued(token) =
                scheduler.submit(bucket, id, stream, &spec, dyn_sink)
            {
                submitted.insert(id, token);
            }
        }
        Ok(ClientFrame::Cancel { id }) => {
            if let Some(token) = submitted.remove(&id) {
                token.cancel();
            }
        }
        Ok(ClientFrame::Stats) => sink.send(&stats_frame(&scheduler.stats())),
        Err(e) => sink.send(&format!(
            "{{\"type\":\"error\",\"id\":0,\"message\":\"unparseable frame: {}\"}}",
            e.to_string().replace('\\', "\\\\").replace('"', "\\\"")
        )),
    }
}

/// The hello frame, hand-assembled so its bytes are stable and
/// emittable even where the JSON library is stubbed.
fn hello_frame(workers: usize, cached_entries: usize) -> String {
    format!(
        "{{\"type\":\"hello\",\"schema\":\"{PROTOCOL_SCHEMA}\",\
         \"workers\":{workers},\"cached_entries\":{cached_entries}}}"
    )
}

/// The stats frame, hand-assembled for the same reason.
fn stats_frame(s: &ServerStats) -> String {
    format!(
        "{{\"type\":\"stats\",\"stats\":{{\"submitted\":{},\"cache_hits\":{},\
         \"coalesced\":{},\"rejected\":{},\"completed\":{},\"queued\":{},\"running\":{}}}}}",
        s.submitted, s.cache_hits, s.coalesced, s.rejected, s.completed, s.queued, s.running
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_and_stats_frames_are_single_json_lines() {
        let hello = hello_frame(4, 17);
        assert!(hello.contains("\"schema\":\"dalut-serve/v1\""));
        assert!(hello.contains("\"workers\":4"));
        assert!(hello.contains("\"cached_entries\":17"));
        assert!(!hello.contains('\n'));

        let stats = stats_frame(&ServerStats {
            submitted: 1,
            cache_hits: 2,
            coalesced: 3,
            rejected: 4,
            completed: 5,
            queued: 6,
            running: 7,
        });
        for needle in [
            "\"submitted\":1",
            "\"cache_hits\":2",
            "\"coalesced\":3",
            "\"rejected\":4",
            "\"completed\":5",
            "\"queued\":6",
            "\"running\":7",
        ] {
            assert!(stats.contains(needle), "{stats} missing {needle}");
        }
        assert!(!stats.contains('\n'));
    }

    #[test]
    fn bind_picks_a_free_port_and_reports_it() {
        let server = Server::bind(&ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        // Stop immediately: trip the token before run() so the accept
        // loop drains and returns on its first poll.
        server.shutdown_token().cancel();
        server.run().unwrap();
    }
}
