//! The TCP front-end: listener, connection threads and the drain path.
//!
//! One lightweight thread per connection reads newline-delimited
//! [`ClientFrame`]s and hands submissions to the shared [`Scheduler`];
//! responses are written through a mutex-guarded clone of the stream, so
//! worker threads deliver result frames directly without a hop back to
//! the connection thread. The accept loop polls a [`CancelToken`]
//! (typically wired to SIGINT via [`shutdown::install`]) and on
//! cancellation performs a graceful drain: stop accepting, refuse new
//! submissions, cancel running searches (each still yields a best-so-far
//! result frame), wait for the pool to go idle, then return `Ok(())`.
//!
//! [`shutdown::install`]: crate::shutdown::install

use crate::cache::ConfigCache;
use crate::protocol::{reject_frame, ClientFrame, RejectCode, ServerStats, PROTOCOL_SCHEMA};
use crate::scheduler::{
    benchfns_resolver, AdmissionLimits, ResponseSink, Scheduler, SubmitOutcome,
};
use dalut_core::{CancelToken, NoopObserver};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocked loops re-check the shutdown token.
const POLL: Duration = Duration::from_millis(25);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Search worker threads.
    pub workers: usize,
    /// Directory for the persistent config cache; `None` keeps the
    /// cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Admission-control limits.
    pub limits: AdmissionLimits,
    /// Longest line accepted from a client; a connection exceeding it
    /// gets a typed `frame_too_long` reject and is closed, so a hostile
    /// newline-free stream can never grow the buffer without bound.
    pub max_frame_len: usize,
    /// Longest a *partial* line may stall before the connection is
    /// closed with a typed `deadline` reject (slow-loris defence).
    /// Clients waiting between frames are unaffected — the deadline
    /// only arms while an incomplete line is buffered.
    pub frame_deadline: Duration,
    /// Longest a connection may sit with no bytes in either direction
    /// before it is closed. Long searches keep their connection alive
    /// through the result write; pick this well above search time.
    pub idle_timeout: Duration,
    /// Per-write socket timeout: a client that stops draining its
    /// receive window stalls a worker for at most this long before the
    /// sink is marked dead and its frames are dropped.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            cache_dir: None,
            limits: AdmissionLimits::default(),
            max_frame_len: 4 << 20,
            frame_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(600),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// A bound, ready-to-run server. Create with [`Server::bind`], then
/// call [`run`](Server::run), which blocks until the shutdown token
/// trips and the drain finishes.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    config: ServerConfig,
    shutdown: CancelToken,
    next_conn: AtomicU64,
}

impl Server {
    /// Binds the listener, opens (or creates) the cache and starts the
    /// worker pool. An unusable cache directory does not fail the bind:
    /// the cache degrades to memory-only and the hello frame says so.
    ///
    /// # Errors
    ///
    /// Propagates socket I/O errors.
    pub fn bind(config: &ServerConfig) -> io::Result<Self> {
        let cache = Arc::new(match &config.cache_dir {
            Some(dir) => ConfigCache::open(dir),
            None => ConfigCache::in_memory(),
        });
        let scheduler = Arc::new(Scheduler::new(
            cache,
            config.limits,
            Box::new(benchfns_resolver()),
            Arc::new(NoopObserver),
        ));
        scheduler.spawn_workers(config.workers);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            scheduler,
            config: config.clone(),
            shutdown: CancelToken::new(),
            next_conn: AtomicU64::new(0),
        })
    }

    /// The bound address (useful with port `:0`).
    ///
    /// # Errors
    ///
    /// Propagates `TcpListener::local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A clone of the token that stops the server; wire it to
    /// [`shutdown::install`](crate::shutdown::install) or cancel it
    /// from another thread.
    #[must_use]
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// The scheduler, for in-process inspection (stats, cache counters).
    #[must_use]
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Accepts connections until the shutdown token trips, then drains:
    /// refuses new work, cancels running searches, waits for every
    /// accepted job's result frame to be delivered and joins the pool.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (`WouldBlock` and interrupts
    /// are retried).
    pub fn run(self) -> io::Result<()> {
        while !self.shutdown.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
                    let scheduler = Arc::clone(&self.scheduler);
                    let shutdown = self.shutdown.clone();
                    let config = self.config.clone();
                    let _ = std::thread::Builder::new()
                        .name(format!("dalut-conn-{conn}"))
                        .spawn(move || {
                            let _ = serve_connection(&scheduler, stream, conn, &config, &shutdown);
                        });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Graceful drain: every job accepted before the signal still
        // gets its result frame (cancelled searches report best-so-far)
        // and the cache never gains a partial on-disk entry, because
        // entries are written atomically and only for completed runs.
        self.scheduler.drain();
        self.scheduler.wait_idle();
        self.scheduler.join_workers();
        Ok(())
    }
}

/// A [`ResponseSink`] writing newline-terminated frames to one
/// connection. Write errors (including write-timeout expiry against a
/// client that stopped draining) mark the sink dead and later frames
/// are dropped — a vanished client must not take a worker down with it.
struct TcpSink {
    inner: Mutex<SinkInner>,
}

struct SinkInner {
    stream: Option<TcpStream>,
    last_write: Instant,
}

impl TcpSink {
    fn new(stream: TcpStream) -> Self {
        Self {
            inner: Mutex::new(SinkInner {
                stream: Some(stream),
                last_write: Instant::now(),
            }),
        }
    }

    /// When the last successful write finished (connection start if
    /// none); feeds the idle-timeout check so a connection waiting on a
    /// long search is not "idle" while results are still flowing.
    fn last_write(&self) -> Instant {
        self.inner.lock().expect("sink lock").last_write
    }

    /// Whether the write side has been marked dead.
    fn is_dead(&self) -> bool {
        self.inner.lock().expect("sink lock").stream.is_none()
    }
}

impl std::fmt::Debug for TcpSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSink").finish_non_exhaustive()
    }
}

impl ResponseSink for TcpSink {
    fn send(&self, frame: &str) {
        let mut guard = self.inner.lock().expect("sink lock");
        if let Some(stream) = guard.stream.as_mut() {
            let ok = stream
                .write_all(frame.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .and_then(|()| stream.flush())
                .is_ok();
            if ok {
                guard.last_write = Instant::now();
            } else {
                guard.stream = None;
            }
        }
    }
}

/// Reads frames off one connection until EOF, shutdown, or one of the
/// hardening limits trips (frame length, frame deadline, idle timeout).
fn serve_connection(
    scheduler: &Arc<Scheduler>,
    stream: TcpStream,
    conn: u64,
    config: &ServerConfig,
    shutdown: &CancelToken,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    let write_half = stream.try_clone()?;
    write_half.set_write_timeout(Some(config.write_timeout))?;
    let sink: Arc<TcpSink> = Arc::new(TcpSink::new(write_half));
    sink.send(&hello_frame(config.workers, scheduler.cache()));

    let default_client = format!("conn-{conn}");
    // Tokens of this connection's queued jobs, for cancel frames.
    let mut submitted: HashMap<u64, CancelToken> = HashMap::new();
    let mut reader = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_read = Instant::now();
    // Arms when `pending` first becomes a non-empty partial line.
    let mut partial_since: Option<Instant> = None;
    loop {
        if shutdown.is_cancelled() {
            return Ok(()); // drain path delivers remaining result frames
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                last_read = Instant::now();
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                    let line = line.trim();
                    if !line.is_empty() {
                        handle_frame(scheduler, line, &default_client, &sink, &mut submitted);
                    }
                }
                // Bound the buffer: a newline-free stream past the cap
                // is rejected and dropped before it can grow further.
                if pending.len() > config.max_frame_len {
                    scheduler.note_frame_reject();
                    reject_and_close(
                        &mut reader,
                        sink.as_ref(),
                        &reject_frame(
                            0,
                            RejectCode::FrameTooLong,
                            None,
                            &format!("frame exceeds max length {}", config.max_frame_len),
                        ),
                    );
                    return Ok(());
                }
                partial_since = if pending.is_empty() {
                    None
                } else {
                    partial_since.or_else(|| Some(Instant::now()))
                };
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        // Slow-loris: a partial line that stalls past the deadline.
        if partial_since.is_some_and(|since| since.elapsed() > config.frame_deadline) {
            scheduler.note_frame_reject();
            reject_and_close(
                &mut reader,
                sink.as_ref(),
                &reject_frame(
                    0,
                    RejectCode::Deadline,
                    None,
                    "partial frame stalled past the frame deadline",
                ),
            );
            return Ok(());
        }
        // Idle: no bytes in either direction for the whole window (a
        // connection waiting on a long search stays alive through its
        // result write), or a write side already marked dead.
        if sink.is_dead() || last_read.max(sink.last_write()).elapsed() > config.idle_timeout {
            return Ok(());
        }
    }
}

/// Gracefully closes an abusive connection after a terminal reject:
/// half-closes the write side, then drains and discards whatever the
/// client is still sending, for a bounded window. Without the drain,
/// closing with unread bytes in the receive buffer makes the kernel
/// answer with a reset that can destroy the reject frame before the
/// client reads it.
fn reject_and_close(reader: &mut TcpStream, sink: &TcpSink, frame: &str) {
    sink.send(frame);
    let _ = reader.shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sunk = [0u8; 4096];
    while Instant::now() < deadline {
        match reader.read(&mut sunk) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Dispatches one parsed line.
fn handle_frame(
    scheduler: &Arc<Scheduler>,
    line: &str,
    default_client: &str,
    sink: &Arc<TcpSink>,
    submitted: &mut HashMap<u64, CancelToken>,
) {
    match serde_json::from_str::<ClientFrame>(line) {
        Ok(ClientFrame::Submit {
            id,
            client,
            stream,
            spec,
        }) => {
            let bucket = client.as_deref().unwrap_or(default_client);
            let dyn_sink: Arc<dyn ResponseSink> = Arc::clone(sink) as Arc<dyn ResponseSink>;
            if let SubmitOutcome::Queued(token) =
                scheduler.submit(bucket, id, stream, &spec, dyn_sink)
            {
                submitted.insert(id, token);
            }
        }
        Ok(ClientFrame::Cancel { id }) => {
            if let Some(token) = submitted.remove(&id) {
                token.cancel();
            }
        }
        Ok(ClientFrame::Stats) => sink.send(&stats_frame(&scheduler.stats())),
        Err(e) => {
            scheduler.note_frame_reject();
            sink.send(&reject_frame(
                0,
                RejectCode::BadFrame,
                None,
                &format!("unparseable frame: {e}"),
            ));
        }
    }
}

/// The hello frame, hand-assembled so its bytes are stable and
/// emittable even where the JSON library is stubbed. Advertises the
/// cache's reload health alongside its entry count, so a client (or an
/// operator with `nc`) can see skipped entries and degraded mode
/// without a stats round trip.
fn hello_frame(workers: usize, cache: &ConfigCache) -> String {
    format!(
        "{{\"type\":\"hello\",\"schema\":\"{PROTOCOL_SCHEMA}\",\
         \"workers\":{workers},\"cached_entries\":{},\
         \"cache_skipped\":{},\"degraded\":{}}}",
        cache.len(),
        cache.load_report().skipped(),
        cache.degraded(),
    )
}

/// The stats frame, hand-assembled for the same reason.
fn stats_frame(s: &ServerStats) -> String {
    format!(
        "{{\"type\":\"stats\",\"stats\":{{\"submitted\":{},\"cache_hits\":{},\
         \"coalesced\":{},\"rejected\":{},\"completed\":{},\"queued\":{},\"running\":{},\
         \"shed\":{},\"quarantined\":{},\"panics\":{},\"frame_rejects\":{},\
         \"cache_skipped_unparsable\":{},\"cache_skipped_corrupt\":{}}}}}",
        s.submitted,
        s.cache_hits,
        s.coalesced,
        s.rejected,
        s.completed,
        s.queued,
        s.running,
        s.shed,
        s.quarantined,
        s.panics,
        s.frame_rejects,
        s.cache_skipped_unparsable,
        s.cache_skipped_corrupt,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_and_stats_frames_are_single_json_lines() {
        let cache = ConfigCache::in_memory();
        cache.insert(
            dalut_core::FunctionFingerprint { hi: 1, lo: 2 },
            "{\"x\":1}",
        );
        let hello = hello_frame(4, &cache);
        assert!(hello.contains("\"schema\":\"dalut-serve/v1\""));
        assert!(hello.contains("\"workers\":4"));
        assert!(hello.contains("\"cached_entries\":1"));
        assert!(hello.contains("\"cache_skipped\":0"));
        assert!(hello.contains("\"degraded\":false"));
        assert!(!hello.contains('\n'));

        let stats = stats_frame(&ServerStats {
            submitted: 1,
            cache_hits: 2,
            coalesced: 3,
            rejected: 4,
            completed: 5,
            queued: 6,
            running: 7,
            shed: 8,
            quarantined: 9,
            panics: 10,
            frame_rejects: 11,
            cache_skipped_unparsable: 12,
            cache_skipped_corrupt: 13,
        });
        for needle in [
            "\"submitted\":1",
            "\"cache_hits\":2",
            "\"coalesced\":3",
            "\"rejected\":4",
            "\"completed\":5",
            "\"queued\":6",
            "\"running\":7",
            "\"shed\":8",
            "\"quarantined\":9",
            "\"panics\":10",
            "\"frame_rejects\":11",
            "\"cache_skipped_unparsable\":12",
            "\"cache_skipped_corrupt\":13",
        ] {
            assert!(stats.contains(needle), "{stats} missing {needle}");
        }
        assert!(!stats.contains('\n'));
    }

    #[test]
    fn bind_picks_a_free_port_and_reports_it() {
        let server = Server::bind(&ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        // Stop immediately: trip the token before run() so the accept
        // loop drains and returns on its first poll.
        server.shutdown_token().cancel();
        server.run().unwrap();
    }
}
