//! A deterministic fault-injecting TCP proxy for chaos testing.
//!
//! [`ChaosProxy`] sits between a client and an upstream `dalut-serve`,
//! forwarding bytes in both directions while injecting the five faults
//! of the chaos menu, each gated by a per-fault probability from a
//! [`ChaosPlan`]:
//!
//! * **drop** — forward a prefix of the chunk, then kill the whole
//!   proxied connection (mid-frame connection loss);
//! * **corrupt** — flip one byte of the chunk before forwarding;
//! * **stall** — hold the chunk for `stall_ms` before forwarding
//!   (slow-loris when it lands mid-frame);
//! * **partial** — forward only a prefix and discard the rest;
//! * **duplicate** — forward the chunk twice.
//!
//! Fault decisions come from a [`SplitMix64`] stream seeded per
//! connection and direction from `ChaosPlan::seed`, so a run's decision
//! sequence is reproducible: the same seed rolls the same faults at the
//! same chunk indices (chunk *boundaries* are still TCP's business, so
//! reproducibility is at the decision level, not the byte level — which
//! is exactly what a chaos harness needs: seeds that reliably produce
//! each fault class, not a bit-identical packet trace).
//!
//! Injected counts are tallied in [`ChaosStats`], which `chaosbench`
//! cross-references against the client's recovery counts.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked proxy loops re-check their stop flag.
const POLL: Duration = Duration::from_millis(25);

/// A small, fast, seedable PRNG (Steele et al.'s SplitMix64), used for
/// every chaos decision and for client back-off jitter. Not
/// cryptographic — determinism and speed are the point.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator whose whole stream is a pure function of `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits, the standard uniform-double construction.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[0, n)`; 0 when `n` is 0.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Per-fault injection probabilities, rolled once per forwarded chunk
/// and direction. All-zero means a transparent proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seeds every per-connection decision stream.
    pub seed: u64,
    /// Mid-chunk connection kill.
    pub drop_prob: f64,
    /// One flipped byte.
    pub corrupt_prob: f64,
    /// Hold the chunk for [`stall_ms`](Self::stall_ms).
    pub stall_prob: f64,
    /// Forward a prefix, discard the rest.
    pub partial_prob: f64,
    /// Forward the chunk twice.
    pub duplicate_prob: f64,
    /// Stall duration for the `stall` fault.
    pub stall_ms: u64,
}

impl ChaosPlan {
    /// A transparent (fault-free) plan.
    #[must_use]
    pub fn off(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            stall_prob: 0.0,
            partial_prob: 0.0,
            duplicate_prob: 0.0,
            stall_ms: 0,
        }
    }

    /// The full fault menu at rates aggressive enough that a short run
    /// exercises every class, yet low enough that most requests get
    /// through each attempt.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.04,
            corrupt_prob: 0.04,
            stall_prob: 0.04,
            partial_prob: 0.03,
            duplicate_prob: 0.04,
            stall_ms: 150,
        }
    }

    /// Whether any fault can fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.stall_prob > 0.0
            || self.partial_prob > 0.0
            || self.duplicate_prob > 0.0
    }
}

/// Atomic tallies of injected faults, shared by every pump thread.
#[derive(Debug, Default)]
pub struct ChaosStats {
    connections: AtomicU64,
    chunks: AtomicU64,
    drops: AtomicU64,
    corruptions: AtomicU64,
    stalls: AtomicU64,
    partials: AtomicU64,
    duplicates: AtomicU64,
}

/// A plain-value copy of [`ChaosStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSnapshot {
    /// Proxied connections accepted.
    pub connections: u64,
    /// Chunks forwarded (either direction).
    pub chunks: u64,
    /// Connections killed mid-chunk.
    pub drops: u64,
    /// Chunks with a flipped byte.
    pub corruptions: u64,
    /// Chunks held for the stall duration.
    pub stalls: u64,
    /// Chunks truncated to a prefix.
    pub partials: u64,
    /// Chunks delivered twice.
    pub duplicates: u64,
}

impl ChaosSnapshot {
    /// Total faults injected across all five classes.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.drops + self.corruptions + self.stalls + self.partials + self.duplicates
    }
}

impl ChaosStats {
    /// A plain-value copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> ChaosSnapshot {
        ChaosSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            partials: self.partials.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
        }
    }
}

/// The proxy itself: listens on an ephemeral local port, forwards every
/// accepted connection to the upstream address through a pair of
/// fault-injecting pump threads.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts proxying `127.0.0.1:0 → upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// Propagates listener bind errors. Upstream connect failures are
    /// per-connection: the accepted client socket is simply dropped,
    /// which a retrying client treats like any other connection fault.
    pub fn start(upstream: &str, plan: ChaosPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let upstream = upstream.to_string();
        let accept_stats = Arc::clone(&stats);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("chaos-accept".to_string())
            .spawn(move || {
                let mut conn = 0u64;
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                            let Ok(server) = TcpStream::connect(&upstream) else {
                                drop(client); // upstream down: fault as-is
                                continue;
                            };
                            spawn_pumps(client, server, plan, conn, &accept_stats, &accept_stop);
                            conn += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
            })?;
        Ok(Self {
            addr,
            stats,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A copy of the injection tallies so far.
    #[must_use]
    pub fn stats(&self) -> ChaosSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting and joins the accept thread; pump threads die
    /// with their sockets.
    pub fn stop(mut self) -> ChaosSnapshot {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// One pump per direction; each owns a read half and the opposite
/// write half (clones of the same two sockets, so a drop-fault shutdown
/// in either pump kills both).
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    plan: ChaosPlan,
    conn: u64,
    stats: &Arc<ChaosStats>,
    stop: &Arc<AtomicBool>,
) {
    for (dir, from, to) in [
        (0u64, client.try_clone(), server.try_clone()),
        (1u64, server.try_clone(), client.try_clone()),
    ] {
        let (Ok(from), Ok(to)) = (from, to) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        // One decision stream per (seed, connection, direction).
        let rng = SplitMix64::new(
            plan.seed
                .wrapping_add(conn.wrapping_mul(0x9E37_79B9))
                .wrapping_add(dir.wrapping_mul(0x85EB_CA6B_C2B2_AE35)),
        );
        let stats = Arc::clone(stats);
        let stop = Arc::clone(stop);
        let _ = std::thread::Builder::new()
            .name(format!("chaos-pump-{conn}-{dir}"))
            .spawn(move || pump(from, to, plan, rng, &stats, &stop));
    }
}

/// Forwards chunks `from → to`, rolling the fault menu once per chunk.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    plan: ChaosPlan,
    mut rng: SplitMix64,
    stats: &Arc<ChaosStats>,
    stop: &Arc<AtomicBool>,
) {
    if from.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut buf = [0u8; 1024];
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: propagate it downstream but leave the
                // opposite direction open for in-flight responses.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => {
                stats.chunks.fetch_add(1, Ordering::Relaxed);
                let mut chunk = buf[..n].to_vec();
                // Roll every fault gate unconditionally so the decision
                // stream stays aligned across runs with the same seed.
                let roll_drop = rng.next_f64() < plan.drop_prob;
                let roll_corrupt = rng.next_f64() < plan.corrupt_prob;
                let roll_stall = rng.next_f64() < plan.stall_prob;
                let roll_partial = rng.next_f64() < plan.partial_prob;
                let roll_duplicate = rng.next_f64() < plan.duplicate_prob;

                if roll_drop {
                    stats.drops.fetch_add(1, Ordering::Relaxed);
                    // Mid-frame kill: leak a prefix, then sever both
                    // directions of the proxied connection.
                    let prefix = rng.next_below(chunk.len() as u64) as usize;
                    let _ = to.write_all(&chunk[..prefix]);
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
                if roll_corrupt {
                    stats.corruptions.fetch_add(1, Ordering::Relaxed);
                    let at = rng.next_below(chunk.len() as u64) as usize;
                    chunk[at] ^= 0x20; // flips case/punctuation, stays printable-ish
                }
                if roll_stall {
                    stats.stalls.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(plan.stall_ms));
                }
                if roll_partial {
                    stats.partials.fetch_add(1, Ordering::Relaxed);
                    // At least one byte, never the whole chunk (that
                    // would be a no-op).
                    let keep = 1 + rng.next_below(chunk.len().saturating_sub(1).max(1) as u64);
                    chunk.truncate(keep as usize);
                }
                let attempts = if roll_duplicate {
                    stats.duplicates.fetch_add(1, Ordering::Relaxed);
                    2
                } else {
                    1
                };
                for _ in 0..attempts {
                    if to.write_all(&chunk).is_err() {
                        let _ = from.shutdown(Shutdown::Both);
                        return;
                    }
                }
                let _ = to.flush();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniform_enough() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64(), "different seed diverges");
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.next_below(10) < 10);
        }
        assert_eq!(SplitMix64::new(1).next_below(0), 0);
    }

    #[test]
    fn transparent_proxy_forwards_bytes_unchanged() {
        // Echo upstream: whatever arrives goes straight back.
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        std::thread::spawn(move || {
            if let Ok((mut conn, _)) = upstream.accept() {
                let mut buf = [0u8; 256];
                while let Ok(n) = conn.read(&mut buf) {
                    if n == 0 {
                        break;
                    }
                    if conn.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        });

        let proxy =
            ChaosProxy::start(&upstream_addr.to_string(), ChaosPlan::off(1)).expect("proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        client
            .write_all(b"hello through the proxy\n")
            .expect("write");
        let mut echoed = [0u8; 24];
        client.read_exact(&mut echoed).expect("read echo");
        assert_eq!(&echoed, b"hello through the proxy\n");
        let snap = proxy.stop();
        assert_eq!(snap.total_injected(), 0, "off-plan must inject nothing");
        assert_eq!(snap.connections, 1);
        assert!(snap.chunks >= 2, "both directions forwarded: {snap:?}");
    }

    #[test]
    fn corrupting_proxy_flips_bytes() {
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        std::thread::spawn(move || {
            if let Ok((mut conn, _)) = upstream.accept() {
                let mut buf = [0u8; 256];
                while let Ok(n) = conn.read(&mut buf) {
                    if n == 0 {
                        break;
                    }
                    if conn.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        });
        let mut plan = ChaosPlan::off(9);
        plan.corrupt_prob = 1.0; // every chunk, both directions
        let proxy = ChaosProxy::start(&upstream_addr.to_string(), plan).expect("proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        let sent = b"AAAAAAAAAAAAAAAAAAAAAAAA";
        client.write_all(sent).expect("write");
        let mut echoed = [0u8; 24];
        client.read_exact(&mut echoed).expect("read");
        // Two traversals, each flipping one byte: the echo cannot equal
        // the original (flips hit one byte per chunk per direction, and
        // a double-flip of the same byte would require the same index
        // twice from independent streams — possible, so just assert the
        // counter, which is the deterministic part).
        let snap = proxy.stop();
        assert!(snap.corruptions >= 2, "{snap:?}");
    }
}
