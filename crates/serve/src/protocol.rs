//! The line-delimited JSON wire protocol.
//!
//! Every frame is one JSON object on one line. Clients send
//! [`ClientFrame`]s; the server answers with [`ServerFrame`]s plus
//! *result frames*, which are assembled by [`result_frame`] rather than
//! serde so the serialised
//! [`SearchOutcome`](dalut_core::SearchOutcome) bytes can be spliced in
//! verbatim: the cache stores exactly the text the cold path produced,
//! making a cached response's outcome section byte-identical to the
//! cold response — the property `loadgen` and the serve tests assert.
//!
//! Result frames carry an end-to-end CRC-32 over `id|fingerprint|outcome`
//! so a client can detect bytes corrupted in transit (or by a faulty
//! proxy) without trusting TCP alone; error frames carry a
//! machine-readable [`RejectCode`] plus an explicit `retryable` flag and
//! an optional `retry_after_ms` back-off hint, so clients classify
//! failures without string-matching messages.
//!
//! ```text
//! client → server
//!   {"type":"submit","id":1,"client":"alice","stream":false,"spec":{...}}
//!   {"type":"cancel","id":1}
//!   {"type":"stats"}
//!
//! server → client
//!   {"type":"hello","schema":"dalut-serve/v1","workers":4,"cached_entries":17,
//!    "cache_skipped":0,"degraded":false}
//!   {"type":"event","id":1,"event":{"type":"round_finished",...}}
//!   {"type":"result","id":1,"cached":true,"fingerprint":"…32 hex…",
//!    "crc":123456789,"outcome":{...}}
//!   {"type":"error","id":1,"code":"overloaded","retryable":true,
//!    "retry_after_ms":800,"message":"..."}
//!   {"type":"stats","stats":{...}}
//! ```
//!
//! The response-side parsers in this module ([`parse_result_frame`],
//! [`parse_error_frame`]) are hand-rolled scanners rather than serde:
//! they must classify *corrupted* lines without panicking, and they must
//! work in environments where the JSON library is stubbed (the offline
//! build container).

use dalut_core::{crc32, FunctionFingerprint, JobSpec, SearchEvent};
use serde::{Deserialize, Serialize};

/// Protocol schema tag, sent in the hello frame.
pub const PROTOCOL_SCHEMA: &str = "dalut-serve/v1";

/// A frame sent by a client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ClientFrame {
    /// Submit one job. `id` is client-chosen and echoed on every frame
    /// concerning this job; `client` names the fairness bucket (defaults
    /// to a per-connection identity); `stream` requests progress events.
    Submit {
        /// Client-chosen request id, echoed back.
        id: u64,
        /// Fairness-bucket name (optional; defaults per connection).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        client: Option<String>,
        /// Stream `SearchEvent` progress frames for this job.
        #[serde(default)]
        stream: bool,
        /// The work itself (boxed: a spec dwarfs the other variants).
        spec: Box<JobSpec>,
    },
    /// Best-effort cancellation of a previously submitted job (same
    /// connection, same `id`). The job still gets a result frame — a
    /// truthful best-so-far outcome with `termination: "Cancelled"`.
    Cancel {
        /// The id from the submit frame.
        id: u64,
    },
    /// Request a server statistics frame.
    Stats,
}

/// A serde-built frame sent by the server (result frames are assembled
/// by [`result_frame`] instead — see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ServerFrame {
    /// First frame on every connection.
    Hello {
        /// [`PROTOCOL_SCHEMA`].
        schema: String,
        /// Search worker threads.
        workers: usize,
        /// Entries warm in the config cache.
        cached_entries: usize,
        /// Cache files skipped at open (unparsable + checksum-failed).
        #[serde(default)]
        cache_skipped: u64,
        /// True when the cache fell back to memory-only mode because its
        /// directory was unreadable or unwritable.
        #[serde(default)]
        degraded: bool,
    },
    /// One search progress event for a streaming job.
    Event {
        /// The submit id.
        id: u64,
        /// The event.
        event: SearchEvent,
    },
    /// The job failed or was refused (parse error, admission limit,
    /// invalid spec, drain in progress).
    Error {
        /// The submit id (0 when the frame could not be parsed).
        id: u64,
        /// Machine-readable cause (a [`RejectCode`] string).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        code: Option<String>,
        /// Whether resubmitting the identical job may succeed.
        #[serde(default)]
        retryable: bool,
        /// Back-off hint attached to overload sheds.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        retry_after_ms: Option<u64>,
        /// Human-readable cause.
        message: String,
    },
    /// Server statistics snapshot.
    Stats {
        /// The counters.
        stats: ServerStats,
    },
}

/// Scheduler counters reported by the stats frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Jobs accepted for execution (cold leaders).
    pub submitted: u64,
    /// Jobs answered straight from the config cache.
    pub cache_hits: u64,
    /// Jobs coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Jobs refused by admission control or drain.
    pub rejected: u64,
    /// Searches finished (however terminated).
    pub completed: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Searches currently running on workers.
    pub running: u64,
    /// Jobs shed by overload control (subset of `rejected`).
    #[serde(default)]
    pub shed: u64,
    /// Fingerprints quarantined after repeated worker panics.
    #[serde(default)]
    pub quarantined: u64,
    /// Worker panics caught and converted to error frames.
    #[serde(default)]
    pub panics: u64,
    /// Connection-level frame rejects (unparsable or over-length lines).
    #[serde(default)]
    pub frame_rejects: u64,
    /// Cache files skipped at open as unparsable (not ours / unreadable).
    #[serde(default)]
    pub cache_skipped_unparsable: u64,
    /// Cache files quarantined at open for failing their checksum.
    #[serde(default)]
    pub cache_skipped_corrupt: u64,
}

/// Machine-readable cause carried by server error frames, classifying
/// each reject as retryable (transient server state: resubmitting the
/// identical job may succeed) or fatal (deterministic: it will not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RejectCode {
    /// The line was not a parseable client frame — possibly corrupted in
    /// transit, so a clean resend may succeed.
    BadFrame,
    /// A line exceeded the server's frame-length cap.
    FrameTooLong,
    /// A partial line stalled past the server's frame deadline
    /// (slow-loris defence) — the connection is closed after this frame.
    Deadline,
    /// Admission control shed the job under overload; the frame carries
    /// a `retry_after_ms` hint.
    Overloaded,
    /// The server is draining for shutdown.
    Draining,
    /// The spec failed canonicalisation or validation.
    InvalidSpec,
    /// The job's fingerprint is poison-quarantined after repeated worker
    /// panics; it is fast-rejected instead of re-run.
    Quarantined,
    /// The worker running this job panicked (first offences are
    /// retryable; repeat offenders become [`RejectCode::Quarantined`]).
    Panic,
    /// The search itself returned a typed error.
    SearchFailed,
}

impl RejectCode {
    /// The wire string for this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::BadFrame => "bad_frame",
            Self::FrameTooLong => "frame_too_long",
            Self::Deadline => "deadline",
            Self::Overloaded => "overloaded",
            Self::Draining => "draining",
            Self::InvalidSpec => "invalid_spec",
            Self::Quarantined => "quarantined",
            Self::Panic => "panic",
            Self::SearchFailed => "search_failed",
        }
    }

    /// Parses a wire string back into a code.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "bad_frame" => Self::BadFrame,
            "frame_too_long" => Self::FrameTooLong,
            "deadline" => Self::Deadline,
            "overloaded" => Self::Overloaded,
            "draining" => Self::Draining,
            "invalid_spec" => Self::InvalidSpec,
            "quarantined" => Self::Quarantined,
            "panic" => Self::Panic,
            "search_failed" => Self::SearchFailed,
            _ => return None,
        })
    }

    /// Whether resubmitting the identical job may succeed.
    #[must_use]
    pub fn retryable(self) -> bool {
        matches!(
            self,
            Self::BadFrame | Self::Deadline | Self::Overloaded | Self::Draining | Self::Panic
        )
    }
}

impl std::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Escapes quotes and backslashes for splicing into a hand-assembled
/// JSON string value (control characters are not expected in any frame
/// field, and messages are built server-side from error `Display`s).
#[must_use]
pub fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The CRC-32 every result frame carries: over `id|fingerprint|outcome`
/// so corrupting any of the three (or the CRC itself) is detectable.
#[must_use]
pub fn result_frame_crc(id: u64, fingerprint_hex: &str, outcome_json: &str) -> u32 {
    crc32(format!("{id}|{fingerprint_hex}|{outcome_json}").as_bytes())
}

/// Assembles a result frame, splicing `outcome_json` in verbatim so the
/// outcome bytes are identical whether they come from a fresh search,
/// the in-memory cache, the on-disk cache or a coalesced leader.
#[must_use]
pub fn result_frame(
    id: u64,
    cached: bool,
    fingerprint: &FunctionFingerprint,
    outcome_json: &str,
) -> String {
    let fp = fingerprint.to_string();
    let crc = result_frame_crc(id, &fp, outcome_json);
    format!(
        "{{\"type\":\"result\",\"id\":{id},\"cached\":{cached},\
         \"fingerprint\":\"{fp}\",\"crc\":{crc},\"outcome\":{outcome_json}}}"
    )
}

/// Assembles an error frame by hand for the same reason as
/// [`result_frame`]: it must be emittable even where the JSON library is
/// stubbed. `retryable` is derived from the code; `retry_after_ms` is
/// attached only when given (overload sheds).
#[must_use]
pub fn reject_frame(
    id: u64,
    code: RejectCode,
    retry_after_ms: Option<u64>,
    message: &str,
) -> String {
    let hint = retry_after_ms.map_or_else(String::new, |ms| format!("\"retry_after_ms\":{ms},"));
    format!(
        "{{\"type\":\"error\",\"id\":{id},\"code\":\"{code}\",\"retryable\":{},\
         {hint}\"message\":\"{}\"}}",
        code.retryable(),
        escape_json(message),
    )
}

/// The verbatim outcome bytes of a [`result_frame`]: everything between
/// the `"outcome":` key and the frame's closing brace. Byte-identity of
/// cached vs cold responses is asserted over this section (the `cached`
/// flag itself necessarily differs).
#[must_use]
pub fn outcome_section(frame: &str) -> Option<&str> {
    const KEY: &str = "\"outcome\":";
    let start = frame.find(KEY)? + KEY.len();
    let end = frame.rfind('}')?;
    (start <= end).then(|| &frame[start..end])
}

/// A result frame picked apart by [`parse_result_frame`]. Borrows the
/// line; call [`crc_ok`](Self::crc_ok) before trusting the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedResult<'a> {
    /// The echoed submit id.
    pub id: u64,
    /// Whether the server answered from its cache.
    pub cached: bool,
    /// The job fingerprint, as its 32-hex display form.
    pub fingerprint: &'a str,
    /// The frame's claimed CRC-32 (see [`result_frame_crc`]).
    pub crc: u32,
    /// The verbatim outcome JSON.
    pub outcome: &'a str,
}

impl ParsedResult<'_> {
    /// Recomputes the CRC over the parsed fields and compares it with
    /// the frame's claim; `false` means the line was corrupted somewhere
    /// between the scheduler and this parser.
    #[must_use]
    pub fn crc_ok(&self) -> bool {
        result_frame_crc(self.id, self.fingerprint, self.outcome) == self.crc
    }
}

/// An error frame picked apart by [`parse_error_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedReject<'a> {
    /// The echoed submit id (0 for connection-level rejects).
    pub id: u64,
    /// The machine-readable cause, when the frame carried a known code.
    pub code: Option<RejectCode>,
    /// Whether the server marked the reject retryable. Frames without
    /// the flag fall back to the code's classification, else fatal.
    pub retryable: bool,
    /// Back-off hint, when the server attached one.
    pub retry_after_ms: Option<u64>,
    /// The human-readable message (up to its first unescaped quote).
    pub message: &'a str,
}

/// Parses a result frame without serde and without panicking on any
/// input. Returns `None` for lines that are not structurally a result
/// frame; a `Some` still needs [`ParsedResult::crc_ok`] before the
/// outcome bytes can be trusted.
#[must_use]
pub fn parse_result_frame(line: &str) -> Option<ParsedResult<'_>> {
    let line = line.trim();
    if !line.starts_with("{\"type\":\"result\"") {
        return None;
    }
    Some(ParsedResult {
        id: field_u64(line, "id")?,
        cached: field_bool(line, "cached")?,
        fingerprint: field_str(line, "fingerprint")?,
        crc: u32::try_from(field_u64(line, "crc")?).ok()?,
        outcome: outcome_section(line)?,
    })
}

/// Parses an error frame without serde and without panicking on any
/// input. Returns `None` for lines that are not structurally an error
/// frame.
#[must_use]
pub fn parse_error_frame(line: &str) -> Option<ParsedReject<'_>> {
    let line = line.trim();
    if !line.starts_with("{\"type\":\"error\"") {
        return None;
    }
    let code = field_str(line, "code").and_then(RejectCode::parse);
    let retryable =
        field_bool(line, "retryable").unwrap_or_else(|| code.is_some_and(RejectCode::retryable));
    Some(ParsedReject {
        id: field_u64(line, "id")?,
        code,
        retryable,
        retry_after_ms: field_u64(line, "retry_after_ms"),
        message: field_str(line, "message").unwrap_or(""),
    })
}

/// Scans `frame` for `"key":<digits>`. First occurrence wins, which is
/// the frame's own field for every [`ServerFrame`] layout (outcome
/// bytes, which could echo a key, come last).
#[must_use]
pub fn field_u64(frame: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = frame.find(&pat)? + pat.len();
    let end = frame[start..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(frame.len(), |i| start + i);
    frame[start..end].parse().ok()
}

/// Scans `frame` for `"key":true|false`.
#[must_use]
pub fn field_bool(frame: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let rest = &frame[frame.find(&pat)? + pat.len()..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Scans `frame` for `"key":"<value>"`, returning the raw (still
/// escaped) value up to its first unescaped quote.
#[must_use]
pub fn field_str<'a>(frame: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = frame.find(&pat)? + pat.len();
    let bytes = frame.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&frame[start..i]),
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_frames_splice_outcome_bytes_verbatim() {
        let fp = FunctionFingerprint { hi: 1, lo: 2 };
        let outcome = r#"{"med":0.5,"elapsed":{"secs":1,"nanos":0}}"#;
        let cold = result_frame(7, false, &fp, outcome);
        let warm = result_frame(8, true, &fp, outcome);
        assert!(cold.starts_with("{\"type\":\"result\",\"id\":7,\"cached\":false,"));
        assert!(warm.contains("\"cached\":true"));
        assert_eq!(outcome_section(&cold), Some(outcome));
        assert_eq!(outcome_section(&cold), outcome_section(&warm));
        // One line, one object.
        assert!(!cold.contains('\n'));
        assert!(cold.ends_with('}'));
    }

    #[test]
    fn outcome_section_handles_malformed_frames() {
        assert_eq!(outcome_section("{\"type\":\"error\"}"), None);
        assert_eq!(outcome_section(""), None);
    }

    #[test]
    fn result_frame_crc_round_trips_and_detects_corruption() {
        let fp = FunctionFingerprint { hi: 3, lo: 9 };
        let frame = result_frame(42, false, &fp, r#"{"med":0.25,"iterations":10}"#);
        let parsed = parse_result_frame(&frame).expect("parses");
        assert_eq!(parsed.id, 42);
        assert!(!parsed.cached);
        assert_eq!(parsed.fingerprint, fp.to_string());
        assert!(parsed.crc_ok(), "fresh frame must verify: {frame}");

        // Flip one byte inside the outcome: the CRC must catch it.
        let corrupted = frame.replace("0.25", "0.35");
        let parsed = parse_result_frame(&corrupted).expect("still structurally a result");
        assert!(!parsed.crc_ok(), "corrupted outcome must fail: {corrupted}");

        // Corrupting the id is equally detectable (the CRC binds it).
        let reid = frame.replace("\"id\":42", "\"id\":43");
        let parsed = parse_result_frame(&reid).expect("parses");
        assert!(!parsed.crc_ok());
    }

    #[test]
    fn reject_frames_carry_code_retryable_and_hint() {
        let shed = reject_frame(5, RejectCode::Overloaded, Some(800), "at capacity");
        assert!(shed.contains("\"code\":\"overloaded\""), "{shed}");
        assert!(shed.contains("\"retryable\":true"), "{shed}");
        assert!(shed.contains("\"retry_after_ms\":800"), "{shed}");
        let parsed = parse_error_frame(&shed).expect("parses");
        assert_eq!(parsed.id, 5);
        assert_eq!(parsed.code, Some(RejectCode::Overloaded));
        assert!(parsed.retryable);
        assert_eq!(parsed.retry_after_ms, Some(800));
        assert_eq!(parsed.message, "at capacity");

        let fatal = reject_frame(6, RejectCode::InvalidSpec, None, "unknown benchmark \"x\"");
        assert!(!fatal.contains("retry_after_ms"), "{fatal}");
        let parsed = parse_error_frame(&fatal).expect("parses");
        assert!(!parsed.retryable);
        assert_eq!(parsed.code, Some(RejectCode::InvalidSpec));
        // The escaped quote stays inside the message scan.
        assert_eq!(parsed.message, "unknown benchmark \\\"x\\\"");
    }

    #[test]
    fn reject_codes_round_trip_their_wire_strings() {
        for code in [
            RejectCode::BadFrame,
            RejectCode::FrameTooLong,
            RejectCode::Deadline,
            RejectCode::Overloaded,
            RejectCode::Draining,
            RejectCode::InvalidSpec,
            RejectCode::Quarantined,
            RejectCode::Panic,
            RejectCode::SearchFailed,
        ] {
            assert_eq!(RejectCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(RejectCode::parse("no_such_code"), None);
    }

    #[test]
    fn parsers_return_none_on_garbage_without_panicking() {
        for line in [
            "",
            "garbage",
            "{\"type\":\"result\"}",
            "{\"type\":\"result\",\"id\":",
            "{\"type\":\"error\"}",
            "{\"type\":\"hello\",\"schema\":\"x\"}",
            "\u{7f}\u{0}binary\u{ff}",
            "{\"type\":\"result\",\"id\":99999999999999999999999999}",
        ] {
            let _ = parse_result_frame(line);
            let _ = parse_error_frame(line);
            let _ = field_u64(line, "id");
            let _ = field_bool(line, "cached");
            let _ = field_str(line, "fingerprint");
        }
        assert!(parse_result_frame("{\"type\":\"result\"}").is_none());
        // An error frame with no id field is not classifiable.
        assert!(parse_error_frame("{\"type\":\"error\"}").is_none());
        // Legacy error frames (id + message only) still classify: fatal.
        let legacy = parse_error_frame("{\"type\":\"error\",\"id\":3,\"message\":\"m\"}")
            .expect("legacy error frame parses");
        assert!(!legacy.retryable);
        assert_eq!(legacy.code, None);
    }
}
