//! The line-delimited JSON wire protocol.
//!
//! Every frame is one JSON object on one line. Clients send
//! [`ClientFrame`]s; the server answers with [`ServerFrame`]s plus
//! *result frames*, which are assembled by [`result_frame`] rather than
//! serde so the serialised
//! [`SearchOutcome`](dalut_core::SearchOutcome) bytes can be spliced in
//! verbatim: the cache stores exactly the text the cold path produced,
//! making a cached response's outcome section byte-identical to the
//! cold response — the property `loadgen` and the serve tests assert.
//!
//! ```text
//! client → server
//!   {"type":"submit","id":1,"client":"alice","stream":false,"spec":{...}}
//!   {"type":"cancel","id":1}
//!   {"type":"stats"}
//!
//! server → client
//!   {"type":"hello","schema":"dalut-serve/v1","workers":4,"cached_entries":17}
//!   {"type":"event","id":1,"event":{"type":"round_finished",...}}
//!   {"type":"result","id":1,"cached":true,"fingerprint":"…32 hex…","outcome":{...}}
//!   {"type":"error","id":1,"message":"..."}
//!   {"type":"stats","stats":{...}}
//! ```

use dalut_core::{FunctionFingerprint, JobSpec, SearchEvent};
use serde::{Deserialize, Serialize};

/// Protocol schema tag, sent in the hello frame.
pub const PROTOCOL_SCHEMA: &str = "dalut-serve/v1";

/// A frame sent by a client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ClientFrame {
    /// Submit one job. `id` is client-chosen and echoed on every frame
    /// concerning this job; `client` names the fairness bucket (defaults
    /// to a per-connection identity); `stream` requests progress events.
    Submit {
        /// Client-chosen request id, echoed back.
        id: u64,
        /// Fairness-bucket name (optional; defaults per connection).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        client: Option<String>,
        /// Stream `SearchEvent` progress frames for this job.
        #[serde(default)]
        stream: bool,
        /// The work itself (boxed: a spec dwarfs the other variants).
        spec: Box<JobSpec>,
    },
    /// Best-effort cancellation of a previously submitted job (same
    /// connection, same `id`). The job still gets a result frame — a
    /// truthful best-so-far outcome with `termination: "Cancelled"`.
    Cancel {
        /// The id from the submit frame.
        id: u64,
    },
    /// Request a server statistics frame.
    Stats,
}

/// A serde-built frame sent by the server (result frames are assembled
/// by [`result_frame`] instead — see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ServerFrame {
    /// First frame on every connection.
    Hello {
        /// [`PROTOCOL_SCHEMA`].
        schema: String,
        /// Search worker threads.
        workers: usize,
        /// Entries warm in the config cache.
        cached_entries: usize,
    },
    /// One search progress event for a streaming job.
    Event {
        /// The submit id.
        id: u64,
        /// The event.
        event: SearchEvent,
    },
    /// The job failed or was refused (parse error, admission limit,
    /// invalid spec, drain in progress).
    Error {
        /// The submit id (0 when the frame could not be parsed).
        id: u64,
        /// Human-readable cause.
        message: String,
    },
    /// Server statistics snapshot.
    Stats {
        /// The counters.
        stats: ServerStats,
    },
}

/// Scheduler counters reported by the stats frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Jobs accepted for execution (cold leaders).
    pub submitted: u64,
    /// Jobs answered straight from the config cache.
    pub cache_hits: u64,
    /// Jobs coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Jobs refused by admission control or drain.
    pub rejected: u64,
    /// Searches finished (however terminated).
    pub completed: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Searches currently running on workers.
    pub running: u64,
}

/// Assembles a result frame, splicing `outcome_json` in verbatim so the
/// outcome bytes are identical whether they come from a fresh search,
/// the in-memory cache, the on-disk cache or a coalesced leader.
#[must_use]
pub fn result_frame(
    id: u64,
    cached: bool,
    fingerprint: &FunctionFingerprint,
    outcome_json: &str,
) -> String {
    format!(
        "{{\"type\":\"result\",\"id\":{id},\"cached\":{cached},\
         \"fingerprint\":\"{fingerprint}\",\"outcome\":{outcome_json}}}"
    )
}

/// The verbatim outcome bytes of a [`result_frame`]: everything between
/// the `"outcome":` key and the frame's closing brace. Byte-identity of
/// cached vs cold responses is asserted over this section (the `cached`
/// flag itself necessarily differs).
#[must_use]
pub fn outcome_section(frame: &str) -> Option<&str> {
    const KEY: &str = "\"outcome\":";
    let start = frame.find(KEY)? + KEY.len();
    let end = frame.rfind('}')?;
    (start <= end).then(|| &frame[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_frames_splice_outcome_bytes_verbatim() {
        let fp = FunctionFingerprint { hi: 1, lo: 2 };
        let outcome = r#"{"med":0.5,"elapsed":{"secs":1,"nanos":0}}"#;
        let cold = result_frame(7, false, &fp, outcome);
        let warm = result_frame(8, true, &fp, outcome);
        assert!(cold.starts_with("{\"type\":\"result\",\"id\":7,\"cached\":false,"));
        assert!(warm.contains("\"cached\":true"));
        assert_eq!(outcome_section(&cold), Some(outcome));
        assert_eq!(outcome_section(&cold), outcome_section(&warm));
        // One line, one object.
        assert!(!cold.contains('\n'));
        assert!(cold.ends_with('}'));
    }

    #[test]
    fn outcome_section_handles_malformed_frames() {
        assert_eq!(outcome_section("{\"type\":\"error\"}"), None);
        assert_eq!(outcome_section(""), None);
    }
}
