//! Graceful-shutdown signal handling for the server and harness binaries.
//!
//! Lives here (rather than in `dalut-bench`, which re-exports it) so the
//! server's drain path and the benchmark binaries share one handler.
//!
//! [`install`] registers a process-level SIGINT/SIGTERM handler wired to
//! the run's [`CancelToken`]: the **first** signal trips the token, so the
//! search winds down cooperatively, the supervisor flushes a final
//! checkpoint and the binary writes best-so-far results before exiting
//! nonzero with `Termination::Cancelled`; a **second** signal hard-exits
//! immediately (status 130) for when the wind-down itself hangs.
//!
//! The handler body is strictly async-signal-safe: it performs two atomic
//! stores and (on the second signal) calls `_exit`. All narration —
//! the `ShutdownRequested` observer event, stderr messages — happens on
//! the main thread, which polls [`requested_signal`].
//!
//! On non-Unix targets [`install`] is a no-op returning `false`; Ctrl-C
//! then terminates the process the default way.

use dalut_core::CancelToken;
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU32, Ordering};
use std::sync::OnceLock;

/// How many shutdown signals have arrived.
static SIGNAL_COUNT: AtomicU32 = AtomicU32::new(0);
/// The first signal's number (0 = none yet).
static SIGNAL_NUMBER: AtomicI32 = AtomicI32::new(0);
/// Whether the main thread has already consumed the notification.
static REPORTED: AtomicBool = AtomicBool::new(false);
/// The token the handler trips. `CancelToken::cancel` is one relaxed
/// atomic store, which is async-signal-safe; `OnceLock::get` on an
/// already-initialised lock is a plain atomic load.
static TOKEN: OnceLock<CancelToken> = OnceLock::new();

#[cfg(unix)]
mod sys {
    use std::sync::atomic::Ordering;

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    const SIG_ERR: usize = usize::MAX;

    // Bind the C library's `signal(2)` and `_exit(2)` directly — std
    // already links libc, and this avoids an external crate for two
    // symbols.
    #[allow(unsafe_code)]
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(status: i32) -> !;
    }

    /// The installed handler. Only async-signal-safe operations: atomic
    /// loads/stores and `_exit`.
    extern "C" fn on_signal(signum: i32) {
        if super::SIGNAL_COUNT.fetch_add(1, Ordering::SeqCst) == 0 {
            super::SIGNAL_NUMBER.store(signum, Ordering::SeqCst);
            if let Some(token) = super::TOKEN.get() {
                token.cancel();
            }
        } else {
            // Second signal: the cooperative wind-down is taking too long
            // (or is stuck) — exit now, the way shells expect (128 + SIGINT).
            #[allow(unsafe_code)]
            unsafe {
                _exit(130)
            };
        }
    }

    /// Registers `on_signal` for SIGINT and SIGTERM. Returns `false` if
    /// either registration was refused.
    pub fn register() -> bool {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal(2)` with a function pointer whose body is
        // async-signal-safe (atomics + `_exit` only, as above).
        #[allow(unsafe_code)]
        unsafe {
            signal(SIGINT, handler) != SIG_ERR && signal(SIGTERM, handler) != SIG_ERR
        }
    }
}

/// Wires SIGINT/SIGTERM to `token` (first signal cancels, second
/// hard-exits with status 130) and returns whether handlers were
/// installed. Call once, early in `main`, with the token the run's
/// `RunBudget` carries. Repeat calls keep the first token.
pub fn install(token: &CancelToken) -> bool {
    let _ = TOKEN.set(token.clone());
    #[cfg(unix)]
    {
        sys::register()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// The name of the first shutdown signal received, if any (`"SIGINT"`,
/// `"SIGTERM"`, or `"signal <n>"` for anything unexpected).
#[must_use]
pub fn requested_signal() -> Option<&'static str> {
    if SIGNAL_COUNT.load(Ordering::SeqCst) == 0 {
        return None;
    }
    #[cfg(unix)]
    {
        match SIGNAL_NUMBER.load(Ordering::SeqCst) {
            sys::SIGINT => Some("SIGINT"),
            sys::SIGTERM => Some("SIGTERM"),
            _ => Some("signal"),
        }
    }
    #[cfg(not(unix))]
    {
        Some("signal")
    }
}

/// Like [`requested_signal`], but reports each shutdown request only
/// once — the first caller after a signal gets `Some`, later callers get
/// `None`. Binaries use this to emit a single `ShutdownRequested` event.
#[must_use]
pub fn take_requested_signal() -> Option<&'static str> {
    let name = requested_signal()?;
    (!REPORTED.swap(true, Ordering::SeqCst)).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Signal state is process-global, so everything lives in one test.
    #[test]
    fn install_wires_token_and_reports_signals_once() {
        let token = CancelToken::new();
        assert!(requested_signal().is_none());
        assert!(take_requested_signal().is_none());

        #[cfg(unix)]
        {
            assert!(install(&token));
            // Raise a real SIGINT at ourselves: the handler must trip the
            // token without killing the process.
            #[allow(unsafe_code)]
            {
                extern "C" {
                    fn raise(signum: i32) -> i32;
                }
                // SAFETY: raising a signal we installed a handler for.
                unsafe {
                    assert_eq!(raise(sys::SIGINT), 0);
                }
            }
            assert!(token.is_cancelled());
            assert_eq!(requested_signal(), Some("SIGINT"));
            assert_eq!(take_requested_signal(), Some("SIGINT"));
            assert!(take_requested_signal().is_none(), "reported only once");
        }
        #[cfg(not(unix))]
        {
            assert!(!install(&token));
        }
    }
}
