//! The `dalut-serve` binary: bind, install signal handlers, run.
//!
//! ```text
//! dalut-serve [--addr HOST:PORT] [--cache-dir DIR] [--workers N]
//!             [--max-inflight N] [--max-queued-per-client N]
//!             [--max-frame-len BYTES] [--frame-deadline-ms MS]
//!             [--idle-timeout-ms MS] [--write-timeout-ms MS]
//! ```
//!
//! Prints one `dalut-serve listening on <addr>` line to stdout once the
//! listener is bound (the CI smoke test and `loadgen` wait for it), then
//! serves until SIGINT/SIGTERM. The first signal starts a graceful
//! drain — accepted jobs still get result frames, the on-disk cache
//! stays complete — and the process exits 0; a second signal hard-exits
//! 130.

use dalut_serve::shutdown;
use dalut_serve::{AdmissionLimits, Server, ServerConfig};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("dalut-serve: {message}");
            eprintln!(
                "usage: dalut-serve [--addr HOST:PORT] [--cache-dir DIR] [--workers N] \
                 [--max-inflight N] [--max-queued-per-client N] [--max-frame-len BYTES] \
                 [--frame-deadline-ms MS] [--idle-timeout-ms MS] [--write-timeout-ms MS]"
            );
            return ExitCode::from(2);
        }
    };

    let server = match Server::bind(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dalut-serve: bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };

    let token = server.shutdown_token();
    shutdown::install(&token);

    match server.local_addr() {
        Ok(addr) => {
            // Parsed by loadgen and the CI smoke test: flush so a piped
            // stdout delivers it before the first connection arrives.
            println!(
                "dalut-serve listening on {addr} (workers={}, cache={})",
                config.workers,
                config
                    .cache_dir
                    .as_deref()
                    .map_or_else(|| "memory".to_string(), |d| d.display().to_string()),
            );
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("dalut-serve: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }

    match server.run() {
        Ok(()) => {
            if let Some(signal) = shutdown::take_requested_signal() {
                eprintln!("dalut-serve: {signal} received, drained cleanly");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dalut-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut limits = AdmissionLimits::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--workers" => {
                config.workers = parse_num(&value("--workers")?, "--workers")?;
            }
            "--max-inflight" => {
                limits.max_inflight = parse_num(&value("--max-inflight")?, "--max-inflight")?;
            }
            "--max-queued-per-client" => {
                limits.max_queued_per_client = parse_num(
                    &value("--max-queued-per-client")?,
                    "--max-queued-per-client",
                )?;
            }
            "--max-frame-len" => {
                config.max_frame_len = parse_num(&value("--max-frame-len")?, "--max-frame-len")?;
            }
            "--frame-deadline-ms" => {
                config.frame_deadline = std::time::Duration::from_millis(parse_num(
                    &value("--frame-deadline-ms")?,
                    "--frame-deadline-ms",
                )? as u64);
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = std::time::Duration::from_millis(parse_num(
                    &value("--idle-timeout-ms")?,
                    "--idle-timeout-ms",
                )? as u64);
            }
            "--write-timeout-ms" => {
                config.write_timeout = std::time::Duration::from_millis(parse_num(
                    &value("--write-timeout-ms")?,
                    "--write-timeout-ms",
                )? as u64);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    config.limits = limits;
    Ok(config)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    let n: usize = text
        .parse()
        .map_err(|_| format!("{flag}: '{text}' is not a number"))?;
    if n == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(n)
}
