//! # dalut-serve
//!
//! Decomposition-as-a-service: a long-running server that accepts
//! [`JobSpec`](dalut_core::JobSpec)s over a line-delimited JSON protocol,
//! schedules budgeted searches across a worker pool with admission
//! control and per-client fairness, streams
//! [`SearchEvent`](dalut_core::SearchEvent) progress frames, and fronts
//! everything with a content-addressed cache of finished configurations
//! keyed by [`FunctionFingerprint`](dalut_core::FunctionFingerprint).
//!
//! The stack is deliberately dependency-free: a `std::net` TCP listener
//! with one lightweight thread per connection and a fixed worker pool,
//! rather than an async runtime, because the container the reproduction
//! builds in ships no external crates. The protocol, scheduling and
//! cache layers are runtime-agnostic — an async front-end can replace
//! [`server`] without touching them.
//!
//! - [`protocol`] — client/server frame types and the byte-splice
//!   assembly that keeps cached responses byte-identical to cold ones.
//! - [`cache`] — the content-addressed [`ConfigCache`]: in-memory map
//!   plus crash-safe on-disk entries that survive a kill+restart.
//! - [`scheduler`] — admission control, per-client round-robin
//!   fairness, in-flight coalescing and the worker pool.
//! - [`server`] — the TCP front-end and connection threads.
//! - [`shutdown`] — async-signal-safe SIGINT/SIGTERM handling (moved
//!   here from `dalut-bench`, which re-exports it).

// `deny` rather than `forbid`: the `shutdown` module registers POSIX
// signal handlers, which needs one audited `unsafe` block.
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod cache;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod shutdown;

pub use cache::{ConfigCache, CACHE_SCHEMA};
pub use protocol::{
    outcome_section, result_frame, ClientFrame, ServerFrame, ServerStats, PROTOCOL_SCHEMA,
};
pub use scheduler::{
    benchfns_resolver, AdmissionLimits, CollectSink, ResponseSink, Scheduler, SubmitOutcome,
};
pub use server::{Server, ServerConfig};
