//! # dalut-serve
//!
//! Decomposition-as-a-service: a long-running server that accepts
//! [`JobSpec`](dalut_core::JobSpec)s over a line-delimited JSON protocol,
//! schedules budgeted searches across a worker pool with admission
//! control and per-client fairness, streams
//! [`SearchEvent`](dalut_core::SearchEvent) progress frames, and fronts
//! everything with a content-addressed cache of finished configurations
//! keyed by [`FunctionFingerprint`](dalut_core::FunctionFingerprint).
//!
//! The stack is deliberately dependency-free: a `std::net` TCP listener
//! with one lightweight thread per connection and a fixed worker pool,
//! rather than an async runtime, because the container the reproduction
//! builds in ships no external crates. The protocol, scheduling and
//! cache layers are runtime-agnostic — an async front-end can replace
//! [`server`] without touching them.
//!
//! - [`protocol`] — client/server frame types, the byte-splice assembly
//!   that keeps cached responses byte-identical to cold ones, CRC'd
//!   result frames, typed reject codes and panic-free response parsers.
//! - [`cache`] — the content-addressed [`ConfigCache`]: in-memory map
//!   plus crash-safe, CRC-checksummed on-disk entries that survive a
//!   kill+restart, quarantine corruption and degrade to memory-only.
//! - [`scheduler`] — admission control, per-client round-robin
//!   fairness, in-flight coalescing, the worker pool, panic isolation
//!   with poison quarantine, and overload shedding.
//! - [`server`] — the TCP front-end and connection threads, with frame
//!   length caps, frame deadlines and idle timeouts.
//! - [`chaos`] — a deterministic fault-injecting proxy ([`ChaosProxy`])
//!   for testing everything above under injected failure.
//! - [`shutdown`] — async-signal-safe SIGINT/SIGTERM handling (moved
//!   here from `dalut-bench`, which re-exports it).

// `deny` rather than `forbid`: the `shutdown` module registers POSIX
// signal handlers, which needs one audited `unsafe` block.
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod shutdown;

pub use cache::{CacheLoadReport, ConfigCache, CACHE_SCHEMA};
pub use chaos::{ChaosPlan, ChaosProxy, ChaosSnapshot, ChaosStats, SplitMix64};
pub use protocol::{
    outcome_section, parse_error_frame, parse_result_frame, reject_frame, result_frame,
    result_frame_crc, ClientFrame, ParsedReject, ParsedResult, RejectCode, ServerFrame,
    ServerStats, PROTOCOL_SCHEMA,
};
pub use scheduler::{
    benchfns_resolver, AdmissionLimits, CollectSink, ResponseSink, Scheduler, SubmitOutcome,
};
pub use server::{Server, ServerConfig};
