//! Admission control, per-client fairness and the search worker pool.
//!
//! The [`Scheduler`] sits between the connection threads (which parse
//! frames and call [`Scheduler::submit`]) and a fixed pool of worker
//! threads running [`ApproxLutBuilder`] searches. A submitted job takes
//! one of four paths, decided under a single state lock:
//!
//! 1. **Cache hit** — the job's fingerprint is in the [`ConfigCache`];
//!    the stored bytes are replayed immediately on the *caller's*
//!    thread, so hits never queue behind searches.
//! 2. **Coalesce** — an identical job (same fingerprint) is already
//!    queued or running; this submission becomes a *follower* and gets a
//!    copy of the leader's result bytes when it finishes.
//! 3. **Queue** — the job joins its client's FIFO queue. Workers pull
//!    clients round-robin, so a client that floods the server only ever
//!    holds one worker-turn per rotation and cannot starve others.
//! 4. **Reject** — the server is draining, the spec is invalid, or an
//!    admission limit is exceeded; the caller gets an error frame and
//!    nothing is queued.

use crate::cache::ConfigCache;
use crate::protocol::{reject_frame, result_frame, RejectCode, ServerStats};
use dalut_core::{
    ApproxLutBuilder, CancelToken, DalutError, FunctionFingerprint, FunctionResolver, JobSpec,
    Observer, SearchEvent, Termination,
};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Panics observed for one fingerprint before it is quarantined: the
/// first panic is treated as possibly transient (the client may retry),
/// the second proves the job itself is poison and further submissions
/// are fast-rejected instead of re-run.
const POISON_THRESHOLD: u32 = 2;

/// A destination for server→client frames (one per connection; tests
/// and `loadgen` use [`CollectSink`]).
pub trait ResponseSink: Send + Sync {
    /// Delivers one frame (a single line of JSON, no trailing newline).
    /// Best-effort: a sink whose connection died just drops frames.
    fn send(&self, frame: &str);
}

/// A [`ResponseSink`] that appends every frame to a vector; used by the
/// in-process tests and by `loadgen`'s response accounting.
#[derive(Debug, Default)]
pub struct CollectSink {
    frames: Mutex<Vec<String>>,
}

impl CollectSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every frame delivered so far.
    #[must_use]
    pub fn frames(&self) -> Vec<String> {
        self.frames.lock().expect("sink lock").clone()
    }
}

impl ResponseSink for CollectSink {
    fn send(&self, frame: &str) {
        self.frames
            .lock()
            .expect("sink lock")
            .push(frame.to_string());
    }
}

/// Back-pressure limits enforced at submission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Cap on jobs accepted but not yet finished (queued + running +
    /// followers). Cache hits do not count — they finish inline.
    pub max_inflight: usize,
    /// Cap on one client's queued jobs; an aggressive client hits this
    /// long before it can exhaust `max_inflight` for everyone.
    pub max_queued_per_client: usize,
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        Self {
            max_inflight: 4096,
            max_queued_per_client: 1024,
        }
    }
}

/// How [`Scheduler::submit`] disposed of a job.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Answered inline from the config cache.
    CacheHit,
    /// Attached as a follower to an identical queued/running job.
    Coalesced,
    /// Queued for a worker; the token cancels this job specifically.
    Queued(CancelToken),
    /// Refused (invalid spec, admission limit, or draining); an error
    /// frame was already sent.
    Rejected,
}

/// One accepted, not-yet-run job.
struct Job {
    /// Scheduler-internal sequence number (unique across all clients;
    /// keys the active-token map — client-chosen `id`s may collide).
    seq: u64,
    id: u64,
    stream: bool,
    spec: JobSpec,
    fp: FunctionFingerprint,
    sink: Arc<dyn ResponseSink>,
    cancel: CancelToken,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("fp", &self.fp)
            .field("stream", &self.stream)
            .finish_non_exhaustive()
    }
}

/// A coalesced submission waiting for its leader's bytes.
struct Follower {
    id: u64,
    sink: Arc<dyn ResponseSink>,
}

/// Everything the state lock guards.
#[derive(Default)]
struct State {
    /// FIFO of queued jobs per fairness bucket.
    queues: HashMap<String, VecDeque<Job>>,
    /// Round-robin rotation of buckets with queued work.
    rotation: VecDeque<String>,
    /// Total queued jobs across all buckets.
    queued: usize,
    /// Jobs currently executing on workers.
    running: usize,
    /// Followers per queued-or-running fingerprint. Presence of a key
    /// means a leader exists, even with no followers yet.
    inflight: HashMap<FunctionFingerprint, Vec<Follower>>,
    /// Cancel tokens of currently running jobs, keyed by `Job::seq`
    /// (for drain).
    active: HashMap<u64, CancelToken>,
    /// Worker panics per fingerprint; at [`POISON_THRESHOLD`] the
    /// fingerprint is quarantined and fast-rejected.
    poisoned: HashMap<FunctionFingerprint, u32>,
    /// No new work accepted; workers exit once the queues empty.
    draining: bool,
}

/// The job scheduler: admission control, fairness, coalescing and the
/// worker pool. Shared via `Arc` between connection threads and
/// workers.
pub struct Scheduler {
    cache: Arc<ConfigCache>,
    limits: AdmissionLimits,
    resolver: Box<dyn FunctionResolver + Send + Sync>,
    observer: Arc<dyn Observer>,
    state: Mutex<State>,
    /// Signalled on enqueue and on drain.
    work_ready: Condvar,
    /// Signalled whenever the scheduler may have gone idle.
    idle: Condvar,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Worker threads spawned, for the shed back-off estimate.
    pool_size: AtomicU64,
    next_seq: AtomicU64,
    submitted: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    quarantined: AtomicU64,
    panics: AtomicU64,
    frame_rejects: AtomicU64,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("limits", &self.limits)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// A scheduler over `cache`, resolving named benchmark sources with
    /// `resolver` and reporting operational events (overload sheds,
    /// quarantines, corrupt cache entries) to `observer`. Call
    /// [`spawn_workers`](Self::spawn_workers) before submitting.
    #[must_use]
    pub fn new(
        cache: Arc<ConfigCache>,
        limits: AdmissionLimits,
        resolver: Box<dyn FunctionResolver + Send + Sync>,
        observer: Arc<dyn Observer>,
    ) -> Self {
        if observer.enabled() {
            for file in &cache.load_report().quarantined_files {
                observer.on_event(&SearchEvent::CacheEntryCorrupt { file: file.clone() });
            }
        }
        Self {
            cache,
            limits,
            resolver,
            observer,
            state: Mutex::new(State::default()),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            workers: Mutex::new(Vec::new()),
            pool_size: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            frame_rejects: AtomicU64::new(0),
        }
    }

    /// Starts `n` worker threads pulling from the queues.
    pub fn spawn_workers(self: &Arc<Self>, n: usize) {
        let mut workers = self.workers.lock().expect("workers lock");
        self.pool_size.fetch_add(n.max(1) as u64, Ordering::Relaxed);
        for i in 0..n.max(1) {
            let sched = Arc::clone(self);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dalut-worker-{i}"))
                    .spawn(move || sched.worker_loop())
                    .expect("spawn worker"),
            );
        }
    }

    /// Submits one job on behalf of `client` (the fairness bucket).
    /// Result/error frames go to `sink`; see [`SubmitOutcome`] for the
    /// four paths. Runs cache hits inline on the calling thread.
    pub fn submit(
        &self,
        client: &str,
        id: u64,
        stream: bool,
        spec: &JobSpec,
        sink: Arc<dyn ResponseSink>,
    ) -> SubmitOutcome {
        // Canonicalise first: the fingerprint, the cache key and the
        // runnable (table-form) spec all come from the canonical form.
        let canonical = match spec.canonicalize(self.resolver.as_ref()) {
            Ok(c) => c,
            Err(e) => {
                let msg = format!("invalid job spec: {e}");
                return self.reject(id, &sink, RejectCode::InvalidSpec, None, &msg);
            }
        };
        let fp = match canonical.fingerprint(self.resolver.as_ref()) {
            Ok(fp) => fp,
            Err(e) => {
                let msg = format!("invalid job spec: {e}");
                return self.reject(id, &sink, RejectCode::InvalidSpec, None, &msg);
            }
        };

        if let Some(bytes) = self.cache.get(&fp) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            sink.send(&result_frame(id, true, &fp, &bytes));
            return SubmitOutcome::CacheHit;
        }

        let cancel = CancelToken::new();
        {
            let mut state = self.state.lock().expect("state lock");
            if state.draining {
                drop(state);
                return self.reject(
                    id,
                    &sink,
                    RejectCode::Draining,
                    None,
                    "server is draining; job refused",
                );
            }
            if state.poisoned.get(&fp).copied().unwrap_or(0) >= POISON_THRESHOLD {
                drop(state);
                let msg = format!("fingerprint {fp} is quarantined after repeated worker panics");
                return self.reject(id, &sink, RejectCode::Quarantined, None, &msg);
            }
            if let Some(followers) = state.inflight.get_mut(&fp) {
                followers.push(Follower {
                    id,
                    sink: Arc::clone(&sink),
                });
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return SubmitOutcome::Coalesced;
            }
            if state.queued + state.running >= self.limits.max_inflight {
                let (queued, running) = (state.queued, state.running);
                drop(state);
                return self.shed(
                    id,
                    &sink,
                    queued,
                    running,
                    "admission limit: server at max in-flight jobs",
                );
            }
            let queue = state.queues.entry(client.to_string()).or_default();
            if queue.len() >= self.limits.max_queued_per_client {
                let (queued, running) = (state.queued, state.running);
                drop(state);
                return self.shed(
                    id,
                    &sink,
                    queued,
                    running,
                    "admission limit: client queue full",
                );
            }
            if queue.is_empty() {
                state.rotation.push_back(client.to_string());
            }
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            state
                .queues
                .get_mut(client)
                .expect("queue exists")
                .push_back(Job {
                    seq,
                    id,
                    stream,
                    spec: canonical,
                    fp,
                    sink,
                    cancel: cancel.clone(),
                });
            state.queued += 1;
            state.inflight.insert(fp, Vec::new());
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.work_ready.notify_one();
        SubmitOutcome::Queued(cancel)
    }

    /// Refuses new submissions and cancels every queued and running
    /// job's token; in-flight searches return their best-so-far outcome
    /// with `Termination::Cancelled`. Pair with
    /// [`wait_idle`](Self::wait_idle) +
    /// [`join_workers`](Self::join_workers) for a full stop.
    pub fn drain(&self) {
        let mut state = self.state.lock().expect("state lock");
        state.draining = true;
        for queue in state.queues.values() {
            for job in queue {
                job.cancel.cancel();
            }
        }
        for token in state.active.values() {
            token.cancel();
        }
        drop(state);
        self.work_ready.notify_all();
        self.idle.notify_all();
    }

    /// Blocks until no job is queued or running.
    pub fn wait_idle(&self) {
        let mut state = self.state.lock().expect("state lock");
        while state.queued > 0 || state.running > 0 {
            state = self.idle.wait(state).expect("state lock");
        }
    }

    /// Joins the worker threads. Only returns promptly after
    /// [`drain`](Self::drain); without it workers keep waiting for work.
    pub fn join_workers(&self) {
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// A snapshot of the scheduler's counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let (queued, running) = {
            let state = self.state.lock().expect("state lock");
            (state.queued as u64, state.running as u64)
        };
        let report = self.cache.load_report();
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            queued,
            running,
            shed: self.shed.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            frame_rejects: self.frame_rejects.load(Ordering::Relaxed),
            cache_skipped_unparsable: report.skipped_unparsable,
            cache_skipped_corrupt: report.skipped_corrupt,
        }
    }

    /// Counts one connection-level frame reject (unparsable or
    /// over-length line); the connection layer sends its own frame.
    pub fn note_frame_reject(&self) {
        self.frame_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// The config cache this scheduler answers hits from.
    #[must_use]
    pub fn cache(&self) -> &ConfigCache {
        &self.cache
    }

    fn reject(
        &self,
        id: u64,
        sink: &Arc<dyn ResponseSink>,
        code: RejectCode,
        retry_after_ms: Option<u64>,
        message: &str,
    ) -> SubmitOutcome {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        sink.send(&reject_frame(id, code, retry_after_ms, message));
        SubmitOutcome::Rejected
    }

    /// An overload reject: attaches a deterministic `retry_after_ms`
    /// back-off hint sized to the current backlog and emits an
    /// [`OverloadShed`](SearchEvent::OverloadShed) event.
    fn shed(
        &self,
        id: u64,
        sink: &Arc<dyn ResponseSink>,
        queued: usize,
        running: usize,
        message: &str,
    ) -> SubmitOutcome {
        let workers = self.pool_size.load(Ordering::Relaxed).max(1) as usize;
        let retry_after_ms = retry_after_hint(queued, running, workers);
        self.shed.fetch_add(1, Ordering::Relaxed);
        if self.observer.enabled() {
            self.observer.on_event(&SearchEvent::OverloadShed {
                queued,
                running,
                retry_after_ms,
            });
        }
        self.reject(
            id,
            sink,
            RejectCode::Overloaded,
            Some(retry_after_ms),
            message,
        )
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("state lock");
                loop {
                    if let Some(job) = next_job(&mut state) {
                        state.queued -= 1;
                        state.running += 1;
                        state.active.insert(job.seq, job.cancel.clone());
                        break job;
                    }
                    if state.draining {
                        return;
                    }
                    state = self.work_ready.wait(state).expect("state lock");
                }
            };
            self.run_job(job);
        }
    }

    fn run_job(&self, job: Job) {
        let budget = job.spec.budget.to_budget().with_cancel(&job.cancel);
        let streamer = StreamObserver {
            id: job.id,
            sink: Arc::clone(&job.sink),
        };
        // The search runs isolated: a panic in a kernel takes down this
        // job, not the worker thread or the server.
        let run = isolated(|| {
            ApproxLutBuilder::from_spec(&job.spec).and_then(|b| {
                let b = b.budget(budget);
                if job.stream { b.observer(&streamer) } else { b }.run()
            })
        });

        let followers = {
            let mut state = self.state.lock().expect("state lock");
            state.inflight.remove(&job.fp).unwrap_or_default()
        };

        match run {
            Ok(run) => self.finish_job(&job, followers, run),
            Err(panic_msg) => self.poison_job(&job, &followers, &panic_msg),
        }
        self.completed.fetch_add(1, Ordering::Relaxed);

        let mut state = self.state.lock().expect("state lock");
        state.running -= 1;
        state.active.remove(&job.seq);
        if state.queued == 0 && state.running == 0 {
            self.idle.notify_all();
        }
    }

    /// Delivers a non-panicking run's result or typed error frames.
    fn finish_job(
        &self,
        job: &Job,
        followers: Vec<Follower>,
        run: Result<dalut_core::SearchOutcome, DalutError>,
    ) {
        match run.and_then(|outcome| {
            serde_json::to_string(&outcome)
                .map(|json| (outcome, json))
                .map_err(|e| DalutError::Spec(format!("outcome serialisation failed: {e}")))
        }) {
            Ok((outcome, json)) => {
                // Only completed searches are worth replaying to future
                // clients; a budget-clipped or cancelled outcome would
                // pollute the cache with avoidably poor configurations.
                let bytes: Arc<str> = if outcome.termination == Termination::Completed {
                    self.cache.insert(job.fp, &json)
                } else {
                    Arc::from(json.as_str())
                };
                job.sink.send(&result_frame(job.id, false, &job.fp, &bytes));
                for follower in followers {
                    follower
                        .sink
                        .send(&result_frame(follower.id, true, &job.fp, &bytes));
                }
            }
            Err(e) => {
                let message = format!("search failed: {e}");
                job.sink.send(&reject_frame(
                    job.id,
                    RejectCode::SearchFailed,
                    None,
                    &message,
                ));
                for follower in followers {
                    follower.sink.send(&reject_frame(
                        follower.id,
                        RejectCode::SearchFailed,
                        None,
                        &message,
                    ));
                }
            }
        }
    }

    /// Books a worker panic against the job's fingerprint and answers
    /// with a `panic` (retryable) or, once the fingerprint crosses
    /// [`POISON_THRESHOLD`], a `quarantined` (fatal) reject.
    fn poison_job(&self, job: &Job, followers: &[Follower], panic_msg: &str) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        let panics = {
            let mut state = self.state.lock().expect("state lock");
            let n = state.poisoned.entry(job.fp).or_insert(0);
            *n += 1;
            *n
        };
        let code = if panics >= POISON_THRESHOLD {
            if panics == POISON_THRESHOLD {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                if self.observer.enabled() {
                    self.observer.on_event(&SearchEvent::JobQuarantined {
                        fingerprint: job.fp.to_string(),
                        panics,
                    });
                }
            }
            RejectCode::Quarantined
        } else {
            RejectCode::Panic
        };
        let message = format!("worker panicked running job: {panic_msg}");
        job.sink.send(&reject_frame(job.id, code, None, &message));
        for follower in followers {
            follower
                .sink
                .send(&reject_frame(follower.id, code, None, &message));
        }
    }
}

/// Runs `f` inside `catch_unwind`, converting a panic into its message.
/// `AssertUnwindSafe` is sound here because a panicking search's partial
/// state is discarded wholesale — nothing it touched is observed after.
fn isolated<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

/// A deterministic back-off hint for shed jobs: the backlog a worker
/// would have to clear before new work runs, at a nominal 100 ms per
/// job, clamped to a sane window.
fn retry_after_hint(queued: usize, running: usize, workers: usize) -> u64 {
    let backlog = (queued + running) as u64;
    (backlog * 100 / workers.max(1) as u64).clamp(200, 30_000)
}

/// Pops the next job round-robin across client buckets.
fn next_job(state: &mut State) -> Option<Job> {
    let client = state.rotation.pop_front()?;
    let queue = state.queues.get_mut(&client).expect("rotation entry");
    let job = queue.pop_front().expect("non-empty queue in rotation");
    if queue.is_empty() {
        state.queues.remove(&client);
    } else {
        state.rotation.push_back(client);
    }
    Some(job)
}

/// Forwards search progress as event frames. The event bytes are
/// spliced (not re-wrapped through serde enums) so a streaming job adds
/// no per-event allocation beyond the serialised event itself.
struct StreamObserver {
    id: u64,
    sink: Arc<dyn ResponseSink>,
}

impl Observer for StreamObserver {
    fn on_event(&self, event: &SearchEvent) {
        if let Ok(json) = serde_json::to_string(event) {
            self.sink.send(&format!(
                "{{\"type\":\"event\",\"id\":{},\"event\":{json}}}",
                self.id
            ));
        }
    }
}

/// The standard resolver for named [`FunctionSource::Benchmark`]
/// sources: the ten paper benchmarks from `dalut-benchfns`, at
/// `Scale::Paper` for 16-bit scale and `Scale::Reduced` otherwise.
///
/// [`FunctionSource::Benchmark`]: dalut_core::FunctionSource::Benchmark
#[must_use]
pub fn benchfns_resolver() -> impl FunctionResolver + Send + Sync + Copy + 'static {
    |name: &str, scale_bits: usize| {
        use dalut_benchfns::{Benchmark, Scale};
        let bench: Benchmark = name.parse().map_err(|e: String| DalutError::Spec(e))?;
        let scale = if scale_bits == 16 {
            Scale::Paper
        } else {
            Scale::Reduced(scale_bits)
        };
        bench.table(scale).map_err(DalutError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_core::{
        Algorithm, ArchPolicy, BsSaParams, BudgetSpec, DistributionSpec, EstimatorMode,
        FunctionSource,
    };

    fn spec(seed: u64) -> JobSpec {
        let mut params = BsSaParams::fast();
        params.search.seed = seed;
        JobSpec {
            function: FunctionSource::Benchmark {
                name: "cos".into(),
                scale_bits: 6,
            },
            distribution: DistributionSpec::Uniform,
            algorithm: Algorithm::BsSa(params),
            policy: ArchPolicy::NormalOnly,
            budget: BudgetSpec::unlimited(),
            estimator: EstimatorMode::Off,
        }
    }

    fn scheduler(limits: AdmissionLimits) -> Arc<Scheduler> {
        Arc::new(Scheduler::new(
            Arc::new(ConfigCache::in_memory()),
            limits,
            Box::new(benchfns_resolver()),
            Arc::new(dalut_core::NoopObserver),
        ))
    }

    #[test]
    fn round_robin_interleaves_clients() {
        // Three clients with unequal backlogs: the rotation must
        // interleave them rather than serving the flooder first.
        let sched = scheduler(AdmissionLimits::default());
        let sink = Arc::new(CollectSink::new());
        let mut order = Vec::new();
        {
            let mut state = sched.state.lock().unwrap();
            for (client, jobs) in [("flood", 3), ("a", 1), ("b", 1)] {
                for i in 0..jobs {
                    if state
                        .queues
                        .entry(client.to_string())
                        .or_default()
                        .is_empty()
                    {
                        state.rotation.push_back(client.to_string());
                    }
                    state.queues.get_mut(client).unwrap().push_back(Job {
                        seq: i,
                        id: i,
                        stream: false,
                        spec: spec(0),
                        fp: FunctionFingerprint {
                            hi: i,
                            lo: client.len() as u64,
                        },
                        sink: sink.clone(),
                        cancel: CancelToken::new(),
                    });
                    state.queued += 1;
                }
            }
            while let Some(job) = next_job(&mut state) {
                state.queued -= 1;
                order.push(job.fp.lo);
            }
        }
        // lo encodes the client name length: flood=5, a/b=1.
        assert_eq!(order, vec![5, 1, 1, 5, 5]);
    }

    #[test]
    fn admission_rejects_beyond_limits() {
        let sched = scheduler(AdmissionLimits {
            max_inflight: 2,
            max_queued_per_client: 1,
        });
        let sink: Arc<dyn ResponseSink> = Arc::new(CollectSink::new());
        // No workers: jobs stay queued, exercising the limits.
        assert!(matches!(
            sched.submit("a", 1, false, &spec(1), sink.clone()),
            SubmitOutcome::Queued(_)
        ));
        // Same client, distinct spec: per-client cap.
        assert!(matches!(
            sched.submit("a", 2, false, &spec(2), sink.clone()),
            SubmitOutcome::Rejected
        ));
        // Other client fills the global cap.
        assert!(matches!(
            sched.submit("b", 3, false, &spec(3), sink.clone()),
            SubmitOutcome::Queued(_)
        ));
        assert!(matches!(
            sched.submit("c", 4, false, &spec(4), sink.clone()),
            SubmitOutcome::Rejected
        ));
        assert_eq!(sched.stats().rejected, 2);
        assert_eq!(sched.stats().queued, 2);
    }

    #[test]
    fn identical_inflight_specs_coalesce() {
        let sched = scheduler(AdmissionLimits::default());
        let sink: Arc<dyn ResponseSink> = Arc::new(CollectSink::new());
        assert!(matches!(
            sched.submit("a", 1, false, &spec(7), sink.clone()),
            SubmitOutcome::Queued(_)
        ));
        // Same semantic job from another client coalesces; a different
        // seed does not.
        assert!(matches!(
            sched.submit("b", 2, false, &spec(7), sink.clone()),
            SubmitOutcome::Coalesced
        ));
        assert!(matches!(
            sched.submit("b", 3, false, &spec(8), sink.clone()),
            SubmitOutcome::Queued(_)
        ));
        assert_eq!(sched.stats().coalesced, 1);
        assert_eq!(sched.stats().queued, 2);
    }

    #[test]
    fn draining_scheduler_refuses_new_work() {
        let sched = scheduler(AdmissionLimits::default());
        let sink: Arc<dyn ResponseSink> = Arc::new(CollectSink::new());
        sched.drain();
        assert!(matches!(
            sched.submit("a", 1, false, &spec(1), sink.clone()),
            SubmitOutcome::Rejected
        ));
        sched.wait_idle(); // returns immediately: nothing queued
        sched.join_workers();
    }

    #[test]
    fn invalid_specs_are_rejected_with_an_error_frame() {
        let sched = scheduler(AdmissionLimits::default());
        let sink = Arc::new(CollectSink::new());
        let mut bad = spec(1);
        bad.function = FunctionSource::Benchmark {
            name: "no-such-benchmark".into(),
            scale_bits: 6,
        };
        let dyn_sink: Arc<dyn ResponseSink> = sink.clone();
        assert!(matches!(
            sched.submit("a", 9, false, &bad, dyn_sink),
            SubmitOutcome::Rejected
        ));
        let frames = sink.frames();
        assert_eq!(frames.len(), 1);
        assert!(frames[0].contains("\"type\":\"error\""));
        assert!(frames[0].contains("\"id\":9"));
        assert!(frames[0].contains("no-such-benchmark"));
    }

    #[test]
    fn rejects_carry_machine_readable_codes() {
        let sched = scheduler(AdmissionLimits {
            max_inflight: 1,
            max_queued_per_client: 1,
        });
        let sink = Arc::new(CollectSink::new());
        let dyn_sink: Arc<dyn ResponseSink> = sink.clone();
        assert!(matches!(
            sched.submit("a", 1, false, &spec(1), dyn_sink.clone()),
            SubmitOutcome::Queued(_)
        ));
        assert!(matches!(
            sched.submit("b", 2, false, &spec(2), dyn_sink),
            SubmitOutcome::Rejected
        ));
        let frames = sink.frames();
        let shed = frames.last().expect("reject frame");
        let parsed = crate::protocol::parse_error_frame(shed).expect("parses");
        assert_eq!(parsed.code, Some(crate::protocol::RejectCode::Overloaded));
        assert!(parsed.retryable, "{shed}");
        let hint = parsed.retry_after_ms.expect("shed frames carry a hint");
        assert!((200..=30_000).contains(&hint), "{shed}");
        assert_eq!(sched.stats().shed, 1);
    }

    #[test]
    fn overload_sheds_emit_observable_events() {
        let recorder = Arc::new(dalut_core::RecordingObserver::new());
        let sched = Arc::new(Scheduler::new(
            Arc::new(ConfigCache::in_memory()),
            AdmissionLimits {
                max_inflight: 1,
                max_queued_per_client: 1,
            },
            Box::new(benchfns_resolver()),
            recorder.clone(),
        ));
        let sink: Arc<dyn ResponseSink> = Arc::new(CollectSink::new());
        assert!(matches!(
            sched.submit("a", 1, false, &spec(1), sink.clone()),
            SubmitOutcome::Queued(_)
        ));
        assert!(matches!(
            sched.submit("b", 2, false, &spec(2), sink),
            SubmitOutcome::Rejected
        ));
        assert!(
            recorder
                .events()
                .iter()
                .any(|e| matches!(e, SearchEvent::OverloadShed { .. })),
            "shed must reach the observer: {:?}",
            recorder.events()
        );
    }

    #[test]
    fn poisoned_fingerprints_are_fast_rejected() {
        let sched = scheduler(AdmissionLimits::default());
        let sink = Arc::new(CollectSink::new());
        let dyn_sink: Arc<dyn ResponseSink> = sink.clone();
        let the_spec = spec(3);
        let fp = the_spec
            .canonicalize(&benchfns_resolver())
            .unwrap()
            .fingerprint(&dalut_core::NoResolver)
            .unwrap();
        // Book two panics against the fingerprint, as poison_job would.
        {
            let mut state = sched.state.lock().unwrap();
            state.poisoned.insert(fp, POISON_THRESHOLD);
        }
        assert!(matches!(
            sched.submit("a", 5, false, &the_spec, dyn_sink),
            SubmitOutcome::Rejected
        ));
        let frames = sink.frames();
        let parsed = crate::protocol::parse_error_frame(&frames[0]).expect("parses");
        assert_eq!(parsed.code, Some(crate::protocol::RejectCode::Quarantined));
        assert!(!parsed.retryable, "quarantine is fatal: {}", frames[0]);
    }

    #[test]
    fn panicking_jobs_are_isolated_and_quarantined_at_threshold() {
        let sched = scheduler(AdmissionLimits::default());
        let sink = Arc::new(CollectSink::new());
        // Drive poison_job directly with a synthetic job twice: the
        // first answer is a retryable panic, the second a quarantine.
        let make_job = |id| Job {
            seq: id,
            id,
            stream: false,
            spec: spec(4),
            fp: FunctionFingerprint { hi: 77, lo: 88 },
            sink: sink.clone(),
            cancel: CancelToken::new(),
        };
        sched.poison_job(&make_job(1), &[], "kernel index out of bounds");
        sched.poison_job(&make_job(2), &[], "kernel index out of bounds");
        let frames = sink.frames();
        assert_eq!(frames.len(), 2);
        let first = crate::protocol::parse_error_frame(&frames[0]).expect("parses");
        assert_eq!(first.code, Some(crate::protocol::RejectCode::Panic));
        assert!(first.retryable);
        let second = crate::protocol::parse_error_frame(&frames[1]).expect("parses");
        assert_eq!(second.code, Some(crate::protocol::RejectCode::Quarantined));
        assert!(!second.retryable);
        let stats = sched.stats();
        assert_eq!(stats.panics, 2);
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn isolated_converts_panics_to_messages() {
        assert_eq!(isolated(|| 42), Ok(42));
        let err = isolated(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert!(err.contains("boom 7"), "{err}");
        let err = isolated(|| -> u32 { panic!("static boom") }).unwrap_err();
        assert!(err.contains("static boom"), "{err}");
    }

    #[test]
    fn retry_after_hint_scales_with_backlog_and_clamps() {
        assert_eq!(retry_after_hint(0, 0, 4), 200);
        assert_eq!(retry_after_hint(40, 4, 4), 1100);
        assert_eq!(retry_after_hint(100_000, 0, 1), 30_000);
        // Zero workers must not divide by zero.
        assert_eq!(retry_after_hint(10, 0, 0), 1000);
    }

    #[test]
    fn end_to_end_run_hits_cache_second_time() {
        let sched = scheduler(AdmissionLimits::default());
        sched.spawn_workers(2);
        let sink = Arc::new(CollectSink::new());
        let dyn_sink: Arc<dyn ResponseSink> = sink.clone();
        assert!(matches!(
            sched.submit("a", 1, false, &spec(5), dyn_sink.clone()),
            SubmitOutcome::Queued(_)
        ));
        sched.wait_until_completed(1);
        let cold = sink.frames();
        let cold_result = cold
            .iter()
            .find(|f| f.contains("\"type\":\"result\""))
            .expect("cold result frame");
        assert!(cold_result.contains("\"cached\":false"));

        // Identical job again: inline cache hit with identical outcome
        // bytes.
        assert!(matches!(
            sched.submit("b", 2, false, &spec(5), dyn_sink),
            SubmitOutcome::CacheHit
        ));
        let frames = sink.frames();
        let warm_result = frames.last().expect("warm frame");
        assert!(warm_result.contains("\"cached\":true"));
        assert_eq!(
            crate::protocol::outcome_section(cold_result),
            crate::protocol::outcome_section(warm_result),
            "cache hit must replay the cold bytes verbatim"
        );
        sched.drain();
        sched.wait_idle();
        sched.join_workers();
    }

    impl Scheduler {
        /// Test helper: spin until `n` jobs have completed.
        fn wait_until_completed(&self, n: u64) {
            while self.completed.load(Ordering::Relaxed) < n {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
    }
}
