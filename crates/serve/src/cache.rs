//! The content-addressed configuration cache.
//!
//! Finished [`SearchOutcome`](dalut_core::SearchOutcome)s are stored as
//! the *exact JSON text* the cold search path produced, keyed by the
//! job's [`FunctionFingerprint`]. Serving the stored bytes back —
//! rather than a re-serialisation of a deserialised copy — is what makes
//! a cache hit byte-identical to the cold response.
//!
//! When a directory is configured, every insert also lands on disk as
//! `<32-hex-fingerprint>.json` via
//! [`atomic_write`](dalut_core::atomic_write) (write to a temp file,
//! fsync, rename), so a kill at any instant leaves either the complete
//! entry or nothing — never a partial file — and a restarted server
//! reloads the directory warm.
//!
//! Entries use a small hand-assembled envelope instead of serde:
//!
//! ```text
//! {"schema":"dalut-servecache/v2","fingerprint":"<32 hex>","crc":<u32>,"outcome":<json>}
//! ```
//!
//! The `crc` is a CRC-32 over the verbatim outcome bytes, the same
//! checksum the checkpoint layer uses, so a bit-flip on disk is detected
//! at reload instead of being served to clients. v1 envelopes (no
//! checksum) are still *read* for compatibility; every write is v2.
//!
//! Reload never trusts its inputs: entries that fail their checksum or
//! whose embedded fingerprint disagrees with their file name are
//! **quarantined** (renamed `*.quarantined`, so the next identical job
//! simply misses, re-runs and atomically rewrites the entry); files that
//! are not cache entries at all are skipped in place. Both populations
//! are counted in the [`CacheLoadReport`] surfaced by the hello frame
//! and the stats frame. And when the directory itself cannot be created,
//! read or written, the cache **degrades to memory-only** instead of
//! refusing to serve: [`ConfigCache::open`] is infallible by design.
//!
//! Hand-rolled encode/decode keeps the outcome bytes verbatim and keeps
//! the cache readable even in environments where the JSON library is
//! stubbed out (the offline build container).

use dalut_core::{atomic_write, crc32, FunctionFingerprint};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Schema tag written on new on-disk cache entries.
pub const CACHE_SCHEMA: &str = "dalut-servecache/v2";

/// The checksum-less predecessor, still accepted on read.
const CACHE_SCHEMA_V1: &str = "dalut-servecache/v1";

/// What [`ConfigCache::open`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheLoadReport {
    /// Entries loaded warm.
    pub loaded: u64,
    /// Files skipped in place: unreadable, misnamed, or not a cache
    /// envelope at all (a newer server version may still understand
    /// them, so they are not touched).
    pub skipped_unparsable: u64,
    /// Entries quarantined: structurally ours but checksum-failed,
    /// truncated, or fingerprint-mismatched. Renamed `*.quarantined` so
    /// the next identical job regenerates them.
    pub skipped_corrupt: u64,
    /// File names of the quarantined entries.
    pub quarantined_files: Vec<String>,
}

impl CacheLoadReport {
    /// Total files the reload refused to serve (unparsable + corrupt).
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped_unparsable + self.skipped_corrupt
    }
}

/// A content-addressed map from [`FunctionFingerprint`] to the cached
/// outcome's serialised JSON, optionally persisted to a directory.
///
/// Shared-read, exclusive-write: lookups take a read lock and clone an
/// `Arc<str>`, so thousands of concurrent hits never contend on the
/// entry bytes themselves.
#[derive(Debug)]
pub struct ConfigCache {
    dir: Option<PathBuf>,
    entries: RwLock<HashMap<FunctionFingerprint, Arc<str>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Set when persistence has been abandoned (directory unusable at
    /// open, or a later write failed): the cache keeps answering from
    /// memory but stops touching disk.
    degraded: AtomicBool,
    load_report: CacheLoadReport,
}

impl ConfigCache {
    /// An in-memory-only cache (nothing survives the process).
    #[must_use]
    pub fn in_memory() -> Self {
        Self {
            dir: None,
            entries: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            load_report: CacheLoadReport::default(),
        }
    }

    /// Opens (creating if needed) a disk-backed cache, loading every
    /// valid `*.json` entry already present. Never fails: entries that
    /// fail validation are quarantined or skipped (see
    /// [`CacheLoadReport`]), and a directory that cannot be created or
    /// read yields a memory-only [degraded](Self::degraded) cache
    /// instead of an error — the server keeps serving either way.
    #[must_use]
    pub fn open(dir: impl AsRef<Path>) -> Self {
        let dir = dir.as_ref().to_path_buf();
        if std::fs::create_dir_all(&dir).is_err() {
            return Self {
                dir: None,
                degraded: AtomicBool::new(true),
                ..Self::in_memory()
            };
        }
        let mut entries = HashMap::new();
        let mut report = CacheLoadReport::default();
        let Ok(listing) = std::fs::read_dir(&dir) else {
            return Self {
                dir: None,
                degraded: AtomicBool::new(true),
                ..Self::in_memory()
            };
        };
        for entry in listing {
            let Ok(entry) = entry else {
                report.skipped_unparsable += 1;
                continue;
            };
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue; // temp files, quarantined entries, strangers
            }
            let named = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.parse::<FunctionFingerprint>().ok());
            let Some(named) = named else {
                report.skipped_unparsable += 1;
                continue;
            };
            let Ok(text) = std::fs::read_to_string(&path) else {
                report.skipped_unparsable += 1;
                continue;
            };
            match decode_entry(&text) {
                Decoded::Valid(fp, outcome) if fp == named => {
                    entries.insert(fp, Arc::from(outcome));
                    report.loaded += 1;
                }
                // A valid envelope under the wrong name is as untrustworthy
                // as a failed checksum: quarantine, do not serve.
                Decoded::Valid(..) | Decoded::Corrupt => {
                    report.skipped_corrupt += 1;
                    report.quarantined_files.push(quarantine(&path));
                }
                Decoded::Foreign => report.skipped_unparsable += 1,
            }
        }
        Self {
            dir: Some(dir),
            entries: RwLock::new(entries),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            load_report: report,
        }
    }

    /// Looks up the cached outcome JSON for `fp`, counting the hit or
    /// miss.
    #[must_use]
    pub fn get(&self, fp: &FunctionFingerprint) -> Option<Arc<str>> {
        let found = self.entries.read().expect("cache lock").get(fp).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts (or replaces) the outcome JSON for `fp`, persisting it
    /// when disk-backed. Returns the shared bytes now in the cache.
    ///
    /// Insertion cannot fail: an I/O error while persisting flips the
    /// cache into [degraded](Self::degraded) memory-only mode — the
    /// in-memory entry still lands and the server keeps answering,
    /// merely without restart durability from that point on.
    pub fn insert(&self, fp: FunctionFingerprint, outcome_json: &str) -> Arc<str> {
        let shared: Arc<str> = Arc::from(outcome_json);
        self.entries
            .write()
            .expect("cache lock")
            .insert(fp, Arc::clone(&shared));
        if let Some(dir) = &self.dir {
            if !self.degraded.load(Ordering::Relaxed)
                && atomic_write(
                    dir.join(format!("{fp}.json")),
                    encode_entry(&fp, outcome_json).as_bytes(),
                )
                .is_err()
            {
                self.degraded.store(true, Ordering::Relaxed);
            }
        }
        shared
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.read().expect("cache lock").len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counted since this process opened the cache.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// What [`open`](Self::open) found on disk (empty for
    /// [`in_memory`](Self::in_memory) caches).
    #[must_use]
    pub fn load_report(&self) -> &CacheLoadReport {
        &self.load_report
    }

    /// True when persistence has been abandoned and the cache serves
    /// from memory only.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The backing directory, when disk-backed.
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

/// Moves a failed-validation entry out of the serving set (rename to
/// `<name>.quarantined`, falling back to removal), returning its file
/// name for the load report. Best-effort: on a read-only directory the
/// file stays, but it was never loaded, so it is still never served.
fn quarantine(path: &Path) -> String {
    let name = path.file_name().map_or_else(
        || path.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    let mut target = path.as_os_str().to_owned();
    target.push(".quarantined");
    if std::fs::rename(path, &target).is_err() {
        let _ = std::fs::remove_file(path);
    }
    name
}

/// Assembles the on-disk envelope around verbatim outcome bytes,
/// checksummed with the same CRC-32 the checkpoint layer uses.
fn encode_entry(fp: &FunctionFingerprint, outcome_json: &str) -> String {
    let crc = crc32(outcome_json.as_bytes());
    format!(
        "{{\"schema\":\"{CACHE_SCHEMA}\",\"fingerprint\":\"{fp}\",\
         \"crc\":{crc},\"outcome\":{outcome_json}}}"
    )
}

/// How [`decode_entry`] classified a file's bytes.
#[derive(Debug, PartialEq, Eq)]
enum Decoded<'a> {
    /// A complete envelope whose checksum (v2) or structure (v1) holds.
    Valid(FunctionFingerprint, &'a str),
    /// Claims to be ours but is damaged: truncated, checksum-failed, or
    /// malformed past the schema tag.
    Corrupt,
    /// Not a cache envelope of any known schema.
    Foreign,
}

/// Inverse of [`encode_entry`], accepting both the current checksummed
/// v2 envelope and the legacy v1 layout.
fn decode_entry(text: &str) -> Decoded<'_> {
    let text = text.trim();
    let v2 = format!("{{\"schema\":\"{CACHE_SCHEMA}\",\"fingerprint\":\"");
    if let Some(rest) = text.strip_prefix(v2.as_str()) {
        return decode_v2(rest);
    }
    let v1 = format!("{{\"schema\":\"{CACHE_SCHEMA_V1}\",\"fingerprint\":\"");
    if let Some(rest) = text.strip_prefix(v1.as_str()) {
        return decode_v1(rest);
    }
    // Anything claiming the cache's schema family but not matching a
    // full envelope prefix is damage (e.g. truncation inside the
    // header), not a foreign file.
    if text.starts_with("{\"schema\":\"dalut-servecache/") {
        return Decoded::Corrupt;
    }
    Decoded::Foreign
}

/// Decodes everything after the v2 schema prefix: `<32 hex>","crc":<n>,
/// "outcome":<json>}` with the CRC verified over the outcome bytes.
fn decode_v2(rest: &str) -> Decoded<'_> {
    let Some((hex, rest)) = rest.split_at_checked(32) else {
        return Decoded::Corrupt;
    };
    let Ok(fp) = hex.parse::<FunctionFingerprint>() else {
        return Decoded::Corrupt;
    };
    let Some(rest) = rest.strip_prefix("\",\"crc\":") else {
        return Decoded::Corrupt;
    };
    let digits = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    let Ok(crc) = rest[..digits].parse::<u32>() else {
        return Decoded::Corrupt;
    };
    let Some(outcome) = rest[digits..]
        .strip_prefix(",\"outcome\":")
        .and_then(|o| o.strip_suffix('}'))
    else {
        return Decoded::Corrupt;
    };
    if crc32(outcome.as_bytes()) == crc {
        Decoded::Valid(fp, outcome)
    } else {
        Decoded::Corrupt
    }
}

/// Decodes everything after the legacy v1 schema prefix; no checksum,
/// so only the structural sanity check from v1 applies.
fn decode_v1(rest: &str) -> Decoded<'_> {
    let Some((hex, rest)) = rest.split_at_checked(32) else {
        return Decoded::Corrupt;
    };
    let Ok(fp) = hex.parse::<FunctionFingerprint>() else {
        return Decoded::Corrupt;
    };
    let Some(outcome) = rest
        .strip_prefix("\",\"outcome\":")
        .and_then(|o| o.strip_suffix('}'))
    else {
        return Decoded::Corrupt;
    };
    if outcome.starts_with('{') && outcome.ends_with('}') {
        Decoded::Valid(fp, outcome)
    } else {
        Decoded::Corrupt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(hi: u64, lo: u64) -> FunctionFingerprint {
        FunctionFingerprint { hi, lo }
    }

    fn unique_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dalut-serve-cache-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn envelope_round_trips_verbatim() {
        let f = fp(0xDEAD_BEEF, 42);
        let outcome = r#"{"med":1.25,"nested":{"a":[1,2,3]}}"#;
        let enc = encode_entry(&f, outcome);
        assert!(enc.contains("\"schema\":\"dalut-servecache/v2\""));
        let Decoded::Valid(back_fp, back_outcome) = decode_entry(&enc) else {
            panic!("fresh envelope must decode: {enc}");
        };
        assert_eq!(back_fp, f);
        assert_eq!(back_outcome, outcome);
    }

    #[test]
    fn decode_classifies_corrupt_vs_foreign() {
        let f = fp(1, 2);
        let good = encode_entry(&f, "{\"x\":1}");
        assert_eq!(decode_entry(&good[..good.len() - 3]), Decoded::Corrupt);
        assert_eq!(decode_entry("{\"schema\":\"other/v9\"}"), Decoded::Foreign);
        assert_eq!(decode_entry(""), Decoded::Foreign);
        assert_eq!(decode_entry("not json at all"), Decoded::Foreign);

        // A flipped byte inside the outcome fails the checksum.
        let flipped = good.replace("\"x\":1", "\"x\":7");
        assert_eq!(decode_entry(&flipped), Decoded::Corrupt);
    }

    #[test]
    fn v1_entries_are_still_readable() {
        let f = fp(3, 4);
        let v1 = format!(
            "{{\"schema\":\"dalut-servecache/v1\",\"fingerprint\":\"{f}\",\
             \"outcome\":{{\"med\":0.5}}}}"
        );
        let Decoded::Valid(back, outcome) = decode_entry(&v1) else {
            panic!("v1 envelope must stay readable: {v1}");
        };
        assert_eq!(back, f);
        assert_eq!(outcome, "{\"med\":0.5}");
        // Truncated v1 is corrupt, not foreign.
        assert_eq!(decode_entry(&v1[..v1.len() - 4]), Decoded::Corrupt);
    }

    #[test]
    fn in_memory_get_insert_and_counters() {
        let cache = ConfigCache::in_memory();
        let f = fp(7, 9);
        assert!(cache.get(&f).is_none());
        cache.insert(f, "{\"ok\":true}");
        assert_eq!(cache.get(&f).as_deref(), Some("{\"ok\":true}"));
        assert_eq!(cache.counters(), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.degraded());
        assert_eq!(cache.load_report().skipped(), 0);
    }

    #[test]
    fn disk_backed_cache_survives_reopen_and_reports_skips() {
        let dir = unique_dir("reopen");
        let f = fp(0x1234, 0x5678);
        let outcome = r#"{"med":0.5}"#;
        {
            let cache = ConfigCache::open(&dir);
            assert!(cache.is_empty());
            cache.insert(f, outcome);
        }
        // A stray partial/garbage file must not poison the reload.
        std::fs::write(dir.join("not-a-fingerprint.json"), "junk").unwrap();
        std::fs::write(
            dir.join(format!("{}.json", fp(9, 9))),
            "{\"schema\":\"dalut-servecache/v2\",\"finge", // truncated
        )
        .unwrap();
        let reopened = ConfigCache::open(&dir);
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.get(&f).as_deref(), Some(outcome));
        let report = reopened.load_report();
        assert_eq!(report.loaded, 1);
        assert_eq!(report.skipped_unparsable, 1, "{report:?}");
        assert_eq!(report.skipped_corrupt, 1, "{report:?}");
        assert_eq!(report.quarantined_files.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_entry_is_quarantined_then_regenerated() {
        let dir = unique_dir("bitflip");
        let f = fp(0xAB, 0xCD);
        let outcome = r#"{"med":0.125,"iterations":64}"#;
        {
            let cache = ConfigCache::open(&dir);
            cache.insert(f, outcome);
        }
        // Flip one bit in the stored outcome bytes.
        let path = dir.join(format!("{f}.json"));
        let mut bytes = std::fs::read(&path).unwrap();
        let target = bytes.len() - 5; // inside the outcome section
        bytes[target] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // Reload: the damaged entry must be quarantined, not served.
        let cache = ConfigCache::open(&dir);
        assert!(cache.get(&f).is_none(), "corrupt entry must not be served");
        assert_eq!(cache.load_report().skipped_corrupt, 1);
        assert!(!path.exists(), "entry should be renamed out of the way");
        let quarantined: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "quarantined"))
            .collect();
        assert_eq!(quarantined.len(), 1, "{quarantined:?}");

        // Regeneration: the next insert rewrites the entry in place and
        // a further reload serves it again.
        cache.insert(f, outcome);
        let healed = ConfigCache::open(&dir);
        assert_eq!(healed.get(&f).as_deref(), Some(outcome));
        assert_eq!(healed.load_report().skipped_corrupt, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unusable_directory_degrades_to_memory_only() {
        // A path that cannot be a directory: a file stands in its place.
        let blocker =
            std::env::temp_dir().join(format!("dalut-serve-cache-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"occupied").unwrap();
        let cache = ConfigCache::open(&blocker);
        assert!(cache.degraded(), "file-in-the-way must degrade");
        assert!(cache.dir().is_none());
        // Still serves from memory.
        let f = fp(1, 1);
        cache.insert(f, "{\"ok\":1}");
        assert_eq!(cache.get(&f).as_deref(), Some("{\"ok\":1}"));
        std::fs::remove_file(&blocker).unwrap();
    }
}
