//! The content-addressed configuration cache.
//!
//! Finished [`SearchOutcome`](dalut_core::SearchOutcome)s are stored as
//! the *exact JSON text* the cold search path produced, keyed by the
//! job's [`FunctionFingerprint`]. Serving the stored bytes back —
//! rather than a re-serialisation of a deserialised copy — is what makes
//! a cache hit byte-identical to the cold response.
//!
//! When a directory is configured, every insert also lands on disk as
//! `<32-hex-fingerprint>.json` via
//! [`atomic_write`](dalut_core::atomic_write) (write to a temp file,
//! fsync, rename), so a kill at any instant leaves either the complete
//! entry or nothing — never a partial file — and a restarted server
//! reloads the directory warm.
//!
//! Entries use a small hand-assembled envelope instead of serde:
//!
//! ```text
//! {"schema":"dalut-servecache/v1","fingerprint":"<32 hex>","outcome":<json>}
//! ```
//!
//! Hand-rolled encode/decode keeps the outcome bytes verbatim and keeps
//! the cache readable even in environments where the JSON library is
//! stubbed out (the offline build container).

use dalut_core::{atomic_write, FunctionFingerprint};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Schema tag of on-disk cache entries.
pub const CACHE_SCHEMA: &str = "dalut-servecache/v1";

/// A content-addressed map from [`FunctionFingerprint`] to the cached
/// outcome's serialised JSON, optionally persisted to a directory.
///
/// Shared-read, exclusive-write: lookups take a read lock and clone an
/// `Arc<str>`, so thousands of concurrent hits never contend on the
/// entry bytes themselves.
#[derive(Debug)]
pub struct ConfigCache {
    dir: Option<PathBuf>,
    entries: RwLock<HashMap<FunctionFingerprint, Arc<str>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ConfigCache {
    /// An in-memory-only cache (nothing survives the process).
    #[must_use]
    pub fn in_memory() -> Self {
        Self {
            dir: None,
            entries: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Opens (creating if needed) a disk-backed cache, loading every
    /// valid `*.json` entry already present. Files that fail validation
    /// — wrong schema, fingerprint mismatch with their name, truncated
    /// envelope — are skipped, not deleted: a newer server version may
    /// still understand them.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut entries = HashMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(named) = stem.parse::<FunctionFingerprint>() else {
                continue;
            };
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            if let Some((fp, outcome)) = decode_entry(&text) {
                if fp == named {
                    entries.insert(fp, Arc::from(outcome));
                }
            }
        }
        Ok(Self {
            dir: Some(dir),
            entries: RwLock::new(entries),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Looks up the cached outcome JSON for `fp`, counting the hit or
    /// miss.
    #[must_use]
    pub fn get(&self, fp: &FunctionFingerprint) -> Option<Arc<str>> {
        let found = self.entries.read().expect("cache lock").get(fp).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts (or replaces) the outcome JSON for `fp`, persisting it
    /// when disk-backed. Returns the shared bytes now in the cache.
    ///
    /// An I/O failure while persisting is reported but the in-memory
    /// entry still lands — the server keeps answering, merely without
    /// restart durability for this entry.
    pub fn insert(&self, fp: FunctionFingerprint, outcome_json: &str) -> io::Result<Arc<str>> {
        let shared: Arc<str> = Arc::from(outcome_json);
        self.entries
            .write()
            .expect("cache lock")
            .insert(fp, Arc::clone(&shared));
        if let Some(dir) = &self.dir {
            atomic_write(
                dir.join(format!("{fp}.json")),
                encode_entry(&fp, outcome_json).as_bytes(),
            )?;
        }
        Ok(shared)
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.read().expect("cache lock").len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counted since this process opened the cache.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The backing directory, when disk-backed.
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

/// Assembles the on-disk envelope around verbatim outcome bytes.
fn encode_entry(fp: &FunctionFingerprint, outcome_json: &str) -> String {
    format!("{{\"schema\":\"{CACHE_SCHEMA}\",\"fingerprint\":\"{fp}\",\"outcome\":{outcome_json}}}")
}

/// Inverse of [`encode_entry`]; `None` for anything that is not a
/// complete, current-schema envelope.
fn decode_entry(text: &str) -> Option<(FunctionFingerprint, &str)> {
    let text = text.trim();
    let prefix = format!("{{\"schema\":\"{CACHE_SCHEMA}\",\"fingerprint\":\"");
    let rest = text.strip_prefix(prefix.as_str())?;
    let (hex, rest) = rest.split_at_checked(32)?;
    let fp = hex.parse::<FunctionFingerprint>().ok()?;
    let outcome = rest.strip_prefix("\",\"outcome\":")?.strip_suffix('}')?;
    // Cheap structural sanity so a truncated-then-renamed file can't
    // smuggle garbage into responses.
    (outcome.starts_with('{') && outcome.ends_with('}')).then_some((fp, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(hi: u64, lo: u64) -> FunctionFingerprint {
        FunctionFingerprint { hi, lo }
    }

    #[test]
    fn envelope_round_trips_verbatim() {
        let f = fp(0xDEAD_BEEF, 42);
        let outcome = r#"{"med":1.25,"nested":{"a":[1,2,3]}}"#;
        let enc = encode_entry(&f, outcome);
        let (back_fp, back_outcome) = decode_entry(&enc).expect("decodes");
        assert_eq!(back_fp, f);
        assert_eq!(back_outcome, outcome);
    }

    #[test]
    fn decode_rejects_foreign_or_truncated_entries() {
        let f = fp(1, 2);
        let good = encode_entry(&f, "{\"x\":1}");
        assert!(decode_entry(&good[..good.len() - 3]).is_none(), "truncated");
        assert!(decode_entry("{\"schema\":\"other/v9\"}").is_none());
        assert!(decode_entry("").is_none());
    }

    #[test]
    fn in_memory_get_insert_and_counters() {
        let cache = ConfigCache::in_memory();
        let f = fp(7, 9);
        assert!(cache.get(&f).is_none());
        cache.insert(f, "{\"ok\":true}").unwrap();
        assert_eq!(cache.get(&f).as_deref(), Some("{\"ok\":true}"));
        assert_eq!(cache.counters(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_backed_cache_survives_reopen() {
        let dir =
            std::env::temp_dir().join(format!("dalut-serve-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let f = fp(0x1234, 0x5678);
        let outcome = r#"{"med":0.5}"#;
        {
            let cache = ConfigCache::open(&dir).unwrap();
            assert!(cache.is_empty());
            cache.insert(f, outcome).unwrap();
        }
        // A stray partial/garbage file must not poison the reload.
        std::fs::write(dir.join("not-a-fingerprint.json"), "junk").unwrap();
        std::fs::write(
            dir.join(format!("{}.json", fp(9, 9))),
            "{\"schema\":\"dalut-servecache/v1\",\"finge", // truncated
        )
        .unwrap();
        let reopened = ConfigCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.get(&f).as_deref(), Some(outcome));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
