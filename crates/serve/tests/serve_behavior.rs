//! End-to-end behaviour of the TCP server: cold → hot round trips over
//! a real socket, warm restart from the on-disk cache, and the graceful
//! drain path.
//!
//! The wire protocol's client side needs a real JSON library (the
//! offline build stubs `serde_json`, whose `from_str` always errors),
//! so socket tests that submit jobs skip themselves under the stub; the
//! hand-assembled parts of the protocol — the hello frame, the cache's
//! on-disk envelope — are exercised unconditionally.

use dalut_core::{
    Algorithm, ApproxLutBuilder, ArchPolicy, BsSaParams, BudgetSpec, DistributionSpec,
    EstimatorMode, FunctionSource, JobSpec, NoResolver,
};
use dalut_serve::{outcome_section, ClientFrame, ConfigCache, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// True when the JSON library is the offline stub: the server cannot
/// parse client frames, so wire tests would only see error frames.
fn serde_is_stubbed() -> bool {
    serde_json::from_str::<u64>("1").is_err()
}

fn unique_temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dalut_serve_behavior_{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A cheap benchmark-form job, distinct per seed.
fn spec(seed: u64) -> JobSpec {
    let mut params = BsSaParams::fast();
    params.search.seed = seed;
    JobSpec {
        function: FunctionSource::Benchmark {
            name: "cos".to_string(),
            scale_bits: 6,
        },
        distribution: DistributionSpec::Uniform,
        algorithm: Algorithm::BsSa(params),
        policy: ArchPolicy::NormalOnly,
        budget: BudgetSpec::unlimited(),
        estimator: EstimatorMode::Off,
    }
}

struct RunningServer {
    addr: String,
    token: dalut_core::CancelToken,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start_server(cache_dir: Option<PathBuf>) -> RunningServer {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_dir,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());
    RunningServer {
        addr,
        token,
        handle,
    }
}

impl RunningServer {
    fn stop(self) {
        self.token.cancel();
        self.handle
            .join()
            .expect("server thread")
            .expect("clean drain");
    }
}

struct Client {
    write: TcpStream,
    read: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let write = stream.try_clone().expect("clone");
        Self {
            write,
            read: BufReader::new(stream),
        }
    }

    fn line(&mut self) -> String {
        let mut line = String::new();
        self.read.read_line(&mut line).expect("read line");
        line
    }

    fn submit(&mut self, id: u64, spec: &JobSpec) {
        let frame = serde_json::to_string(&ClientFrame::Submit {
            id,
            client: None,
            stream: false,
            spec: Box::new(spec.clone()),
        })
        .expect("serialise");
        self.write.write_all(frame.as_bytes()).expect("write");
        self.write.write_all(b"\n").expect("write");
    }

    /// Reads until the next result/error frame, skipping events.
    fn response(&mut self) -> String {
        loop {
            let line = self.line();
            assert!(!line.is_empty(), "connection closed while waiting");
            if line.contains("\"type\":\"result\"") || line.contains("\"type\":\"error\"") {
                return line;
            }
        }
    }
}

/// The hello frame advertises the persistent cache's entry count, so a
/// restarted server proves it reloaded the previous run's entries. This
/// path is serde-free end to end: the cache envelope and the hello
/// frame are both hand-assembled.
#[test]
fn restart_reloads_on_disk_cache_into_hello() {
    let dir = unique_temp_dir("hello");

    // Seed the cache directly with a completed outcome, as a finished
    // job would.
    let canonical = spec(1)
        .canonicalize(&dalut_serve::benchfns_resolver())
        .expect("canonicalize");
    let outcome = ApproxLutBuilder::from_spec(&canonical)
        .expect("from_spec")
        .run()
        .expect("run");
    let fp = canonical.fingerprint(&NoResolver).expect("fingerprint");
    {
        let cache = ConfigCache::open(&dir);
        // The envelope is hand-assembled; any JSON text body works.
        cache.insert(fp, &format!("{{\"iterations\":{}}}", outcome.iterations));
    }

    let server = start_server(Some(dir.clone()));
    let mut client = Client::connect(&server.addr);
    let hello = client.line();
    assert!(
        hello.contains("\"cached_entries\":1"),
        "hello after restart should advertise the reloaded entry: {hello}"
    );
    drop(client);
    server.stop();

    // A second restart still sees exactly one entry (no duplication,
    // no partials).
    let reloaded = ConfigCache::open(&dir);
    assert_eq!(reloaded.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Cold request, then the same request again: the second response is a
/// cache hit whose outcome section is byte-identical to the cold one —
/// and it survives a full server restart.
#[test]
fn cold_then_hot_then_restart_is_byte_identical() {
    if serde_is_stubbed() {
        eprintln!("skipped: stubbed serde_json cannot parse client frames");
        return;
    }
    let dir = unique_temp_dir("roundtrip");
    let server = start_server(Some(dir.clone()));
    let mut client = Client::connect(&server.addr);
    let hello = client.line();
    assert!(hello.contains("\"type\":\"hello\""), "{hello}");
    assert!(hello.contains("\"cached_entries\":0"), "{hello}");

    client.submit(1, &spec(7));
    let cold = client.response();
    assert!(cold.contains("\"cached\":false"), "{cold}");
    let cold_outcome = outcome_section(&cold).expect("cold outcome").to_string();

    client.submit(2, &spec(7));
    let hot = client.response();
    assert!(hot.contains("\"cached\":true"), "{hot}");
    assert_eq!(
        outcome_section(&hot).expect("hot outcome"),
        cold_outcome,
        "cached response must be byte-identical to the cold path"
    );
    drop(client);
    server.stop();

    // Kill + restart: the on-disk cache preserves the config, so the
    // first request after restart is already a hit with the same bytes.
    let server = start_server(Some(dir.clone()));
    let mut client = Client::connect(&server.addr);
    let hello = client.line();
    assert!(hello.contains("\"cached_entries\":1"), "{hello}");
    client.submit(3, &spec(7));
    let warm = client.response();
    assert!(warm.contains("\"cached\":true"), "{warm}");
    assert_eq!(outcome_section(&warm).expect("warm outcome"), cold_outcome);
    drop(client);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Distinct specs get distinct cache entries; a different client on a
/// separate connection still hits the shared cache.
#[test]
fn cache_is_shared_across_connections() {
    if serde_is_stubbed() {
        eprintln!("skipped: stubbed serde_json cannot parse client frames");
        return;
    }
    let server = start_server(None);
    let mut first = Client::connect(&server.addr);
    first.line(); // hello
    first.submit(1, &spec(11));
    let cold = first.response();
    assert!(cold.contains("\"cached\":false"), "{cold}");
    drop(first);

    let mut second = Client::connect(&server.addr);
    second.line(); // hello
    second.submit(1, &spec(11));
    let hot = second.response();
    assert!(hot.contains("\"cached\":true"), "{hot}");
    // A different seed is a different function fingerprint → miss.
    second.submit(2, &spec(12));
    let other = second.response();
    assert!(other.contains("\"cached\":false"), "{other}");
    drop(second);
    server.stop();
}

/// SIGINT-style shutdown mid-stream: every accepted job still gets a
/// result frame during the drain, run() returns cleanly, and the cache
/// directory holds no partial (`.tmp`) files.
#[test]
fn drain_delivers_results_and_leaves_no_partials() {
    if serde_is_stubbed() {
        eprintln!("skipped: stubbed serde_json cannot parse client frames");
        return;
    }
    let dir = unique_temp_dir("drain");
    let server = start_server(Some(dir.clone()));
    let mut client = Client::connect(&server.addr);
    client.line(); // hello

    for id in 0..4 {
        client.submit(id, &spec(20 + id));
    }
    // Trip the shutdown token while jobs are queued/running: the drain
    // cancels searches (best-so-far outcomes) but must still answer.
    server.token.cancel();
    let mut results = 0;
    for _ in 0..4 {
        let frame = client.response();
        assert!(frame.contains("\"type\":\"result\""), "{frame}");
        results += 1;
    }
    assert_eq!(results, 4);
    server
        .handle
        .join()
        .expect("server thread")
        .expect("clean drain");

    let partials: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(partials.is_empty(), "partial cache entries: {partials:?}");
    std::fs::remove_dir_all(&dir).ok();
}
