//! Robustness of the serving stack under hostile input: fuzzed frame
//! parsing, a fuzzed server read loop, frame-length caps, slow-loris
//! deadlines and idle timeouts.
//!
//! Everything here is serde-free on the attacking side — the tests
//! write raw bytes at the server — so the whole suite runs under the
//! offline serde stub too (where every frame is simply unparsable,
//! which is exactly the hostile case).

use dalut_serve::protocol::{field_bool, field_str, field_u64};
use dalut_serve::{
    outcome_section, parse_error_frame, parse_result_frame, RejectCode, Server, ServerConfig,
};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

struct RunningServer {
    addr: String,
    token: dalut_core::CancelToken,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start_server(config: ServerConfig) -> RunningServer {
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());
    RunningServer {
        addr,
        token,
        handle,
    }
}

impl RunningServer {
    fn stop(self) {
        self.token.cancel();
        self.handle
            .join()
            .expect("server thread")
            .expect("clean drain");
    }
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read line");
    line
}

/// A fresh connection still answering with a hello frame is the
/// liveness probe: whatever the previous connection did, the server
/// must keep serving.
fn assert_alive(addr: &str) {
    let (_stream, mut reader) = connect(addr);
    let hello = read_line(&mut reader);
    assert!(
        hello.contains("\"type\":\"hello\""),
        "server no longer serving: {hello:?}"
    );
}

proptest! {
    /// The hand-rolled response parsers accept arbitrary text without
    /// panicking — they are the client's first line of defence against
    /// corrupted bytes.
    #[test]
    fn parsers_never_panic_on_arbitrary_text(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_result_frame(&text);
        let _ = parse_error_frame(&text);
        let _ = outcome_section(&text);
        let _ = field_u64(&text, "id");
        let _ = field_bool(&text, "cached");
        let _ = field_str(&text, "message");
        let _ = RejectCode::parse(&text);
    }

    /// Parsing near-miss frames — result/error prefixes followed by
    /// garbage — never panics either, and never fabricates a valid
    /// frame with a passing CRC.
    #[test]
    fn parsers_never_panic_on_prefixed_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let tail = String::from_utf8_lossy(&bytes).into_owned();
        for prefix in ["{\"type\":\"result\",", "{\"type\":\"error\",", "{\"type\":\"result\""] {
            let line = format!("{prefix}{tail}");
            if let Some(result) = parse_result_frame(&line) {
                // A parse may succeed on crafted garbage, but the CRC
                // binds id+fingerprint+outcome — random tails fail it.
                let _ = result.crc_ok();
            }
            let _ = parse_error_frame(&line);
        }
    }
}

/// Arbitrary byte lines at the server produce typed `bad_frame` rejects
/// (or a clean disconnect) — never a crash. The liveness probe at the
/// end proves the server outlived the abuse.
#[test]
fn server_survives_garbage_lines() {
    let server = start_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_dir: None,
        ..ServerConfig::default()
    });

    // A deterministic spread of hostile lines: binary, truncated JSON,
    // deep nesting, null bytes, huge numbers, non-UTF-8.
    let attacks: Vec<Vec<u8>> = vec![
        b"\x00\x01\x02\xff\xfe garbage".to_vec(),
        b"{\"type\":\"submit\"".to_vec(),
        b"{\"type\":\"submit\",\"id\":99999999999999999999999999}".to_vec(),
        vec![b'{'; 512],
        b"null".to_vec(),
        b"{\"type\":\"result\",\"id\":1,\"cached\":true}".to_vec(),
        vec![0xC3, 0x28, 0xA0, 0xA1], // invalid UTF-8 sequences
    ];
    for attack in &attacks {
        let (mut stream, mut reader) = connect(&server.addr);
        let hello = read_line(&mut reader);
        assert!(hello.contains("\"type\":\"hello\""), "{hello:?}");
        stream.write_all(attack).expect("write attack");
        stream.write_all(b"\n").expect("write newline");
        // Either a typed reject arrives or the server closed the
        // connection; both are acceptable, panicking is not.
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok() && !line.is_empty() {
            assert!(
                line.contains("\"type\":\"error\"") || line.contains("\"type\":\"result\""),
                "unexpected frame for {attack:?}: {line:?}"
            );
            if let Some(reject) = parse_error_frame(line.trim()) {
                assert_eq!(reject.code, Some(RejectCode::BadFrame), "{line:?}");
                assert!(reject.retryable, "bad_frame must be retryable: {line:?}");
            }
        }
    }
    // An empty line is silently skipped, not answered and not fatal.
    {
        let (mut stream, mut reader) = connect(&server.addr);
        read_line(&mut reader); // hello
        stream.write_all(b"\n\n").expect("write empty lines");
    }
    assert_alive(&server.addr);
    server.stop();
}

/// A frame longer than `max_frame_len` is rejected with a typed
/// `frame_too_long` error and a closed connection — the unbounded-read
/// OOM vector is gone.
#[test]
fn oversized_frames_get_typed_reject() {
    let server = start_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_dir: None,
        max_frame_len: 4 * 1024,
        ..ServerConfig::default()
    });
    let (mut stream, mut reader) = connect(&server.addr);
    read_line(&mut reader); // hello

    // 64 KiB without a newline: far over the 4 KiB cap.
    let blob = vec![b'x'; 64 * 1024];
    // The server may close mid-write once the cap trips; that's fine.
    let _ = stream.write_all(&blob);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read reject");
    let reject = parse_error_frame(response.trim()).expect("typed reject");
    assert_eq!(reject.code, Some(RejectCode::FrameTooLong), "{response:?}");
    assert!(!reject.retryable, "oversized frames are not retryable");

    // The connection is closed afterwards (EOF).
    let mut rest = String::new();
    let n = reader.read_to_string(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection should be closed: {rest:?}");

    assert_alive(&server.addr);
    server.stop();
}

/// A slow-loris connection — a partial frame that never completes —
/// is cut off at the frame deadline with a typed `deadline` reject.
#[test]
fn slow_loris_partial_frame_hits_deadline() {
    let server = start_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_dir: None,
        frame_deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let (mut stream, mut reader) = connect(&server.addr);
    read_line(&mut reader); // hello

    stream
        .write_all(b"{\"type\":\"submit\",\"id\":1,")
        .expect("partial write");
    let start = Instant::now();
    let mut response = String::new();
    reader.read_line(&mut response).expect("read reject");
    let reject = parse_error_frame(response.trim()).expect("typed reject");
    assert_eq!(reject.code, Some(RejectCode::Deadline), "{response:?}");
    assert!(reject.retryable, "a deadline kill invites a clean retry");
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "deadline should fire near 200ms, not at the idle timeout"
    );

    assert_alive(&server.addr);
    server.stop();
}

/// A connection that goes completely quiet is reaped at the idle
/// timeout, freeing its thread.
#[test]
fn idle_connections_are_reaped() {
    let server = start_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_dir: None,
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let (_stream, mut reader) = connect(&server.addr);
    read_line(&mut reader); // hello

    // No traffic: the server should close the socket (EOF) soon after
    // the idle timeout, well within the read timeout.
    let mut rest = String::new();
    let n = reader.read_to_string(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "idle connection should be closed: {rest:?}");

    assert_alive(&server.addr);
    server.stop();
}
