//! Differential equivalence suite: the 64-way bit-parallel
//! [`BatchSimulator`] against the scalar [`Simulator`] reference.
//!
//! Random netlists with gated clock domains, DFF presets, injected
//! preset faults and ragged (non-multiple-of-64) cycle counts must
//! agree on every observable: per-cycle outputs, per-net toggle counts,
//! per-domain active-cycle counts, total cycles and the full
//! [`PowerReport`] derived from them.
//!
//! The seeded `#[test]`s carry the coverage in offline environments
//! where the `proptest` dependency is stubbed; the `proptest` block
//! widens the same check over the generator space.

use dalut_netlist::{
    power_report, BatchSimulator, CellKind, CellLibrary, DomainId, NetId, Netlist, Simulator,
    LANES, ROOT_DOMAIN,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomly generated sequential netlist plus the knobs the two
/// engines are configured with.
struct Scenario {
    netlist: Netlist,
    /// `(dff_net, value)` presets applied to both engines.
    presets: Vec<(NetId, bool)>,
    /// Domains gated off in both engines.
    disabled: Vec<DomainId>,
    /// One stimulus bit per input per cycle.
    stimulus: Vec<Vec<bool>>,
}

/// Builds a random netlist: two extra clock domains, a mixed pool of
/// combinational gates, DFFs (some with feedback, i.e. counters and
/// shift registers), ROM bits, random presets (some "faulted" by an
/// extra flip) and outputs that deliberately include DFF nets so the
/// post-edge output visibility rule is exercised.
fn scenario(seed: u64, cycles: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_inputs = rng.random_range(1..=5);
    let mut nl = Netlist::new("rand");
    let inputs = nl.input_bus("x", n_inputs);
    let d1 = nl.add_domain("d1");
    let d2 = nl.add_domain("d2");
    let domains = [ROOT_DOMAIN, d1, d2];

    let mut pool: Vec<NetId> = inputs.clone();
    pool.push(nl.const0());
    pool.push(nl.const1());
    let mut dffs: Vec<NetId> = Vec::new();

    let n_cells = rng.random_range(8..40);
    for _ in 0..n_cells {
        let pick = |rng: &mut StdRng, pool: &[NetId]| pool[rng.random_range(0..pool.len())];
        let net = match rng.random_range(0..8) {
            0 => {
                let a = pick(&mut rng, &pool);
                nl.inv(a)
            }
            1 => {
                let (a, b, s) = (
                    pick(&mut rng, &pool),
                    pick(&mut rng, &pool),
                    pick(&mut rng, &pool),
                );
                nl.mux2(a, b, s)
            }
            2 => {
                let d = pick(&mut rng, &pool);
                let q = nl.dff(d, domains[rng.random_range(0..domains.len())]);
                dffs.push(q);
                q
            }
            3 => {
                let q = nl.rom_bit(domains[rng.random_range(0..domains.len())]);
                dffs.push(q);
                q
            }
            _ => {
                let kind = [
                    CellKind::And2,
                    CellKind::Or2,
                    CellKind::Nand2,
                    CellKind::Nor2,
                    CellKind::Xor2,
                    CellKind::Xnor2,
                ][rng.random_range(0..6usize)];
                let (a, b) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                nl.gate2(kind, a, b)
            }
        };
        pool.push(net);
    }
    // Feedback: rewire some DFF inputs to late nets (tail of the pool),
    // building counters / read-modify-write loops across the registers.
    for &q in dffs.iter().take(dffs.len() / 2) {
        let d = pool[rng.random_range(pool.len() / 2..pool.len())];
        nl.rewire_dff_input(q, d);
    }

    // Outputs: a few random nets plus (when present) one guaranteed DFF.
    for (i, _) in (0..rng.random_range(1..=4)).enumerate() {
        let net = pool[rng.random_range(0..pool.len())];
        nl.output(format!("y{i}"), net);
    }
    if let Some(&q) = dffs.first() {
        nl.output("yq", q);
    }

    // Presets on a random subset, then an injected fault: flip one of
    // them again (models a corrupted stored bit, as the fault harness
    // does with lane-broadcast corrupted presets).
    let mut presets: Vec<(NetId, bool)> = Vec::new();
    for &q in &dffs {
        if rng.random_bool(0.7) {
            let v = rng.random();
            presets.push((q, v));
        }
    }
    if !presets.is_empty() && rng.random_bool(0.5) {
        let k = rng.random_range(0..presets.len());
        presets[k].1 = !presets[k].1;
    }

    let disabled: Vec<DomainId> = [d1, d2]
        .into_iter()
        .filter(|_| rng.random_bool(0.4))
        .collect();

    let stimulus = (0..cycles)
        .map(|_| (0..n_inputs).map(|_| rng.random()).collect())
        .collect();

    Scenario {
        netlist: nl,
        presets,
        disabled,
        stimulus,
    }
}

/// Runs the scenario on both engines and asserts every observable —
/// including the derived [`PowerReport`] — matches exactly.
fn assert_equivalent(sc: &Scenario) {
    let nl = &sc.netlist;
    let n_out = nl.outputs().len();

    let mut scalar = Simulator::new(nl).expect("acyclic");
    let mut batch = BatchSimulator::new(nl).expect("acyclic");
    for &(q, v) in &sc.presets {
        scalar.preset_dff(q, v).expect("preset targets a dff");
        batch.preset_dff(q, v).expect("preset targets a dff");
    }
    for &d in &sc.disabled {
        scalar.set_domain_enabled(d, false);
        batch.set_domain_enabled(d, false);
    }

    let mut scalar_outs: Vec<Vec<bool>> = Vec::with_capacity(sc.stimulus.len());
    let mut row = vec![false; n_out];
    for cycle in &sc.stimulus {
        scalar.step_into(cycle, &mut row);
        scalar_outs.push(row.clone());
    }

    let n_in = nl.inputs().len();
    let mut in_words = vec![0u64; n_in];
    let mut out_words = vec![0u64; n_out];
    let mut batch_outs: Vec<Vec<bool>> = Vec::with_capacity(sc.stimulus.len());
    for block in sc.stimulus.chunks(LANES) {
        for (bit, word) in in_words.iter_mut().enumerate() {
            *word = 0;
            for (lane, cycle) in block.iter().enumerate() {
                *word |= u64::from(cycle[bit]) << lane;
            }
        }
        batch
            .step_block(&in_words, block.len(), &mut out_words)
            .expect("well-formed block");
        for lane in 0..block.len() {
            batch_outs.push(out_words.iter().map(|w| (w >> lane) & 1 == 1).collect());
        }
    }

    assert_eq!(batch_outs, scalar_outs, "per-cycle outputs diverged");
    assert_eq!(batch.cycles(), scalar.cycles(), "cycle counters diverged");
    assert_eq!(
        batch.domain_active_cycles(),
        scalar.domain_active_cycles(),
        "active-cycle accounting diverged"
    );
    assert_eq!(batch.toggles(), scalar.toggles(), "toggle counts diverged");

    let lib = CellLibrary::nangate45();
    let scalar_power = power_report(nl, &scalar, &lib, 1.0);
    let batch_power = power_report(nl, &batch, &lib, 1.0);
    assert_eq!(batch_power, scalar_power, "PowerReport diverged");
}

/// Ragged cycle counts around the word boundary — every carry path in
/// the toggle accounting crosses here.
const RAGGED: [usize; 7] = [1, 63, 64, 65, 127, 128, 130];

#[test]
fn seeded_scenarios_match_scalar() {
    for seed in 0..40u64 {
        let cycles = RAGGED[seed as usize % RAGGED.len()];
        assert_equivalent(&scenario(seed, cycles));
    }
}

#[test]
fn multi_block_streams_match_scalar() {
    for seed in [7u64, 21, 99, 1234] {
        assert_equivalent(&scenario(seed, 3 * LANES + 17));
    }
}

#[test]
fn every_ragged_length_matches_scalar() {
    for &cycles in &RAGGED {
        assert_equivalent(&scenario(0xD1FF, cycles));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated scenario — gated domains, presets, faulted bits,
    /// ragged lengths — is bit-identical across both engines.
    #[test]
    fn batch_engine_is_equivalent(seed in 0u64..10_000, cycles in 1usize..150) {
        assert_equivalent(&scenario(seed, cycles));
    }
}
