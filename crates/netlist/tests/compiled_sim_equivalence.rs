//! Differential equivalence suite for the compiled SoA engine: every
//! wide backend ([`WideSimulator`] at 64/256/512 lanes, with both the
//! CPU-detected and the forced-portable kernel compilation) and the
//! chunk-parallel merge path against the scalar [`Simulator`]
//! reference and against each other.
//!
//! Random netlists with gated clock domains, DFF presets, injected
//! preset faults and ragged (non-multiple-of-width) cycle counts must
//! agree on every observable: per-cycle outputs, per-net toggle
//! counts, per-domain active-cycle counts, total cycles and the full
//! [`PowerReport`] derived from them.
//!
//! The seeded `#[test]`s carry the coverage in offline environments
//! where the `proptest` dependency is stubbed; the `proptest` block
//! widens the same check over the generator space.

use dalut_netlist::{
    merge_chunk_stats, power_report, Activity, CellKind, CellLibrary, CompiledNetlist, DomainId,
    NetId, Netlist, PowerReport, SimBackend, Simulator, WideSimulator, ROOT_DOMAIN,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomly generated sequential netlist plus the knobs the engines
/// are configured with.
struct Scenario {
    netlist: Netlist,
    /// `(dff_net, value)` presets applied to every engine.
    presets: Vec<(NetId, bool)>,
    /// Domains gated off in every engine.
    disabled: Vec<DomainId>,
    /// One stimulus bit per input per cycle.
    stimulus: Vec<Vec<bool>>,
}

/// Builds a random netlist: two extra clock domains, a mixed pool of
/// combinational gates, DFFs (with feedback when `feedback` is true,
/// i.e. counters and shift registers), ROM bits, random presets (some
/// "faulted" by an extra flip) and outputs that deliberately include
/// DFF nets so the post-edge output visibility rule is exercised.
/// With `feedback` false every non-ROM DFF lands in a disabled domain,
/// making the scenario chunk-parallel safe.
fn scenario(seed: u64, cycles: usize, feedback: bool) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_inputs = rng.random_range(1..=5);
    let mut nl = Netlist::new("rand");
    let inputs = nl.input_bus("x", n_inputs);
    let d1 = nl.add_domain("d1");
    let d2 = nl.add_domain("d2");
    let domains = [ROOT_DOMAIN, d1, d2];

    let mut pool: Vec<NetId> = inputs.clone();
    pool.push(nl.const0());
    pool.push(nl.const1());
    let mut dffs: Vec<NetId> = Vec::new();

    let n_cells = rng.random_range(8..40);
    for _ in 0..n_cells {
        let pick = |rng: &mut StdRng, pool: &[NetId]| pool[rng.random_range(0..pool.len())];
        let net = match rng.random_range(0..8) {
            0 => {
                let a = pick(&mut rng, &pool);
                nl.inv(a)
            }
            1 => {
                let (a, b, s) = (
                    pick(&mut rng, &pool),
                    pick(&mut rng, &pool),
                    pick(&mut rng, &pool),
                );
                nl.mux2(a, b, s)
            }
            2 => {
                // Plain DFFs are only chunk-safe when frozen: without
                // feedback allowed, pin them to the always-gated d1.
                let d = pick(&mut rng, &pool);
                let domain = if feedback {
                    domains[rng.random_range(0..domains.len())]
                } else {
                    d1
                };
                let q = nl.dff(d, domain);
                dffs.push(q);
                q
            }
            3 => {
                let q = nl.rom_bit(domains[rng.random_range(0..domains.len())]);
                dffs.push(q);
                q
            }
            _ => {
                let kind = [
                    CellKind::And2,
                    CellKind::Or2,
                    CellKind::Nand2,
                    CellKind::Nor2,
                    CellKind::Xor2,
                    CellKind::Xnor2,
                ][rng.random_range(0..6usize)];
                let (a, b) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                nl.gate2(kind, a, b)
            }
        };
        pool.push(net);
    }
    if feedback {
        // Rewire some DFF inputs to late nets (tail of the pool),
        // building counters / read-modify-write loops.
        for &q in dffs.iter().take(dffs.len() / 2) {
            let d = pool[rng.random_range(pool.len() / 2..pool.len())];
            nl.rewire_dff_input(q, d);
        }
    }

    for (i, _) in (0..rng.random_range(1..=4)).enumerate() {
        let net = pool[rng.random_range(0..pool.len())];
        nl.output(format!("y{i}"), net);
    }
    if let Some(&q) = dffs.first() {
        nl.output("yq", q);
    }

    let mut presets: Vec<(NetId, bool)> = Vec::new();
    for &q in &dffs {
        if rng.random_bool(0.7) {
            let v = rng.random();
            presets.push((q, v));
        }
    }
    if !presets.is_empty() && rng.random_bool(0.5) {
        let k = rng.random_range(0..presets.len());
        presets[k].1 = !presets[k].1;
    }

    let mut disabled: Vec<DomainId> = [d1, d2]
        .into_iter()
        .filter(|_| rng.random_bool(0.4))
        .collect();
    if !feedback && !disabled.contains(&d1) {
        // The chunk-safety invariant: every plain DFF's domain is off.
        disabled.push(d1);
    }

    let stimulus = (0..cycles)
        .map(|_| (0..n_inputs).map(|_| rng.random()).collect())
        .collect();

    Scenario {
        netlist: nl,
        presets,
        disabled,
        stimulus,
    }
}

/// Scalar reference run: per-cycle outputs plus the final activity.
fn scalar_reference(sc: &Scenario) -> (Vec<Vec<bool>>, Vec<u64>, Vec<u64>, u64, PowerReport) {
    let nl = &sc.netlist;
    let mut scalar = Simulator::new(nl).expect("acyclic");
    for &(q, v) in &sc.presets {
        scalar.preset_dff(q, v).expect("preset targets a dff");
    }
    for &d in &sc.disabled {
        scalar.set_domain_enabled(d, false);
    }
    let mut outs = Vec::with_capacity(sc.stimulus.len());
    let mut row = vec![false; nl.outputs().len()];
    for cycle in &sc.stimulus {
        scalar.step_into(cycle, &mut row);
        outs.push(row.clone());
    }
    let power = power_report(nl, &scalar, &CellLibrary::nangate45(), 1.0);
    (
        outs,
        scalar.toggles().to_vec(),
        scalar.domain_active_cycles().to_vec(),
        scalar.cycles(),
        power,
    )
}

/// Drives `sim` over `stimulus` in maximal blocks with limb-packed
/// I/O, returning the per-cycle outputs.
fn drive_wide(sim: &mut WideSimulator, sc: &Scenario) -> Vec<Vec<bool>> {
    let nl = &sc.netlist;
    let (n_in, n_out) = (nl.inputs().len(), nl.outputs().len());
    let limbs = sim.limbs_per_word();
    let block = sim.lanes_per_block();
    let mut in_words = vec![0u64; n_in * limbs];
    let mut out_words = vec![0u64; n_out * limbs];
    let mut outs = Vec::with_capacity(sc.stimulus.len());
    for chunk in sc.stimulus.chunks(block) {
        in_words.iter_mut().for_each(|w| *w = 0);
        for (lane, cycle) in chunk.iter().enumerate() {
            for (bit, &v) in cycle.iter().enumerate() {
                in_words[bit * limbs + lane / 64] |= u64::from(v) << (lane % 64);
            }
        }
        sim.step_block(&in_words, chunk.len(), &mut out_words)
            .expect("well-formed block");
        for lane in 0..chunk.len() {
            outs.push(
                (0..n_out)
                    .map(|k| (out_words[k * limbs + lane / 64] >> (lane % 64)) & 1 == 1)
                    .collect(),
            );
        }
    }
    outs
}

fn configure(sim: &mut WideSimulator, sc: &Scenario) {
    for &(q, v) in &sc.presets {
        sim.preset_dff(q, v).expect("preset targets a dff");
    }
    for &d in &sc.disabled {
        sim.set_domain_enabled(d, false);
    }
}

/// Runs the scenario on every wide backend (detected and portable
/// kernels) and asserts every observable matches the scalar reference.
fn assert_equivalent(sc: &Scenario) {
    let nl = &sc.netlist;
    let (ref_outs, ref_toggles, ref_active, ref_cycles, ref_power) = scalar_reference(sc);
    let compiled = CompiledNetlist::compile(nl).expect("acyclic");
    let lib = CellLibrary::nangate45();

    for backend in SimBackend::all_wide() {
        for portable in [false, true] {
            let mut sim = if portable {
                WideSimulator::new_portable(&compiled, backend)
            } else {
                WideSimulator::new(&compiled, backend)
            };
            configure(&mut sim, sc);
            let outs = drive_wide(&mut sim, sc);
            let tag = format!("backend {backend} (portable: {portable})");
            assert_eq!(outs, ref_outs, "{tag}: per-cycle outputs diverged");
            assert_eq!(sim.cycles(), ref_cycles, "{tag}: cycle counters diverged");
            assert_eq!(
                sim.domain_active_cycles(),
                &ref_active[..],
                "{tag}: active-cycle accounting diverged"
            );
            assert_eq!(
                sim.toggles(),
                &ref_toggles[..],
                "{tag}: toggle counts diverged"
            );
            assert_eq!(
                power_report(nl, &sim, &lib, 1.0),
                ref_power,
                "{tag}: PowerReport diverged"
            );
        }
    }
}

/// Splits the stimulus into independent chunks, simulates each on its
/// own engine, merges with exact carry stitching and asserts the
/// result against the scalar reference.
fn assert_chunked_equivalent(sc: &Scenario, backend: SimBackend, n_chunks: usize) {
    let nl = &sc.netlist;
    let (ref_outs, ref_toggles, ref_active, ref_cycles, ref_power) = scalar_reference(sc);
    let compiled = CompiledNetlist::compile(nl).expect("acyclic");
    let enabled: Vec<bool> = (0..nl.domains().len())
        .map(|d| !sc.disabled.iter().any(|x| x.index() == d))
        .collect();
    assert!(
        compiled.chunk_parallel_safe(&enabled),
        "chunk scenario must be chunk-parallel safe"
    );

    // Deliberately uneven chunk sizes: ragged boundaries everywhere.
    let per = sc.stimulus.len().div_ceil(n_chunks).max(1);
    let mut outs = Vec::new();
    let mut stats = Vec::new();
    for chunk in sc.stimulus.chunks(per) {
        let sub = Scenario {
            netlist: sc.netlist.clone(),
            presets: sc.presets.clone(),
            disabled: sc.disabled.clone(),
            stimulus: chunk.to_vec(),
        };
        let mut sim = WideSimulator::new(&compiled, backend);
        configure(&mut sim, &sub);
        outs.extend(drive_wide(&mut sim, &sub));
        stats.push(sim.chunk_stats());
    }
    let merged = merge_chunk_stats(&compiled, &stats);
    let tag = format!("chunked {backend} x{n_chunks}");
    assert_eq!(outs, ref_outs, "{tag}: per-cycle outputs diverged");
    assert_eq!(merged.cycles(), ref_cycles, "{tag}: cycles diverged");
    assert_eq!(
        merged.domain_active_cycles(),
        &ref_active[..],
        "{tag}: active-cycle accounting diverged"
    );
    assert_eq!(
        merged.toggles(),
        &ref_toggles[..],
        "{tag}: stitched toggle counts diverged"
    );
    assert_eq!(
        power_report(nl, &merged, &CellLibrary::nangate45(), 1.0),
        ref_power,
        "{tag}: PowerReport diverged"
    );
}

/// Ragged cycle counts around every word boundary of every width —
/// each carry path in the toggle accounting crosses one of these.
const RAGGED: [usize; 10] = [1, 63, 64, 65, 127, 130, 255, 257, 511, 513];

#[test]
fn fifty_seeded_scenarios_match_scalar_on_every_backend() {
    for seed in 0..50u64 {
        let cycles = RAGGED[seed as usize % RAGGED.len()];
        assert_equivalent(&scenario(seed, cycles, true));
    }
}

#[test]
fn multi_block_streams_match_scalar() {
    for seed in [7u64, 21, 99, 1234] {
        assert_equivalent(&scenario(seed, 3 * 512 + 17, true));
    }
}

#[test]
fn chunked_runs_stitch_exactly() {
    for seed in 0..12u64 {
        let sc = scenario(seed, 140 + 37 * seed as usize, false);
        for n_chunks in [2usize, 3, 5] {
            assert_chunked_equivalent(&sc, SimBackend::U64, n_chunks);
        }
        assert_chunked_equivalent(&sc, SimBackend::W256, 3);
        assert_chunked_equivalent(&sc, SimBackend::W512, 2);
    }
}

#[test]
fn feedback_netlists_are_not_chunk_safe() {
    // A counter bit (q = dff(!q)) must flunk the chunk-safety gate.
    let mut nl = Netlist::new("tff");
    let q = nl.rom_bit(ROOT_DOMAIN);
    let nq = nl.inv(q);
    nl.rewire_dff_input(q, nq);
    nl.output("q", q);
    let compiled = CompiledNetlist::compile(&nl).expect("acyclic");
    assert!(!compiled.chunk_parallel_safe(&[true]));
    // ...unless its clock domain is gated off.
    assert!(compiled.chunk_parallel_safe(&[false]));
}

#[test]
fn lowering_covers_every_combinational_cell() {
    let sc = scenario(3, 64, true);
    let compiled = CompiledNetlist::compile(&sc.netlist).expect("acyclic");
    assert_eq!(compiled.cell_count(), sc.netlist.cell_count());
    assert_eq!(compiled.input_count(), sc.netlist.inputs().len());
    assert_eq!(compiled.output_count(), sc.netlist.outputs().len());
    let comb = sc.netlist.topo_order().expect("acyclic").len();
    assert!(compiled.run_count() <= comb);
    assert!(comb == 0 || compiled.level_count() >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated scenario — gated domains, presets, faulted bits,
    /// ragged lengths — is bit-identical across every backend.
    #[test]
    fn compiled_engine_is_equivalent(seed in 0u64..10_000, cycles in 1usize..600) {
        assert_equivalent(&scenario(seed, cycles, true));
    }

    /// Any chunk-safe scenario stitches exactly at any chunk count.
    #[test]
    fn chunked_merge_is_exact(seed in 0u64..10_000, cycles in 2usize..400, chunks in 2usize..6) {
        assert_chunked_equivalent(&scenario(seed, cycles, false), SimBackend::Auto, chunks);
    }
}
