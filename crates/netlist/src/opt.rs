//! Netlist optimisation: constant propagation and dead-cell elimination.
//!
//! The architectures carry statically configured logic — routing-box mux
//! trees whose selects are constants, mode muxes pinned to one input,
//! enable-AND gates with a constant side. A synthesis tool (the paper's
//! DC run) folds all of that; this pass is the equivalent step for our
//! netlists, so area/power can be reported both for the *reconfigurable*
//! fabric (unoptimised) and for a *hardened* configuration (optimised).

use crate::cell::{Cell, CellKind, NetId};
use crate::netlist::Netlist;

/// What a net is known to be after constant propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Known {
    False,
    True,
    /// Identical to another net (wire alias).
    Alias(NetId),
    /// A live, genuinely dynamic net.
    Dynamic,
}

/// Statistics of one optimisation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Cells in the input netlist.
    pub cells_before: usize,
    /// Cells in the optimised netlist.
    pub cells_after: usize,
    /// Cells whose outputs were proven constant.
    pub constants_folded: usize,
    /// Cells replaced by a wire to one of their inputs.
    pub wires_folded: usize,
}

impl OptStats {
    /// Fraction of cells removed.
    pub fn reduction(&self) -> f64 {
        if self.cells_before == 0 {
            0.0
        } else {
            1.0 - self.cells_after as f64 / self.cells_before as f64
        }
    }
}

fn resolve(known: &[Known], mut id: NetId) -> Known {
    // Follow alias chains (bounded: aliases always point to earlier
    // cells, so this terminates).
    loop {
        match known[id.index()] {
            Known::Alias(next) => id = next,
            Known::False => return Known::False,
            Known::True => return Known::True,
            Known::Dynamic => return Known::Alias(id),
        }
    }
}

/// Folds one cell given the resolved knowledge about its inputs.
/// Returns what its output is known to be.
fn fold(cell: &Cell, known: &[Known]) -> Known {
    use Known::{Alias, Dynamic, False, True};
    let kind = cell.kind;
    let ins: Vec<Known> = cell.inputs().iter().map(|&i| resolve(known, i)).collect();
    let cbool = |k: &Known| match k {
        False => Some(false),
        True => Some(true),
        _ => None,
    };
    match kind {
        CellKind::Input | CellKind::Dff => Dynamic,
        CellKind::Const0 => False,
        CellKind::Const1 => True,
        CellKind::Buf => ins[0],
        CellKind::Inv => match ins[0] {
            False => True,
            True => False,
            _ => Dynamic,
        },
        CellKind::And2 | CellKind::Nand2 => {
            let inverted = kind == CellKind::Nand2;
            match (cbool(&ins[0]), cbool(&ins[1])) {
                (Some(false), _) | (_, Some(false)) => constant(inverted),
                (Some(true), Some(true)) => constant(!inverted),
                (Some(true), None) if !inverted => ins[1],
                (None, Some(true)) if !inverted => ins[0],
                _ => Dynamic,
            }
        }
        CellKind::Or2 | CellKind::Nor2 => {
            let inverted = kind == CellKind::Nor2;
            match (cbool(&ins[0]), cbool(&ins[1])) {
                (Some(true), _) | (_, Some(true)) => constant(!inverted),
                (Some(false), Some(false)) => constant(inverted),
                (Some(false), None) if !inverted => ins[1],
                (None, Some(false)) if !inverted => ins[0],
                _ => Dynamic,
            }
        }
        CellKind::Xor2 | CellKind::Xnor2 => {
            match (cbool(&ins[0]), cbool(&ins[1])) {
                (Some(a), Some(b)) => constant((a ^ b) ^ (kind == CellKind::Xnor2)),
                _ => {
                    // x ^ x and x ^ ~x need structural identity, which the
                    // alias resolution gives us.
                    if let (Alias(a), Alias(b)) = (ins[0], ins[1]) {
                        if a == b {
                            return constant(kind == CellKind::Xnor2);
                        }
                    }
                    Dynamic
                }
            }
        }
        CellKind::Mux2 => match cbool(&ins[2]) {
            Some(false) => ins[0],
            Some(true) => ins[1],
            None => {
                // Both data inputs equal (constant or same net).
                match (ins[0], ins[1]) {
                    (False, False) => False,
                    (True, True) => True,
                    (Alias(a), Alias(b)) if a == b => Alias(a),
                    _ => Dynamic,
                }
            }
        },
    }
}

fn constant(v: bool) -> Known {
    if v {
        Known::True
    } else {
        Known::False
    }
}

/// Optimises a netlist: propagates constants forward, folds
/// trivially-reducible gates into wires, then removes every cell that no
/// output, DFF or live cell transitively depends on. Port order, clock
/// domains and observable behaviour are preserved.
///
/// Returns the optimised netlist and the statistics.
///
/// # Examples
///
/// ```
/// use dalut_netlist::{equivalent_exhaustive, optimize, CellKind, Netlist};
///
/// let mut nl = Netlist::new("fold");
/// let a = nl.input("a");
/// let zero = nl.const0();
/// let dead = nl.gate2(CellKind::And2, a, zero); // = 0
/// let y = nl.gate2(CellKind::Or2, dead, a);     // = a
/// nl.output("y", y);
///
/// let (opt, stats) = optimize(&nl);
/// assert!(stats.cells_after < stats.cells_before);
/// assert!(equivalent_exhaustive(&nl, &opt).unwrap());
/// ```
pub fn optimize(netlist: &Netlist) -> (Netlist, OptStats) {
    let (nl, stats, _) = optimize_mapped(netlist);
    (nl, stats)
}

/// Like [`optimize`], additionally returning the old-net → new-net map
/// (`None` for nets that were folded to constants or eliminated), so
/// callers holding references into the original netlist — e.g. DFF
/// preset lists — can carry them over.
pub fn optimize_mapped(netlist: &Netlist) -> (Netlist, OptStats, Vec<Option<NetId>>) {
    let n = netlist.cell_count();
    let mut known = vec![Known::Dynamic; n];
    let mut constants_folded = 0usize;
    let mut wires_folded = 0usize;

    // Forward pass in creation order: every cell only reads earlier cells
    // or DFF outputs (which stay Dynamic), so one pass suffices for
    // constants; DFFs whose D pin is constant would need a fixpoint and
    // are deliberately left dynamic (their reset state is part of the
    // configuration).
    for (i, cell) in netlist.cells().iter().enumerate() {
        let k = match fold(cell, &known) {
            Known::Alias(a) if a.index() == i => Known::Dynamic,
            other => other,
        };
        match k {
            Known::False | Known::True => {
                if !matches!(cell.kind, CellKind::Const0 | CellKind::Const1) {
                    constants_folded += 1;
                }
                known[i] = k;
            }
            Known::Alias(_) => {
                wires_folded += 1;
                known[i] = k;
            }
            Known::Dynamic => {}
        }
    }

    // Liveness: outputs and DFF D pins of live DFFs keep cells alive.
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mark = |id: NetId, live: &mut Vec<bool>, stack: &mut Vec<usize>| {
        let root = match resolve(&known, id) {
            Known::Alias(a) => a.index(),
            _ => return, // constants need no driver
        };
        if !live[root] {
            live[root] = true;
            stack.push(root);
        }
    };
    for (_, net) in netlist.outputs() {
        mark(*net, &mut live, &mut stack);
    }
    // Keep all DFFs initially? Only DFFs that something live reads. We
    // iterate the worklist, and when a DFF becomes live we pull in its D
    // cone.
    while let Some(i) = stack.pop() {
        for &inp in netlist.cells()[i].inputs() {
            mark(inp, &mut live, &mut stack);
        }
    }

    // Rebuild.
    let mut out = Netlist::new(netlist.name());
    for d in 1..netlist.domains().len() {
        out.add_domain(netlist.domains()[d].clone());
    }
    let mut remap: Vec<Option<NetId>> = vec![None; n];
    // Shared constants, created lazily.
    let mut const0: Option<NetId> = None;
    let mut const1: Option<NetId> = None;

    // First create all primary inputs (they must exist in order even if
    // dead, to keep the interface identical).
    for (name, id) in netlist.inputs() {
        let new = out.input(name.clone());
        remap[id.index()] = Some(new);
    }

    let lookup = |id: NetId,
                  out: &mut Netlist,
                  remap: &Vec<Option<NetId>>,
                  const0: &mut Option<NetId>,
                  const1: &mut Option<NetId>|
     -> NetId {
        match resolve(&known, id) {
            Known::False => *const0.get_or_insert_with(|| out.const0()),
            Known::True => *const1.get_or_insert_with(|| out.const1()),
            Known::Alias(a) => remap[a.index()].expect("live cells created in order"),
            Known::Dynamic => unreachable!("resolve never returns Dynamic"),
        }
    };

    // Pass A: create all live DFFs first as self-looped placeholders.
    // D pins may legally reference *later* cells (`rewire_dff_input`
    // closes read-modify-write loops), so they are wired in pass C after
    // every combinational cell exists.
    for (i, cell) in netlist.cells().iter().enumerate() {
        if live[i] && cell.kind == CellKind::Dff {
            let domain = crate::netlist::DomainId(cell.domain() as u16);
            remap[i] = Some(out.rom_bit(domain));
        }
    }
    // Pass B: combinational cells, in creation order (they only ever
    // reference earlier cells or DFFs, all of which now exist).
    for (i, cell) in netlist.cells().iter().enumerate() {
        if !live[i] || remap[i].is_some() || cell.kind == CellKind::Dff {
            continue;
        }
        if !matches!(resolve(&known, NetId(i as u32)), Known::Alias(a) if a.index() == i) {
            continue; // folded away; consumers resolve through `known`
        }
        let ins: Vec<NetId> = cell
            .inputs()
            .iter()
            .map(|&inp| lookup(inp, &mut out, &remap, &mut const0, &mut const1))
            .collect();
        let new = match cell.kind {
            CellKind::Input | CellKind::Dff => continue, // already created
            CellKind::Const0 => *const0.get_or_insert_with(|| out.const0()),
            CellKind::Const1 => *const1.get_or_insert_with(|| out.const1()),
            CellKind::Inv | CellKind::Buf => out.gate1(cell.kind, ins[0]),
            CellKind::Mux2 => out.mux2(ins[0], ins[1], ins[2]),
            k => out.gate2(k, ins[0], ins[1]),
        };
        remap[i] = Some(new);
    }
    // Pass C: wire the D pins of the live DFFs.
    for (i, cell) in netlist.cells().iter().enumerate() {
        if !(live[i] && cell.kind == CellKind::Dff) {
            continue;
        }
        let new_q = remap[i].expect("created in pass A");
        let old_d = cell.inputs()[0];
        let new_d = if old_d.index() == i {
            new_q // retained self-loop ROM bit
        } else {
            lookup(old_d, &mut out, &remap, &mut const0, &mut const1)
        };
        out.rewire_dff_input(new_q, new_d);
    }

    // Outputs.
    for (name, net) in netlist.outputs() {
        let new = lookup(*net, &mut out, &remap, &mut const0, &mut const1);
        out.output(name.clone(), new);
    }

    let stats = OptStats {
        cells_before: n,
        cells_after: out.cell_count(),
        constants_folded,
        wires_folded,
    };
    (out, stats, remap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::equivalent_exhaustive;
    use crate::netlist::ROOT_DOMAIN;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn constant_select_mux_folds_to_wire() {
        let mut nl = Netlist::new("m");
        let a = nl.input("a");
        let b = nl.input("b");
        let s = nl.const1();
        let y = nl.mux2(a, b, s);
        nl.output("y", y);
        let (opt, stats) = optimize(&nl);
        // y == b: no gates remain at all.
        assert_eq!(
            opt.cells()
                .iter()
                .filter(|c| c.kind == CellKind::Mux2)
                .count(),
            0
        );
        assert!(stats.wires_folded >= 1);
        assert!(equivalent_exhaustive(&nl, &opt).unwrap());
    }

    #[test]
    fn and_with_zero_folds_to_constant() {
        let mut nl = Netlist::new("a0");
        let a = nl.input("a");
        let z = nl.const0();
        let y = nl.gate2(CellKind::And2, a, z);
        let w = nl.gate2(CellKind::Or2, y, a); // or(0, a) -> a
        nl.output("w", w);
        let (opt, stats) = optimize(&nl);
        assert!(stats.constants_folded >= 1);
        assert!(equivalent_exhaustive(&nl, &opt).unwrap());
        // Everything reduces to a wire from input a.
        assert_eq!(
            opt.cells()
                .iter()
                .filter(|c| !matches!(c.kind, CellKind::Input))
                .count(),
            0
        );
    }

    #[test]
    fn xor_of_same_net_is_zero() {
        let mut nl = Netlist::new("xx");
        let a = nl.input("a");
        let buf = nl.gate1(CellKind::Buf, a);
        let y = nl.gate2(CellKind::Xor2, a, buf);
        nl.output("y", y);
        let (opt, _) = optimize(&nl);
        assert!(equivalent_exhaustive(&nl, &opt).unwrap());
        assert!(opt.cells().iter().any(|c| c.kind == CellKind::Const0));
    }

    #[test]
    fn dead_logic_is_removed() {
        let mut nl = Netlist::new("dead");
        let a = nl.input("a");
        let _unused = nl.gate2(CellKind::Xor2, a, a);
        let y = nl.inv(a);
        nl.output("y", y);
        let (opt, stats) = optimize(&nl);
        assert_eq!(stats.cells_after, 2); // input + inv
        assert!(equivalent_exhaustive(&nl, &opt).unwrap());
    }

    #[test]
    fn sequential_rom_structure_survives() {
        let mut nl = Netlist::new("rom");
        let dom = nl.add_domain("g");
        let q0 = nl.rom_bit(ROOT_DOMAIN);
        let q1 = nl.rom_bit(dom);
        let y = nl.gate2(CellKind::And2, q0, q1);
        nl.output("y", y);
        let (opt, _) = optimize(&nl);
        assert_eq!(opt.total_dffs(), 2);
        assert_eq!(opt.dff_counts()[1], 1); // gated domain preserved
        assert_eq!(opt.domains().len(), 2);
    }

    #[test]
    fn random_netlists_stay_equivalent() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let mut nl = Netlist::new("rand");
            let inputs = nl.input_bus("x", 4);
            let mut nets: Vec<NetId> = inputs.clone();
            nets.push(nl.const0());
            nets.push(nl.const1());
            for _ in 0..30 {
                let pick =
                    |rng: &mut StdRng, nets: &Vec<NetId>| nets[rng.random_range(0..nets.len())];
                let a = pick(&mut rng, &nets);
                let b = pick(&mut rng, &nets);
                let s = pick(&mut rng, &nets);
                let kind = match rng.random_range(0..8) {
                    0 => CellKind::Inv,
                    1 => CellKind::And2,
                    2 => CellKind::Or2,
                    3 => CellKind::Nand2,
                    4 => CellKind::Nor2,
                    5 => CellKind::Xor2,
                    6 => CellKind::Xnor2,
                    _ => CellKind::Mux2,
                };
                let id = match kind {
                    CellKind::Inv => nl.gate1(kind, a),
                    CellKind::Mux2 => nl.mux2(a, b, s),
                    k => nl.gate2(k, a, b),
                };
                nets.push(id);
            }
            for (i, &net) in nets.iter().rev().take(3).enumerate() {
                nl.output(format!("y[{i}]"), net);
            }
            let (opt, stats) = optimize(&nl);
            assert!(
                equivalent_exhaustive(&nl, &opt).unwrap(),
                "trial {trial} diverged"
            );
            assert!(stats.cells_after <= stats.cells_before);
        }
    }

    #[test]
    fn random_sequential_netlists_stay_equivalent() {
        // Same as the combinational fuzz, but sprinkle DFFs (including
        // rewired read-modify-write loops) through the logic; equivalence
        // is trajectory equality over the full input sweep.
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..15 {
            let mut nl = Netlist::new("seqrand");
            let inputs = nl.input_bus("x", 3);
            let dom = nl.add_domain("g");
            let mut nets: Vec<NetId> = inputs.clone();
            nets.push(nl.const0());
            nets.push(nl.const1());
            let mut dffs: Vec<NetId> = Vec::new();
            for step in 0..25 {
                let pick =
                    |rng: &mut StdRng, nets: &Vec<NetId>| nets[rng.random_range(0..nets.len())];
                let a = pick(&mut rng, &nets);
                let b = pick(&mut rng, &nets);
                let id = match rng.random_range(0..6) {
                    0 => nl.gate1(CellKind::Inv, a),
                    1 => nl.gate2(CellKind::And2, a, b),
                    2 => nl.gate2(CellKind::Xor2, a, b),
                    3 => {
                        let s = pick(&mut rng, &nets);
                        nl.mux2(a, b, s)
                    }
                    4 => {
                        let domain = if step % 2 == 0 {
                            crate::netlist::ROOT_DOMAIN
                        } else {
                            dom
                        };
                        let q = nl.dff(a, domain);
                        dffs.push(q);
                        q
                    }
                    _ => {
                        // A storage bit with a capture mux (backward ref).
                        let q = nl.rom_bit(crate::netlist::ROOT_DOMAIN);
                        let sel = pick(&mut rng, &nets);
                        let d = nl.mux2(q, a, sel);
                        nl.rewire_dff_input(q, d);
                        dffs.push(q);
                        q
                    }
                };
                nets.push(id);
            }
            for (i, &net) in nets.iter().rev().take(2).enumerate() {
                nl.output(format!("y[{i}]"), net);
            }
            let (opt, _) = optimize(&nl);
            assert!(
                crate::equiv::equivalent_exhaustive(&nl, &opt).unwrap(),
                "trial {trial} diverged"
            );
            // Run a longer random stimulus too.
            assert!(
                crate::equiv::equivalent_random(&nl, &opt, 200, trial).unwrap(),
                "trial {trial} diverged on random stimulus"
            );
        }
    }

    #[test]
    fn routing_box_with_constant_selects_collapses() {
        // The headline use case: a 8-to-1 static mux tree folds to a wire.
        let mut nl = Netlist::new("route");
        let ins = nl.input_bus("x", 8);
        let sel: Vec<NetId> = [true, false, true]
            .iter()
            .map(|&b| nl.constant(b))
            .collect();
        let y = nl.mux_tree(&ins, &sel);
        nl.output("y", y);
        let (opt, _) = optimize(&nl);
        // x[5] selected (sel = 101 LSB-first); no muxes remain.
        assert_eq!(
            opt.cells()
                .iter()
                .filter(|c| c.kind == CellKind::Mux2)
                .count(),
            0
        );
        assert!(equivalent_exhaustive(&nl, &opt).unwrap());
    }
}
