//! 64-way bit-parallel ("word-level") two-state simulation.
//!
//! [`BatchSimulator`] packs 64 consecutive stimulus cycles into one `u64`
//! *lane word* per net — lane `l` of a word is the net's value at cycle
//! `block_start + l` — and evaluates every gate once per block as a word
//! operation. Toggle counting, clock-domain activity and DFF semantics
//! match [`Simulator`](crate::sim::Simulator) bit for bit over the same
//! stimulus sequence, so a [`power_report`](crate::power::power_report)
//! computed from a batched run is identical to the scalar run.
//!
//! # Equivalence argument (see DESIGN.md §10)
//!
//! *Combinational, input and constant nets.* The scalar simulator counts a
//! toggle at cycle `c ≥ 1` iff the settled value differs from cycle
//! `c − 1`, never at the very first cycle. With `W` a settled lane word,
//! `carry` the last lane of the previous block and `mask` the low-`m` bits
//! of an `m`-lane block, `(W ^ ((W << 1) | carry)) & mask` has exactly one
//! set bit per such transition — bit `l` compares lane `l` against lane
//! `l − 1`, bit 0 compares against the previous block's last lane through
//! `carry`, and on the very first block bit 0 is masked off. Popcount of
//! that word therefore adds precisely the scalar count.
//!
//! *DFF nets.* The scalar simulator counts a DFF toggle at the end of
//! cycle `c ≥ 1` iff the captured next state differs from the stored
//! state — i.e. the toggle sequence is the transition sequence of the
//! *next-state* stream `NS_c = D_c`, with the end-of-cycle-0 edge never
//! counted. The same carry formula applied to the D-input's settled word
//! reproduces it exactly; the word's last lane doubles as the stored state
//! entering the next block. Gated (disabled-domain) DFFs are frozen
//! broadcasts and never count toggles, exactly like the scalar engine.
//!
//! *Cross-lane DFF feedback.* Within a block, lane `l` of a DFF's visible
//! word is the state *after* lane `l − 1`'s clock edge:
//! `Q = ((D << 1) | state) & mask`, where `D` itself may depend on `Q`.
//! The block is solved by fixpoint iteration from `Q = broadcast(state)`:
//! after `k` combinational passes the low `k + 1` lanes of every word are
//! final (lane 0 is correct by construction and each pass extends the
//! prefix by one lane), so at most `m + 1` passes converge. ROM bits
//! (self-loop `D = Q`) converge after a single pass — the dominant case
//! in LUT architectures.
//!
//! Clock-domain enables may only change on block boundaries (the scalar
//! equivalent changes them between steps).

use crate::cell::{CellKind, NetId};
use crate::netlist::{DomainId, Netlist, NetlistError};

/// Number of stimulus cycles packed into one lane word.
pub const LANES: usize = 64;

/// A 64-way bit-parallel simulator bound to one netlist.
///
/// # Examples
///
/// ```
/// use dalut_netlist::{BatchSimulator, CellKind, Netlist, Simulator};
///
/// let mut nl = Netlist::new("xor");
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let y = nl.gate2(CellKind::Xor2, a, b);
/// nl.output("y", y);
///
/// let mut batch = BatchSimulator::new(&nl).unwrap();
/// let mut out = [0u64; 1];
/// // Lanes are cycles: a = 0,1,0,1  b = 0,0,1,1  ->  y = 0,1,1,0.
/// batch.step_block(&[0b1010, 0b1100], 4, &mut out).unwrap();
/// assert_eq!(out[0], 0b0110);
/// assert_eq!(batch.cycles(), 4);
/// ```
#[derive(Debug)]
pub struct BatchSimulator<'a> {
    netlist: &'a Netlist,
    order: Vec<u32>,
    /// Settled lane word per net (always masked to the current block).
    words: Vec<u64>,
    /// Last visible lane of the previous block, per net (bit 0 only) —
    /// the cross-word-boundary toggle reference.
    carry: Vec<u64>,
    /// Stored state per DFF cell entering the next block.
    state: Vec<bool>,
    /// Output-toggle count per net.
    toggles: Vec<u64>,
    /// Whether each clock domain currently receives clocks.
    enabled: Vec<bool>,
    /// Clocked cycles accumulated per domain.
    active_cycles: Vec<u64>,
    /// Total cycles stepped.
    cycles: u64,
    initialized: bool,
    /// Indices of the DFF cells (fixpoint + toggle loops iterate these).
    dffs: Vec<u32>,
    /// Two-phase commit scratch, parallel to `dffs`.
    dff_next: Vec<u64>,
}

impl<'a> BatchSimulator<'a> {
    /// Creates a batch simulator; all nets start at 0, all domains
    /// enabled.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let order = netlist.topo_order()?;
        let n = netlist.cell_count();
        let dffs: Vec<u32> = netlist
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == CellKind::Dff)
            .map(|(i, _)| i as u32)
            .collect();
        let dff_count = dffs.len();
        Ok(Self {
            netlist,
            order,
            words: vec![0; n],
            carry: vec![0; n],
            state: vec![false; n],
            toggles: vec![0; n],
            enabled: vec![true; netlist.domains().len()],
            active_cycles: vec![0; netlist.domains().len()],
            cycles: 0,
            initialized: false,
            dffs,
            dff_next: vec![0; dff_count],
        })
    }

    /// Presets a DFF's stored value (e.g. ROM contents) before
    /// simulation; the value is broadcast across all lanes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotADff`] if `net` is not a DFF.
    pub fn preset_dff(&mut self, net: NetId, value: bool) -> Result<(), NetlistError> {
        if self.netlist.cells()[net.index()].kind != CellKind::Dff {
            return Err(NetlistError::NotADff(net.index()));
        }
        self.state[net.index()] = value;
        // The preset is also the toggle reference for the first enabled
        // block of a domain gated from the start.
        self.carry[net.index()] = u64::from(value);
        Ok(())
    }

    /// Enables or disables a clock domain (clock gating). May only be
    /// called between blocks.
    pub fn set_domain_enabled(&mut self, domain: DomainId, enabled: bool) {
        self.enabled[domain.index()] = enabled;
    }

    /// Steps `lanes` clock cycles at once (`1..=64`).
    ///
    /// `inputs[k]` carries primary input `k` for the whole block, lane
    /// `l` (bit `l`) being its value at the block's `l`-th cycle; bits at
    /// or above `lanes` are ignored. `out[k]` receives primary output
    /// `k`'s lane word. A final ragged block (`lanes < 64`) counts
    /// exactly `lanes` cycles and no phantom toggles.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadLaneCount`] if `lanes` is 0 or exceeds
    /// [`LANES`], and [`NetlistError::PortWidthMismatch`] if a slice
    /// length differs from the port count. The simulator state is
    /// untouched on error.
    pub fn step_block(
        &mut self,
        inputs: &[u64],
        lanes: usize,
        out: &mut [u64],
    ) -> Result<(), NetlistError> {
        if !(1..=LANES).contains(&lanes) {
            return Err(NetlistError::BadLaneCount { lanes, max: LANES });
        }
        let ports = self.netlist.inputs();
        if inputs.len() != ports.len() {
            return Err(NetlistError::PortWidthMismatch {
                role: "input",
                expected: ports.len(),
                got: inputs.len(),
            });
        }
        if out.len() != self.netlist.outputs().len() {
            return Err(NetlistError::PortWidthMismatch {
                role: "output",
                expected: self.netlist.outputs().len(),
                got: out.len(),
            });
        }
        let mask = if lanes == LANES {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };

        // Source words: inputs, constants, and DFFs broadcast from their
        // stored state (the fixpoint's starting point).
        for ((_, net), &w) in ports.iter().zip(inputs) {
            self.words[net.index()] = w & mask;
        }
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            match cell.kind {
                CellKind::Const0 => self.words[i] = 0,
                CellKind::Const1 => self.words[i] = mask,
                CellKind::Dff => self.words[i] = if self.state[i] { mask } else { 0 },
                _ => {}
            }
        }

        // Settle the block: combinational word evaluation interleaved
        // with two-phase DFF lane shifts until nothing changes. See the
        // module docs for the convergence argument.
        let mut passes = 0usize;
        loop {
            passes += 1;
            assert!(
                passes <= LANES + 2,
                "DFF lane fixpoint failed to converge (netlist bug)"
            );
            for idx in 0..self.order.len() {
                let i = self.order[idx] as usize;
                let cell = &self.netlist.cells()[i];
                let w = cell.inputs.map(|inp| self.words[inp.index()]);
                self.words[i] = eval_cell_word(cell.kind, &w, mask);
            }
            if self.dffs.is_empty() {
                break;
            }
            let mut changed = false;
            for (k, &i) in self.dffs.iter().enumerate() {
                let i = i as usize;
                let cell = &self.netlist.cells()[i];
                let q = if self.enabled[cell.domain()] {
                    let d = self.words[cell.inputs()[0].index()];
                    ((d << 1) | u64::from(self.state[i])) & mask
                } else {
                    self.words[i] // frozen broadcast
                };
                self.dff_next[k] = q;
                changed |= q != self.words[i];
            }
            if !changed {
                break;
            }
            for (k, &i) in self.dffs.iter().enumerate() {
                self.words[i as usize] = self.dff_next[k];
            }
        }

        // Toggle counting + state/carry update (formula in module docs).
        let top = 1u64 << (lanes - 1);
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            let w = if cell.kind == CellKind::Dff {
                if !self.enabled[cell.domain()] {
                    continue; // frozen: no toggles, reference unchanged
                }
                // Next-state word: the D input's settled lanes.
                self.words[cell.inputs()[0].index()]
            } else {
                self.words[i]
            };
            let mut diff = (w ^ ((w << 1) | self.carry[i])) & mask;
            if !self.initialized {
                diff &= !1; // the very first cycle has no predecessor
            }
            self.toggles[i] += u64::from(diff.count_ones());
            self.carry[i] = u64::from(w & top != 0);
            if cell.kind == CellKind::Dff {
                self.state[i] = w & top != 0;
            }
        }

        for (d, &en) in self.enabled.iter().enumerate() {
            if en {
                self.active_cycles[d] += lanes as u64;
            }
        }
        self.cycles += lanes as u64;
        self.initialized = true;
        // The scalar engine reads outputs after the clock edge: a
        // DFF-driven output shows its post-edge (next-state) value, a
        // combinational output its pre-edge settled value.
        for (slot, (_, net)) in out.iter_mut().zip(self.netlist.outputs()) {
            let i = net.index();
            let cell = &self.netlist.cells()[i];
            *slot = if cell.kind == CellKind::Dff && self.enabled[cell.domain()] {
                self.words[cell.inputs()[0].index()]
            } else {
                self.words[i]
            };
        }
        Ok(())
    }

    /// Total toggles of net `net` so far.
    pub fn toggle_count(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// All per-net toggle counters.
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Cycles stepped so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Clocked cycles accumulated per domain.
    pub fn domain_active_cycles(&self) -> &[u64] {
        &self.active_cycles
    }
}

/// Word-level combinational evaluation; every operand is masked, so only
/// inverting results need re-masking.
#[inline]
fn eval_cell_word(kind: CellKind, w: &[u64; 3], mask: u64) -> u64 {
    match kind {
        CellKind::Inv => !w[0] & mask,
        CellKind::Buf => w[0],
        CellKind::And2 => w[0] & w[1],
        CellKind::Or2 => w[0] | w[1],
        CellKind::Nand2 => !(w[0] & w[1]) & mask,
        CellKind::Nor2 => !(w[0] | w[1]) & mask,
        CellKind::Xor2 => w[0] ^ w[1],
        CellKind::Xnor2 => !(w[0] ^ w[1]) & mask,
        // `!sel` spills ones above the mask, but `a` is masked.
        CellKind::Mux2 => (w[2] & w[1]) | (!w[2] & w[0]),
        CellKind::Input | CellKind::Const0 | CellKind::Const1 | CellKind::Dff => {
            unreachable!("source cells are not in the combinational order")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::ROOT_DOMAIN;
    use crate::sim::Simulator;

    /// Drives both engines over the same per-cycle input values and
    /// asserts outputs, toggles, cycles and active cycles all agree.
    fn assert_parity(nl: &Netlist, stimulus: &[Vec<bool>], gated_off: &[DomainId]) {
        let mut scalar = Simulator::new(nl).unwrap();
        let mut batch = BatchSimulator::new(nl).unwrap();
        for &d in gated_off {
            scalar.set_domain_enabled(d, false);
            batch.set_domain_enabled(d, false);
        }
        let width = nl.inputs().len();
        let nout = nl.outputs().len();
        let mut batch_out = vec![0u64; nout];
        let mut cursor = 0usize;
        while cursor < stimulus.len() {
            let lanes = (stimulus.len() - cursor).min(LANES);
            let mut words = vec![0u64; width];
            for l in 0..lanes {
                for (k, word) in words.iter_mut().enumerate() {
                    *word |= u64::from(stimulus[cursor + l][k]) << l;
                }
            }
            batch
                .step_block(&words, lanes, &mut batch_out)
                .expect("well-formed block");
            for l in 0..lanes {
                let scalar_out = scalar.step(&stimulus[cursor + l]);
                for (k, &s) in scalar_out.iter().enumerate() {
                    assert_eq!(
                        (batch_out[k] >> l) & 1 == 1,
                        s,
                        "output {k} differs at cycle {}",
                        cursor + l
                    );
                }
            }
            cursor += lanes;
        }
        assert_eq!(batch.cycles(), scalar.cycles());
        assert_eq!(batch.domain_active_cycles(), scalar.domain_active_cycles());
        assert_eq!(batch.toggles(), scalar.toggles(), "toggle counts differ");
    }

    fn xorshift(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    fn random_stimulus(width: usize, cycles: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut s = seed.max(1);
        (0..cycles)
            .map(|_| (0..width).map(|_| xorshift(&mut s) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn combinational_word_eval_matches_scalar() {
        let mut nl = Netlist::new("comb");
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let x = nl.gate2(CellKind::Nand2, a, b);
        let y = nl.mux2(x, b, c);
        let na = nl.inv(a);
        let z = nl.gate2(CellKind::Xnor2, y, na);
        nl.output("y", y);
        nl.output("z", z);
        for cycles in [1usize, 63, 64, 65, 127, 130] {
            assert_parity(&nl, &random_stimulus(3, cycles, 0xC0FFEE), &[]);
        }
    }

    #[test]
    fn rom_bits_and_pipelines_match_scalar() {
        let mut nl = Netlist::new("seq");
        let gated = nl.add_domain("gated");
        let d = nl.input("d");
        let rom = nl.rom_bit(ROOT_DOMAIN);
        let q1 = nl.dff(d, ROOT_DOMAIN);
        let q2 = nl.dff(q1, ROOT_DOMAIN);
        let qg = nl.dff(d, gated);
        let y = nl.gate2(CellKind::Xor2, q2, rom);
        nl.output("y", y);
        nl.output("qg", qg);
        for cycles in [1usize, 64, 65, 200] {
            let stim = random_stimulus(1, cycles, 7);
            // Gated off: the frozen DFF must stay at reset, toggle-free.
            assert_parity(&nl, &stim, &[gated]);
            assert_parity(&nl, &stim, &[]);
        }
    }

    #[test]
    fn presets_broadcast_and_persist() {
        let mut nl = Netlist::new("rom");
        let q0 = nl.rom_bit(ROOT_DOMAIN);
        let q1 = nl.rom_bit(ROOT_DOMAIN);
        nl.output("q0", q0);
        nl.output("q1", q1);
        let mut batch = BatchSimulator::new(&nl).unwrap();
        batch.preset_dff(q0, true).unwrap();
        let mut out = [0u64; 2];
        batch.step_block(&[], 64, &mut out).unwrap();
        batch.step_block(&[], 7, &mut out).unwrap();
        assert_eq!(out[0], 0x7F); // all 7 lanes high
        assert_eq!(out[1], 0);
        assert_eq!(batch.toggle_count(q0), 0);
        assert_eq!(batch.toggle_count(q1), 0);
        assert_eq!(batch.cycles(), 71);
    }

    #[test]
    fn preset_rejects_non_dff() {
        let mut nl = Netlist::new("bad");
        let a = nl.input("a");
        nl.output("y", a);
        let mut batch = BatchSimulator::new(&nl).unwrap();
        assert_eq!(
            batch.preset_dff(a, true),
            Err(NetlistError::NotADff(a.index()))
        );
    }

    #[test]
    fn read_modify_write_feedback_converges() {
        // A toggling bit: q = dff(!q). Exercises the cross-lane fixpoint
        // on a non-trivial feedback loop.
        let mut nl = Netlist::new("tff");
        let q = nl.rom_bit(ROOT_DOMAIN);
        let nq = nl.inv(q);
        nl.rewire_dff_input(q, nq);
        nl.output("q", q);
        for cycles in [1usize, 2, 63, 64, 65, 130] {
            assert_parity(&nl, &vec![Vec::new(); cycles], &[]);
        }
    }

    #[test]
    fn word_boundary_toggle_is_counted_once() {
        // An input that flips exactly at the 64-cycle boundary: the
        // lane-63 -> lane-0 transition must count once, not zero or twice.
        let mut nl = Netlist::new("edge");
        let a = nl.input("a");
        let y = nl.gate1(CellKind::Buf, a);
        nl.output("y", y);
        let mut stim = vec![vec![false]; 64];
        stim.extend(vec![vec![true]; 64]);
        assert_parity(&nl, &stim, &[]);
        let mut batch = BatchSimulator::new(&nl).unwrap();
        let mut out = [0u64; 1];
        batch.step_block(&[0], 64, &mut out).unwrap();
        batch.step_block(&[u64::MAX], 64, &mut out).unwrap();
        assert_eq!(batch.toggle_count(y), 1);
    }

    #[test]
    fn malformed_blocks_are_typed_errors() {
        let mut nl = Netlist::new("z");
        let a = nl.input("a");
        nl.output("y", a);
        let mut batch = BatchSimulator::new(&nl).unwrap();
        assert_eq!(
            batch.step_block(&[0], 0, &mut [0]),
            Err(NetlistError::BadLaneCount { lanes: 0, max: 64 })
        );
        assert_eq!(
            batch.step_block(&[0], LANES + 1, &mut [0]),
            Err(NetlistError::BadLaneCount {
                lanes: LANES + 1,
                max: 64
            })
        );
        assert_eq!(
            batch.step_block(&[0, 0], 4, &mut [0]),
            Err(NetlistError::PortWidthMismatch {
                role: "input",
                expected: 1,
                got: 2
            })
        );
        assert_eq!(
            batch.step_block(&[0], 4, &mut []),
            Err(NetlistError::PortWidthMismatch {
                role: "output",
                expected: 1,
                got: 0
            })
        );
        // Rejected calls leave the engine untouched.
        assert_eq!(batch.cycles(), 0);
        assert!(batch.step_block(&[0b1], 1, &mut [0]).is_ok());
        assert_eq!(batch.cycles(), 1);
    }
}
