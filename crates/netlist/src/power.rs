//! Activity-based power/energy estimation from simulation statistics
//! (our stand-in for PrimeTime averaged power over a VCS trace).

use crate::batch::BatchSimulator;
use crate::library::CellLibrary;
use crate::netlist::Netlist;
use crate::sim::Simulator;
use serde::{Deserialize, Serialize};

/// Simulation statistics the power model consumes. Both the scalar
/// [`Simulator`] and the word-parallel [`BatchSimulator`] implement
/// this, so [`power_report`] is identical by construction for either
/// engine run over the same stimulus.
pub trait Activity {
    /// Per-net toggle counters (index = cell index).
    fn toggles(&self) -> &[u64];
    /// Total cycles simulated.
    fn cycles(&self) -> u64;
    /// Clocked cycles accumulated per domain (index = domain id).
    fn domain_active_cycles(&self) -> &[u64];
}

impl Activity for Simulator<'_> {
    fn toggles(&self) -> &[u64] {
        Simulator::toggles(self)
    }
    fn cycles(&self) -> u64 {
        Simulator::cycles(self)
    }
    fn domain_active_cycles(&self) -> &[u64] {
        Simulator::domain_active_cycles(self)
    }
}

impl Activity for BatchSimulator<'_> {
    fn toggles(&self) -> &[u64] {
        BatchSimulator::toggles(self)
    }
    fn cycles(&self) -> u64 {
        BatchSimulator::cycles(self)
    }
    fn domain_active_cycles(&self) -> &[u64] {
        BatchSimulator::domain_active_cycles(self)
    }
}

/// An itemised energy report for a simulated activity window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Cycles covered by the report.
    pub cycles: u64,
    /// Clock period used for leakage integration, ns.
    pub clock_period_ns: f64,
    /// Combinational + DFF-data switching energy, fJ.
    pub switching_energy_fj: f64,
    /// Clock-tree energy of enabled DFF domains (plus ICGs), fJ — the
    /// component the BTO mode eliminates for gated free tables.
    pub clock_energy_fj: f64,
    /// Leakage energy over the window, fJ.
    pub leakage_energy_fj: f64,
    /// Clock energy itemised per clock domain (index = domain id) — makes
    /// the BTO saving directly visible per gated free table.
    #[serde(default)]
    pub clock_energy_by_domain_fj: Vec<f64>,
}

impl PowerReport {
    /// Total energy over the window, fJ.
    pub fn total_energy_fj(&self) -> f64 {
        self.switching_energy_fj + self.clock_energy_fj + self.leakage_energy_fj
    }

    /// Energy per cycle (per read operation), fJ.
    pub fn energy_per_cycle_fj(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_energy_fj() / self.cycles as f64
        }
    }

    /// Average power over the window, µW.
    pub fn average_power_uw(&self) -> f64 {
        let time_ns = self.cycles as f64 * self.clock_period_ns;
        if time_ns <= 0.0 {
            0.0
        } else {
            // fJ / ns = µW.
            self.total_energy_fj() / time_ns
        }
    }
}

/// Computes the energy report for everything `sim` has simulated so far.
///
/// * switching: per-net toggle count × cell switching energy;
/// * clock: per *active* domain cycle, every DFF in the domain charges the
///   clock-pin energy; each gated (non-root) domain charges one ICG when
///   active;
/// * leakage: every cell leaks for the full window regardless of gating.
pub fn power_report(
    netlist: &Netlist,
    sim: &impl Activity,
    lib: &CellLibrary,
    clock_period_ns: f64,
) -> PowerReport {
    let mut switching = 0.0f64;
    for (cell, &tog) in netlist.cells().iter().zip(sim.toggles()) {
        switching += lib.params(cell.kind).switch_energy_fj * tog as f64;
    }

    let active = sim.domain_active_cycles();
    let dff_counts = netlist.dff_counts();
    let mut clock = 0.0f64;
    let mut by_domain = Vec::with_capacity(active.len());
    for (d, &cycles) in active.iter().enumerate() {
        let mut e = dff_counts[d] as f64 * lib.dff_clock_energy_fj * cycles as f64;
        if d != 0 {
            e += lib.icg_energy_fj * cycles as f64;
        }
        clock += e;
        by_domain.push(e);
    }

    let leakage_nw: f64 = netlist
        .cells()
        .iter()
        .map(|c| lib.params(c.kind).leakage_nw)
        .sum();
    // nW × ns = 1e-18 J = 1e-3 fJ.
    let leakage = leakage_nw * (sim.cycles() as f64 * clock_period_ns) * 1e-3;

    PowerReport {
        cycles: sim.cycles(),
        clock_period_ns,
        switching_energy_fj: switching,
        clock_energy_fj: clock,
        leakage_energy_fj: leakage,
        clock_energy_by_domain_fj: by_domain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::ROOT_DOMAIN;

    #[test]
    fn idle_combinational_netlist_only_leaks() {
        let lib = CellLibrary::nangate45();
        let mut nl = Netlist::new("idle");
        let a = nl.input("a");
        let y = nl.inv(a);
        nl.output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        for _ in 0..10 {
            sim.step(&[true]); // constant input: no toggles after init
        }
        let rep = power_report(&nl, &sim, &lib, 1.0);
        assert_eq!(rep.switching_energy_fj, 0.0);
        assert_eq!(rep.clock_energy_fj, 0.0);
        assert!(rep.leakage_energy_fj > 0.0);
        assert!(rep.average_power_uw() > 0.0);
    }

    #[test]
    fn toggling_input_charges_switching_energy() {
        let lib = CellLibrary::nangate45();
        let mut nl = Netlist::new("sw");
        let a = nl.input("a");
        let y = nl.inv(a);
        nl.output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        for i in 0..11 {
            sim.step(&[i % 2 == 0]);
        }
        let rep = power_report(&nl, &sim, &lib, 1.0);
        // 10 toggles of the inverter output + 10 of the input net (inputs
        // are free cells, zero energy).
        let expect = 10.0 * lib.params(CellKind::Inv).switch_energy_fj;
        assert!((rep.switching_energy_fj - expect).abs() < 1e-9);
    }

    #[test]
    fn clock_gating_halves_clock_energy() {
        let lib = CellLibrary::nangate45();
        let build = |gated_off: bool| {
            let mut nl = Netlist::new("cg");
            let gated = nl.add_domain("g");
            for _ in 0..8 {
                let _ = nl.rom_bit(ROOT_DOMAIN);
            }
            for _ in 0..8 {
                let _ = nl.rom_bit(gated);
            }
            let mut sim = Simulator::new(&nl).unwrap();
            sim.set_domain_enabled(gated, !gated_off);
            for _ in 0..100 {
                sim.step(&[]);
            }
            power_report(&nl, &sim, &lib, 1.0)
        };
        let on = build(false);
        let off = build(true);
        assert!(off.clock_energy_fj < on.clock_energy_fj);
        // 8 of 16 DFFs gated plus the ICG saved.
        let dff_half = 8.0 * lib.dff_clock_energy_fj * 100.0;
        let icg = lib.icg_energy_fj * 100.0;
        assert!((on.clock_energy_fj - off.clock_energy_fj - dff_half - icg).abs() < 1e-9);
        // Leakage identical (gating saves dynamic power only).
        assert!((on.leakage_energy_fj - off.leakage_energy_fj).abs() < 1e-9);
    }

    #[test]
    fn per_domain_breakdown_sums_to_clock_total() {
        let lib = CellLibrary::nangate45();
        let mut nl = Netlist::new("dom");
        let gated = nl.add_domain("g");
        for _ in 0..4 {
            let _ = nl.rom_bit(ROOT_DOMAIN);
        }
        for _ in 0..2 {
            let _ = nl.rom_bit(gated);
        }
        let mut sim = Simulator::new(&nl).unwrap();
        for _ in 0..10 {
            sim.step(&[]);
        }
        let rep = power_report(&nl, &sim, &lib, 1.0);
        assert_eq!(rep.clock_energy_by_domain_fj.len(), 2);
        let sum: f64 = rep.clock_energy_by_domain_fj.iter().sum();
        assert!((sum - rep.clock_energy_fj).abs() < 1e-9);
        // Root: 4 DFFs, no ICG; gated: 2 DFFs + ICG.
        assert!(
            (rep.clock_energy_by_domain_fj[0] - 4.0 * lib.dff_clock_energy_fj * 10.0).abs() < 1e-9
        );
        assert!(
            (rep.clock_energy_by_domain_fj[1]
                - (2.0 * lib.dff_clock_energy_fj + lib.icg_energy_fj) * 10.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn report_totals_are_consistent() {
        let rep = PowerReport {
            cycles: 4,
            clock_period_ns: 2.0,
            switching_energy_fj: 10.0,
            clock_energy_fj: 6.0,
            leakage_energy_fj: 4.0,
            clock_energy_by_domain_fj: vec![6.0],
        };
        assert!((rep.total_energy_fj() - 20.0).abs() < 1e-12);
        assert!((rep.energy_per_cycle_fj() - 5.0).abs() < 1e-12);
        assert!((rep.average_power_uw() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_report_is_safe() {
        let rep = PowerReport {
            cycles: 0,
            clock_period_ns: 1.0,
            switching_energy_fj: 0.0,
            clock_energy_fj: 0.0,
            leakage_energy_fj: 0.0,
            clock_energy_by_domain_fj: Vec::new(),
        };
        assert_eq!(rep.energy_per_cycle_fj(), 0.0);
        assert_eq!(rep.average_power_uw(), 0.0);
    }
}
