//! Cell and net primitives of the gate-level netlist.

use serde::{Deserialize, Serialize};

/// Identifier of a net. Every cell drives exactly one net, whose id equals
/// the cell's index, so `NetId` doubles as a cell id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The driving cell's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a cell. All cells drive a single output net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Primary input (value supplied per cycle).
    Input,
    /// Constant 0.
    Const0,
    /// Constant 1.
    Const1,
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-to-1 multiplexer: inputs `[a, b, sel]`, output `sel ? b : a`.
    Mux2,
    /// D flip-flop: input `[d]`; holds state, updated on the clock edge of
    /// its clock domain (when that domain is enabled).
    Dff,
}

impl CellKind {
    /// Number of input pins.
    pub fn arity(self) -> usize {
        match self {
            Self::Input | Self::Const0 | Self::Const1 => 0,
            Self::Inv | Self::Buf | Self::Dff => 1,
            Self::And2 | Self::Or2 | Self::Nand2 | Self::Nor2 | Self::Xor2 | Self::Xnor2 => 2,
            Self::Mux2 => 3,
        }
    }

    /// True for the sequential cell kind.
    pub fn is_sequential(self) -> bool {
        matches!(self, Self::Dff)
    }

    /// Combinational evaluation (not defined for `Input`/`Dff`).
    #[inline]
    pub fn eval(self, ins: &[bool]) -> bool {
        match self {
            Self::Const0 => false,
            Self::Const1 => true,
            Self::Inv => !ins[0],
            Self::Buf => ins[0],
            Self::And2 => ins[0] && ins[1],
            Self::Or2 => ins[0] || ins[1],
            Self::Nand2 => !(ins[0] && ins[1]),
            Self::Nor2 => !(ins[0] || ins[1]),
            Self::Xor2 => ins[0] ^ ins[1],
            Self::Xnor2 => !(ins[0] ^ ins[1]),
            Self::Mux2 => {
                if ins[2] {
                    ins[1]
                } else {
                    ins[0]
                }
            }
            Self::Input | Self::Dff => {
                unreachable!("Input/Dff values come from the simulator state")
            }
        }
    }

    /// All kinds (used by the library's coverage check).
    pub fn all() -> [CellKind; 13] {
        use CellKind::*;
        [
            Input, Const0, Const1, Inv, Buf, And2, Or2, Nand2, Nor2, Xor2, Xnor2, Mux2, Dff,
        ]
    }
}

/// A cell instance: kind, up to three input nets, and (for DFFs) a clock
/// domain. Stored compactly — large LUT netlists reach millions of cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// The cell kind.
    pub kind: CellKind,
    pub(crate) inputs: [NetId; 3],
    /// Clock-domain index for DFFs (0 is the always-on default domain).
    pub(crate) domain: u16,
}

impl Cell {
    /// The cell's input nets.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs[..self.kind.arity()]
    }

    /// The DFF's clock domain (always 0 for combinational cells).
    pub fn domain(&self) -> usize {
        self.domain as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_semantics() {
        assert_eq!(CellKind::Input.arity(), 0);
        assert_eq!(CellKind::Inv.arity(), 1);
        assert_eq!(CellKind::Xor2.arity(), 2);
        assert_eq!(CellKind::Mux2.arity(), 3);
        assert_eq!(CellKind::Dff.arity(), 1);
    }

    #[test]
    fn eval_truth_tables() {
        use CellKind::*;
        let t = true;
        let f = false;
        assert!(!Const0.eval(&[]));
        assert!(Const1.eval(&[]));
        assert!(Inv.eval(&[f]));
        assert!(Buf.eval(&[t]));
        for (a, b) in [(f, f), (f, t), (t, f), (t, t)] {
            assert_eq!(And2.eval(&[a, b]), a && b);
            assert_eq!(Or2.eval(&[a, b]), a || b);
            assert_eq!(Nand2.eval(&[a, b]), !(a && b));
            assert_eq!(Nor2.eval(&[a, b]), !(a || b));
            assert_eq!(Xor2.eval(&[a, b]), a ^ b);
            assert_eq!(Xnor2.eval(&[a, b]), !(a ^ b));
            for s in [f, t] {
                assert_eq!(Mux2.eval(&[a, b, s]), if s { b } else { a });
            }
        }
    }

    #[test]
    fn only_dff_is_sequential() {
        for k in CellKind::all() {
            assert_eq!(k.is_sequential(), matches!(k, CellKind::Dff));
        }
    }

    #[test]
    fn cell_is_compact() {
        // The layout matters: multi-million-cell LUTs must stay in RAM.
        assert!(std::mem::size_of::<Cell>() <= 16);
    }
}
