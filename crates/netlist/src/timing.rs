//! Static timing: longest combinational path (our stand-in for the DC
//! timing report).

use crate::cell::CellKind;
use crate::library::CellLibrary;
use crate::netlist::{Netlist, NetlistError};

/// The critical (longest) combinational path delay in ns.
///
/// Path sources are primary inputs (arrival 0) and DFF outputs (arrival =
/// clock-to-Q); each combinational cell adds its library delay; sinks are
/// primary outputs and DFF D pins. A purely sequential netlist reports
/// the clock-to-Q delay of its registers.
///
/// # Errors
///
/// Returns an error if the netlist has a combinational cycle.
///
/// # Examples
///
/// ```
/// use dalut_netlist::{critical_path_ns, CellKind, CellLibrary, Netlist};
///
/// let lib = CellLibrary::nangate45();
/// let mut nl = Netlist::new("chain");
/// let a = nl.input("a");
/// let x = nl.inv(a);
/// let y = nl.inv(x);
/// nl.output("y", y);
/// let d = critical_path_ns(&nl, &lib).unwrap();
/// assert!((d - 2.0 * lib.params(CellKind::Inv).delay_ns).abs() < 1e-12);
/// ```
pub fn critical_path_ns(netlist: &Netlist, lib: &CellLibrary) -> Result<f64, NetlistError> {
    let order = netlist.topo_order()?;
    let n = netlist.cell_count();
    let mut arrival = vec![0.0f64; n];

    // Sources.
    for (i, cell) in netlist.cells().iter().enumerate() {
        arrival[i] = match cell.kind {
            CellKind::Dff => lib.dff_clk_to_q_ns,
            _ => 0.0,
        };
    }
    // Propagate in topological order.
    for &i in &order {
        let cell = &netlist.cells()[i as usize];
        let worst_in = cell
            .inputs()
            .iter()
            .map(|inp| arrival[inp.index()])
            .fold(0.0f64, f64::max);
        arrival[i as usize] = worst_in + lib.params(cell.kind).delay_ns;
    }
    // Sinks: outputs and DFF D pins.
    let mut worst = 0.0f64;
    for (_, net) in netlist.outputs() {
        worst = worst.max(arrival[net.index()]);
    }
    for cell in netlist.cells() {
        if cell.kind == CellKind::Dff {
            worst = worst.max(arrival[cell.inputs()[0].index()]);
        }
    }
    Ok(worst)
}

/// Total cell area in µm² (sums library areas; DFF-heavy LUT structures
/// are dominated by register area, as in the paper's RAM-of-DFFs tables).
pub fn area_um2(netlist: &Netlist, lib: &CellLibrary) -> f64 {
    let cells: f64 = netlist
        .cells()
        .iter()
        .map(|c| lib.params(c.kind).area_um2)
        .sum();
    // One ICG per gated (non-root) clock domain.
    cells + lib.icg_area_um2 * (netlist.domains().len().saturating_sub(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::ROOT_DOMAIN;

    #[test]
    fn chain_delay_accumulates() {
        let lib = CellLibrary::nangate45();
        let mut nl = Netlist::new("chain");
        let a = nl.input("a");
        let x1 = nl.inv(a);
        let x2 = nl.inv(x1);
        let x3 = nl.inv(x2);
        nl.output("y", x3);
        let d = critical_path_ns(&nl, &lib).unwrap();
        let inv = lib.params(CellKind::Inv).delay_ns;
        assert!((d - 3.0 * inv).abs() < 1e-12);
    }

    #[test]
    fn dff_launch_adds_clk_to_q() {
        let lib = CellLibrary::nangate45();
        let mut nl = Netlist::new("seq");
        let q = nl.rom_bit(ROOT_DOMAIN);
        let y = nl.inv(q);
        nl.output("y", y);
        let d = critical_path_ns(&nl, &lib).unwrap();
        assert!((d - (lib.dff_clk_to_q_ns + lib.params(CellKind::Inv).delay_ns)).abs() < 1e-12);
    }

    #[test]
    fn capture_path_to_dff_d_pin_counts() {
        let lib = CellLibrary::nangate45();
        let mut nl = Netlist::new("cap");
        let a = nl.input("a");
        let x = nl.inv(a);
        let _q = nl.dff(x, ROOT_DOMAIN); // no primary output at all
        let d = critical_path_ns(&nl, &lib).unwrap();
        assert!(d >= lib.params(CellKind::Inv).delay_ns);
    }

    #[test]
    fn parallel_paths_take_max() {
        let lib = CellLibrary::nangate45();
        let mut nl = Netlist::new("par");
        let a = nl.input("a");
        let slow = {
            let x = nl.gate2(CellKind::Xor2, a, a);
            nl.gate2(CellKind::Xor2, x, a)
        };
        let fast = nl.inv(a);
        let y = nl.gate2(CellKind::And2, slow, fast);
        nl.output("y", y);
        let d = critical_path_ns(&nl, &lib).unwrap();
        let expect =
            2.0 * lib.params(CellKind::Xor2).delay_ns + lib.params(CellKind::And2).delay_ns;
        assert!((d - expect).abs() < 1e-12);
    }

    #[test]
    fn area_sums_cells_and_icgs() {
        let lib = CellLibrary::nangate45();
        let mut nl = Netlist::new("area");
        let a = nl.input("a");
        let _ = nl.inv(a);
        let gated = nl.add_domain("g");
        let _ = nl.rom_bit(gated);
        let area = area_um2(&nl, &lib);
        let expect = lib.params(CellKind::Inv).area_um2
            + lib.params(CellKind::Dff).area_um2
            + lib.icg_area_um2;
        assert!((area - expect).abs() < 1e-12);
    }
}
