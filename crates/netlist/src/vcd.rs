//! VCD (Value Change Dump) waveform export — the inspectable trace a VCS
//! run would produce for the paper's functional verification.

use crate::cell::NetId;
use crate::netlist::Netlist;
use crate::sim::Simulator;
use std::fmt::Write as _;

/// Records selected nets of a running simulation and renders a VCD file.
///
/// # Examples
///
/// ```
/// use dalut_netlist::{CellKind, Netlist, Simulator, vcd::VcdRecorder};
///
/// let mut nl = Netlist::new("dut");
/// let a = nl.input("a");
/// let y = nl.inv(a);
/// nl.output("y", y);
///
/// let mut sim = Simulator::new(&nl).unwrap();
/// let mut rec = VcdRecorder::ports(&nl);
/// for (t, &v) in [true, false, true].iter().enumerate() {
///     sim.step(&[v]);
///     rec.sample(&sim, t as u64);
/// }
/// let vcd = rec.finish();
/// assert!(vcd.contains("$enddefinitions"));
/// assert!(vcd.contains("#0"));
/// ```
#[derive(Debug)]
pub struct VcdRecorder {
    module: String,
    signals: Vec<(String, NetId)>,
    last: Vec<Option<bool>>,
    body: String,
}

impl VcdRecorder {
    /// Records the given named nets.
    pub fn new(module: impl Into<String>, signals: Vec<(String, NetId)>) -> Self {
        let n = signals.len();
        Self {
            module: module.into(),
            signals,
            last: vec![None; n],
            body: String::new(),
        }
    }

    /// Records every primary input and output of `netlist`.
    pub fn ports(netlist: &Netlist) -> Self {
        let mut signals: Vec<(String, NetId)> = Vec::new();
        for (name, id) in netlist.inputs() {
            signals.push((name.clone(), *id));
        }
        for (name, id) in netlist.outputs() {
            signals.push((name.clone(), *id));
        }
        Self::new(netlist.name(), signals)
    }

    /// Samples the simulator's current values at timestamp `time`
    /// (monotonically increasing; typically the cycle count). Only nets
    /// that changed since the previous sample are dumped.
    pub fn sample(&mut self, sim: &Simulator<'_>, time: u64) {
        let mut changes = String::new();
        for (i, (_, net)) in self.signals.iter().enumerate() {
            let v = sim.value(*net);
            if self.last[i] != Some(v) {
                self.last[i] = Some(v);
                let _ = writeln!(changes, "{}{}", u8::from(v), ident(i));
            }
        }
        if !changes.is_empty() {
            let _ = writeln!(self.body, "#{time}");
            self.body.push_str(&changes);
        }
    }

    /// Renders the complete VCD document.
    pub fn finish(self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", sanitize(&self.module));
        for (i, (name, _)) in self.signals.iter().enumerate() {
            let _ = writeln!(out, "$var wire 1 {} {} $end", ident(i), sanitize(name));
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        out
    }
}

/// Short printable-ASCII identifier for signal index `i` (VCD id chars
/// are `!`..`~`).
fn ident(mut i: usize) -> String {
    const BASE: usize = 94;
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % BASE) as u8) as char);
        i /= BASE;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn run_trace(inputs: &[bool]) -> String {
        let mut nl = Netlist::new("trace");
        let a = nl.input("a");
        let y = nl.inv(a);
        nl.output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        let mut rec = VcdRecorder::ports(&nl);
        for (t, &v) in inputs.iter().enumerate() {
            sim.step(&[v]);
            rec.sample(&sim, t as u64);
        }
        rec.finish()
    }

    #[test]
    fn header_declares_all_ports() {
        let vcd = run_trace(&[true]);
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$scope module trace $end"));
        assert!(vcd.contains("$var wire 1 ! a $end"));
        assert!(vcd.contains("$var wire 1 \" y $end"));
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn only_changes_are_dumped() {
        let vcd = run_trace(&[true, true, false, false, true]);
        // Timestamps appear only when something changed: #0, #2, #4.
        assert!(vcd.contains("#0\n"));
        assert!(!vcd.contains("#1\n"));
        assert!(vcd.contains("#2\n"));
        assert!(!vcd.contains("#3\n"));
        assert!(vcd.contains("#4\n"));
    }

    #[test]
    fn values_track_the_simulation() {
        let vcd = run_trace(&[true, false]);
        // At #0: a=1 (id !), y=0 (id "). At #1 they swap.
        let after0 = vcd.split("#0").nth(1).unwrap();
        assert!(after0.contains("1!"));
        assert!(after0.contains("0\""));
        let after1 = vcd.split("#1").nth(1).unwrap();
        assert!(after1.contains("0!"));
        assert!(after1.contains("1\""));
    }

    #[test]
    fn custom_signal_selection_records_internal_nets() {
        let mut nl = Netlist::new("internal");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.gate2(CellKind::And2, a, b);
        let y = nl.inv(x);
        nl.output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        let mut rec = VcdRecorder::new("internal", vec![("and_out".into(), x)]);
        sim.step(&[true, true]);
        rec.sample(&sim, 0);
        let vcd = rec.finish();
        assert!(vcd.contains("$var wire 1 ! and_out $end"));
        assert!(vcd.contains("1!"));
    }

    #[test]
    fn ident_generates_distinct_ids() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            assert!(seen.insert(ident(i)), "collision at {i}");
        }
        assert_eq!(ident(0), "!");
        assert_eq!(ident(93), "~");
        assert_eq!(ident(94), "!!");
    }
}
