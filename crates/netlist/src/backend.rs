//! Simulation backend selection and the width-erased wide simulator.
//!
//! The sign-off harnesses pick an engine with `--sim-backend
//! {scalar,u64,w256,w512,auto}` ([`SimBackend`]): `scalar` is the
//! cycle-at-a-time reference [`Simulator`](crate::sim::Simulator), the
//! rest are [`CompiledSimulator`] widths (64/256/512 lanes per block).
//! Every wide backend is available on every machine — the kernel body
//! is portable array code — and runtime CPU detection only decides
//! which instruction-set compilation of that body runs
//! ([`detect_isa`]), so `auto` resolves to the widest word the CPU can
//! vectorize natively without ever changing results.

use crate::compiled::{ChunkStats, CompiledNetlist, CompiledSimulator, Isa};
use crate::netlist::{DomainId, NetlistError};
use crate::power::Activity;
use crate::wide::{W256, W512, W64};
use crate::NetId;
use std::fmt;
use std::str::FromStr;

/// A simulation engine choice for the sign-off path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimBackend {
    /// Cycle-at-a-time scalar reference engine.
    Scalar,
    /// Compiled engine, 64 lanes per block (one `u64` limb).
    U64,
    /// Compiled engine, 256 lanes per block (four limbs).
    W256,
    /// Compiled engine, 512 lanes per block (eight limbs).
    W512,
    /// The widest word the CPU vectorizes natively (see
    /// [`SimBackend::resolve`]).
    Auto,
}

impl SimBackend {
    /// Resolves `Auto` to a concrete backend for this CPU: `w512` with
    /// AVX-512F, `w256` with AVX2, `u64` otherwise. Concrete choices
    /// pass through unchanged.
    pub fn resolve(self) -> SimBackend {
        match self {
            SimBackend::Auto => match detect_isa() {
                #[cfg(target_arch = "x86_64")]
                Isa::Avx512 => SimBackend::W512,
                #[cfg(target_arch = "x86_64")]
                Isa::Avx2 => SimBackend::W256,
                Isa::Portable => SimBackend::U64,
            },
            other => other,
        }
    }

    /// Lanes (stimulus cycles) per block for the resolved backend;
    /// `scalar` steps one cycle at a time.
    pub fn lanes(self) -> usize {
        match self.resolve() {
            SimBackend::Scalar => 1,
            SimBackend::U64 => 64,
            SimBackend::W256 => 256,
            SimBackend::W512 => 512,
            SimBackend::Auto => unreachable!("resolve() never returns Auto"),
        }
    }

    /// The three wide (compiled-engine) backends, narrowest first.
    pub fn all_wide() -> [SimBackend; 3] {
        [SimBackend::U64, SimBackend::W256, SimBackend::W512]
    }
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimBackend::Scalar => "scalar",
            SimBackend::U64 => "u64",
            SimBackend::W256 => "w256",
            SimBackend::W512 => "w512",
            SimBackend::Auto => "auto",
        })
    }
}

impl FromStr for SimBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(SimBackend::Scalar),
            "u64" => Ok(SimBackend::U64),
            "w256" => Ok(SimBackend::W256),
            "w512" => Ok(SimBackend::W512),
            "auto" => Ok(SimBackend::Auto),
            other => Err(format!(
                "unknown sim backend '{other}' (expected scalar, u64, w256, w512 or auto)"
            )),
        }
    }
}

/// Detects the best instruction set the CPU supports for the compiled
/// kernel. The result only affects speed, never values.
pub(crate) fn detect_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Isa::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Isa::Avx2;
        }
    }
    Isa::Portable
}

/// Human-readable name of the instruction set the compiled kernels
/// will run with on this machine (`"avx512f"`, `"avx2"` or
/// `"portable"`); reported in `BENCH_sim.json` so CI logs show what a
/// given run exercised.
pub fn detected_isa() -> &'static str {
    match detect_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => "avx512f",
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => "avx2",
        Isa::Portable => "portable",
    }
}

/// A width-erased [`CompiledSimulator`]: one enum over the three
/// [`WideWord`] widths, exposing a uniform limb-slice API so harness
/// code can hold "some wide engine" chosen at runtime by
/// [`SimBackend`].
#[derive(Debug)]
pub enum WideSimulator<'a> {
    /// 64 lanes per block.
    U64(CompiledSimulator<'a, W64>),
    /// 256 lanes per block.
    W256(CompiledSimulator<'a, W256>),
    /// 512 lanes per block.
    W512(CompiledSimulator<'a, W512>),
}

macro_rules! each_width {
    ($self:expr, $sim:ident => $body:expr) => {
        match $self {
            WideSimulator::U64($sim) => $body,
            WideSimulator::W256($sim) => $body,
            WideSimulator::W512($sim) => $body,
        }
    };
}

impl<'a> WideSimulator<'a> {
    /// Creates a simulator for `backend` (`Auto` resolves per
    /// [`SimBackend::resolve`]; `Scalar` is not a wide engine and maps
    /// to `U64` — callers wanting the scalar reference use
    /// [`Simulator`](crate::sim::Simulator) directly).
    pub fn new(compiled: &'a CompiledNetlist, backend: SimBackend) -> Self {
        match backend.resolve() {
            SimBackend::W256 => WideSimulator::W256(CompiledSimulator::new(compiled)),
            SimBackend::W512 => WideSimulator::W512(CompiledSimulator::new(compiled)),
            _ => WideSimulator::U64(CompiledSimulator::new(compiled)),
        }
    }

    /// Like [`WideSimulator::new`] but pinned to the portable kernel
    /// compilation, ignoring CPU feature detection (differential-test
    /// coverage for machines without AVX).
    pub fn new_portable(compiled: &'a CompiledNetlist, backend: SimBackend) -> Self {
        match backend.resolve() {
            SimBackend::W256 => WideSimulator::W256(CompiledSimulator::new_portable(compiled)),
            SimBackend::W512 => WideSimulator::W512(CompiledSimulator::new_portable(compiled)),
            _ => WideSimulator::U64(CompiledSimulator::new_portable(compiled)),
        }
    }

    /// Lanes (stimulus cycles) per block.
    pub fn lanes_per_block(&self) -> usize {
        each_width!(self, s => s.lanes_per_block())
    }

    /// `u64` limbs per lane word (`lanes_per_block() / 64`).
    pub fn limbs_per_word(&self) -> usize {
        self.lanes_per_block() / 64
    }

    /// Presets a DFF's stored value before simulation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotADff`] if `net` is not a DFF.
    pub fn preset_dff(&mut self, net: NetId, value: bool) -> Result<(), NetlistError> {
        each_width!(self, s => s.preset_dff(net, value))
    }

    /// Enables or disables a clock domain between blocks.
    pub fn set_domain_enabled(&mut self, domain: DomainId, enabled: bool) {
        each_width!(self, s => s.set_domain_enabled(domain, enabled));
    }

    /// Steps `lanes` cycles at once; buffers hold `limbs_per_word()`
    /// words per port (see [`CompiledSimulator::step_block`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadLaneCount`] /
    /// [`NetlistError::PortWidthMismatch`] on malformed calls.
    pub fn step_block(
        &mut self,
        inputs: &[u64],
        lanes: usize,
        out: &mut [u64],
    ) -> Result<(), NetlistError> {
        each_width!(self, s => s.step_block(inputs, lanes, out))
    }

    /// All per-net toggle counters.
    pub fn toggles(&self) -> &[u64] {
        each_width!(self, s => s.toggles())
    }

    /// Cycles stepped so far.
    pub fn cycles(&self) -> u64 {
        each_width!(self, s => s.cycles())
    }

    /// Clocked cycles accumulated per domain.
    pub fn domain_active_cycles(&self) -> &[u64] {
        each_width!(self, s => s.domain_active_cycles())
    }

    /// Extracts chunk statistics for
    /// [`merge_chunk_stats`](crate::compiled::merge_chunk_stats).
    pub fn chunk_stats(&self) -> ChunkStats {
        each_width!(self, s => s.chunk_stats())
    }
}

impl Activity for WideSimulator<'_> {
    fn toggles(&self) -> &[u64] {
        WideSimulator::toggles(self)
    }
    fn cycles(&self) -> u64 {
        WideSimulator::cycles(self)
    }
    fn domain_active_cycles(&self) -> &[u64] {
        WideSimulator::domain_active_cycles(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_strings_round_trip() {
        for b in [
            SimBackend::Scalar,
            SimBackend::U64,
            SimBackend::W256,
            SimBackend::W512,
            SimBackend::Auto,
        ] {
            assert_eq!(b.to_string().parse::<SimBackend>(), Ok(b));
        }
        assert!("gpu".parse::<SimBackend>().is_err());
    }

    #[test]
    fn auto_resolves_to_a_concrete_wide_backend() {
        let resolved = SimBackend::Auto.resolve();
        assert_ne!(resolved, SimBackend::Auto);
        assert_ne!(resolved, SimBackend::Scalar);
        assert!(SimBackend::all_wide().contains(&resolved));
        assert_eq!(resolved.lanes() % 64, 0);
    }
}
