//! # dalut-netlist
//!
//! A gate-level netlist substrate standing in for the paper's Synopsys
//! DC / VCS / PrimeTime + Nangate 45 nm flow (DESIGN.md §3):
//!
//! * [`Netlist`] — cells (gates, muxes, D flip-flops), named ports, clock
//!   domains, and construction helpers (mux trees, retained "ROM" bits);
//! * [`Simulator`] — cycle-accurate two-state simulation with per-net
//!   toggle counting and per-domain clock-gating (the VCS substitute);
//! * [`BatchSimulator`] — the same semantics 64 cycles at a time, one
//!   `u64` lane word per net (the fast sign-off path);
//! * [`power_report`] — activity-based energy itemised into switching,
//!   clock and leakage components (the PrimeTime substitute);
//! * [`critical_path_ns`] / [`area_um2`] — static timing and area (the DC
//!   report substitute);
//! * [`to_verilog`] — structural Verilog export of any netlist;
//! * [`CellLibrary`] — Nangate-45-inspired per-cell constants.
//!
//! ## Example
//!
//! ```
//! use dalut_netlist::{CellKind, CellLibrary, Netlist, Simulator, power_report};
//!
//! let mut nl = Netlist::new("half_adder");
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let s = nl.gate2(CellKind::Xor2, a, b);
//! let c = nl.gate2(CellKind::And2, a, b);
//! nl.output("sum", s);
//! nl.output("carry", c);
//!
//! let mut sim = Simulator::new(&nl).unwrap();
//! assert_eq!(sim.eval_word(0b11), 0b10); // 1 + 1 = carry, no sum
//! let report = power_report(&nl, &sim, &CellLibrary::nangate45(), 1.0);
//! assert!(report.total_energy_fj() >= 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// `deny` rather than `forbid`: the compiled engine's runtime ISA
// dispatch needs narrowly-scoped `#[target_feature]` wrappers (see
// `compiled.rs`), each carrying its own `#[allow(unsafe_code)]` and
// safety argument. Everything else stays unsafe-free.
#![deny(unsafe_code)]

pub mod backend;
pub mod batch;
pub mod cell;
pub mod compiled;
pub mod equiv;
pub mod library;
pub mod netlist;
pub mod opt;
pub mod power;
pub mod sim;
pub mod timing;
pub mod vcd;
pub mod verilog;
pub mod vsim;
pub mod wide;

pub use backend::{detected_isa, SimBackend, WideSimulator};
pub use batch::{BatchSimulator, LANES};
pub use cell::{Cell, CellKind, NetId};
pub use compiled::{
    merge_chunk_stats, ChunkStats, CompiledNetlist, CompiledSimulator, MergedActivity,
};
pub use equiv::{equivalent_exhaustive, equivalent_random};
pub use library::{CellLibrary, CellParams};
pub use netlist::{DomainId, Netlist, NetlistError, ROOT_DOMAIN};
pub use opt::{optimize, OptStats};
pub use power::{power_report, Activity, PowerReport};
pub use sim::Simulator;
pub use timing::{area_um2, critical_path_ns};
pub use vcd::VcdRecorder;
pub use verilog::{to_verilog, to_verilog_with_presets};
pub use vsim::{VerilogModule, VerilogSim};
pub use wide::{WideWord, W256, W512, W64};
