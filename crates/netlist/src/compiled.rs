//! Compiled structure-of-arrays simulation: level-scheduled gate runs
//! over [`WideWord`] lane bundles.
//!
//! [`CompiledNetlist`] lowers the per-gate `Vec<Cell>` graph once into
//! flat tables — operand indices in structure-of-arrays form, sorted
//! into topological *levels* and grouped into maximal same-kind
//! [`Run`]s — so a combinational settle pass is a handful of
//! branch-light loops over contiguous arrays instead of a per-cell
//! `match`. [`CompiledSimulator`] then replays the exact semantics of
//! [`BatchSimulator`](crate::batch::BatchSimulator) (DESIGN.md §10)
//! over any [`WideWord`] width: the carry-linked toggle formula, the
//! per-domain clock accounting, the DFF lane fixpoint and the
//! post-edge output visibility rule are all word-width-generic, so
//! every backend is bit-identical to the scalar reference by the same
//! argument, lane counts merely growing from 64 to 256/512.
//!
//! # Chunk-parallel stimulus
//!
//! When every DFF is either a self-loop ROM bit (`D = Q`, the dominant
//! case in the paper's LUT architectures: state never changes after
//! preset) or lives in a disabled clock domain (frozen broadcast), any
//! net's settled value at cycle `c` depends only on the cycle-`c`
//! primary inputs and the constant presets. Contiguous stimulus chunks
//! are then independent: each chunk runs on its own
//! [`CompiledSimulator`], and the only cross-chunk coupling is the
//! toggle comparison between the last cycle of chunk `k` and the first
//! cycle of chunk `k + 1`. [`merge_chunk_stats`] performs that exact
//! *carry stitching*: per-chunk toggle counters are summed, and one
//! extra toggle is added per counted net per boundary where the
//! recorded last/first values differ — precisely the toggle the
//! sequential run would have counted via its carry bit. Enabled ROM
//! DFF next-state streams are constant, so their stitch term is always
//! zero, and disabled DFFs are never counted; both match the
//! sequential engines. Because toggle counters are exact integer sums,
//! the merged [`Activity`] is bit-identical at any chunk count and any
//! thread count. [`CompiledNetlist::chunk_parallel_safe`] is the gate.

use crate::cell::CellKind;
use crate::netlist::{DomainId, Netlist, NetlistError};
use crate::power::Activity;
use crate::wide::WideWord;
use crate::NetId;

/// A maximal span of same-kind cells in the level-sorted instruction
/// stream; evaluated as one tight loop with a single kind dispatch.
#[derive(Debug, Clone, Copy)]
struct Run {
    kind: CellKind,
    start: u32,
    len: u32,
}

/// One DFF's lowered slots.
#[derive(Debug, Clone, Copy)]
struct DffSlot {
    /// Net (== cell index) of the DFF itself.
    net: u32,
    /// Net feeding the D input.
    d: u32,
    /// Clock-domain index.
    domain: u16,
    /// True when `d == net` (a preset ROM bit).
    self_loop: bool,
}

/// One primary output's lowered slot.
#[derive(Debug, Clone, Copy)]
struct OutSlot {
    /// Net the port reads.
    net: u32,
    /// Net whose word is visible post-edge: the D input for an enabled
    /// DFF, the net itself otherwise.
    d: u32,
    /// Clock-domain index (meaningful only when `is_dff`).
    domain: u16,
    is_dff: bool,
}

/// A netlist lowered to flat structure-of-arrays tables, sorted into
/// topological levels with same-kind runs.
///
/// Compile once (per netlist) with [`CompiledNetlist::compile`], then
/// instantiate any number of [`CompiledSimulator`]s over it — one per
/// backend width, or one per stimulus chunk for parallel runs.
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    n_cells: usize,
    n_domains: usize,
    /// Level-sorted same-kind instruction runs.
    runs: Vec<Run>,
    /// Destination net per instruction (parallel to `a`/`b`/`c`).
    dst: Vec<u32>,
    a: Vec<u32>,
    b: Vec<u32>,
    c: Vec<u32>,
    /// Const1 cell indices (Const0 words stay zero and need no pass).
    const1: Vec<u32>,
    /// Net per primary input, in port order.
    input_nets: Vec<u32>,
    /// Output slots in port order.
    outputs: Vec<OutSlot>,
    /// All DFFs in ascending net order.
    dffs: Vec<DffSlot>,
    /// All non-DFF cell indices (the unconditionally counted toggles).
    counted: Vec<u32>,
    /// Number of combinational levels in the schedule.
    levels: usize,
}

impl CompiledNetlist {
    /// Lowers `netlist` into the flat level-scheduled form.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn compile(netlist: &Netlist) -> Result<Self, NetlistError> {
        let order = netlist.topo_order()?;
        let cells = netlist.cells();
        let n = cells.len();

        // Topological level per net: sources (inputs, constants, DFF
        // outputs) are level 0; a combinational cell sits one past its
        // deepest operand. `order` is a valid topological order of the
        // combinational cells, so one pass suffices.
        let mut level = vec![0u32; n];
        for &i in &order {
            let cell = &cells[i as usize];
            let deepest = cell
                .inputs()
                .iter()
                .map(|inp| level[inp.index()])
                .max()
                .unwrap_or(0);
            level[i as usize] = deepest + 1;
        }

        // Sort the combinational cells by (level, kind, index): levels
        // keep the order topological, kind grouping maximises run
        // length, index keeps the schedule deterministic.
        let mut sched: Vec<u32> = order.clone();
        sched.sort_by_key(|&i| (level[i as usize], cells[i as usize].kind as u8, i));

        let mut dst = Vec::with_capacity(sched.len());
        let mut a = Vec::with_capacity(sched.len());
        let mut b = Vec::with_capacity(sched.len());
        let mut c = Vec::with_capacity(sched.len());
        let mut runs: Vec<Run> = Vec::new();
        for &i in &sched {
            let cell = &cells[i as usize];
            let ins = cell.inputs();
            match runs.last_mut() {
                Some(run) if run.kind == cell.kind => run.len += 1,
                _ => runs.push(Run {
                    kind: cell.kind,
                    start: dst.len() as u32,
                    len: 1,
                }),
            }
            dst.push(i);
            a.push(ins.first().map_or(0, |x| x.index() as u32));
            b.push(ins.get(1).map_or(0, |x| x.index() as u32));
            c.push(ins.get(2).map_or(0, |x| x.index() as u32));
        }

        let mut const1 = Vec::new();
        let mut dffs = Vec::new();
        let mut counted = Vec::with_capacity(n);
        for (i, cell) in cells.iter().enumerate() {
            match cell.kind {
                CellKind::Const1 => {
                    const1.push(i as u32);
                    counted.push(i as u32);
                }
                CellKind::Dff => {
                    let d = cell.inputs()[0].index() as u32;
                    dffs.push(DffSlot {
                        net: i as u32,
                        d,
                        domain: cell.domain() as u16,
                        self_loop: d == i as u32,
                    });
                }
                _ => counted.push(i as u32),
            }
        }

        let outputs = netlist
            .outputs()
            .iter()
            .map(|(_, net)| {
                let i = net.index();
                let cell = &cells[i];
                if cell.kind == CellKind::Dff {
                    OutSlot {
                        net: i as u32,
                        d: cell.inputs()[0].index() as u32,
                        domain: cell.domain() as u16,
                        is_dff: true,
                    }
                } else {
                    OutSlot {
                        net: i as u32,
                        d: i as u32,
                        domain: 0,
                        is_dff: false,
                    }
                }
            })
            .collect();

        // `sched` is level-sorted, so the last entry carries the depth.
        let levels = sched.last().map_or(0, |&i| level[i as usize] as usize);

        Ok(Self {
            n_cells: n,
            n_domains: netlist.domains().len(),
            runs,
            dst,
            a,
            b,
            c,
            const1,
            input_nets: netlist
                .inputs()
                .iter()
                .map(|(_, net)| net.index() as u32)
                .collect(),
            outputs,
            dffs,
            counted,
            levels,
        })
    }

    /// Number of cells in the source netlist.
    pub fn cell_count(&self) -> usize {
        self.n_cells
    }

    /// Number of combinational levels in the schedule.
    pub fn level_count(&self) -> usize {
        self.levels
    }

    /// Number of same-kind instruction runs in the schedule.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.input_nets.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// True when contiguous stimulus chunks are independent given the
    /// presets and the supplied per-domain enables: every DFF is either
    /// a self-loop ROM bit or clock-gated off. See the module docs for
    /// why this licenses block-parallel simulation with carry
    /// stitching.
    pub fn chunk_parallel_safe(&self, enabled: &[bool]) -> bool {
        self.dffs
            .iter()
            .all(|d| d.self_loop || !enabled.get(d.domain as usize).copied().unwrap_or(true))
    }
}

/// Which instruction set the hot block-step loop is compiled for.
/// Selected once at simulator construction from runtime CPU detection;
/// every variant runs the identical portable kernel body, so results
/// never depend on the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Isa {
    /// The portable body as rustc compiles it for the baseline target.
    Portable,
    /// Body recompiled with AVX2 enabled (256-bit vector limb ops).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// Body recompiled with AVX-512F enabled (512-bit vector limb ops).
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

/// Per-chunk simulation statistics plus the boundary values needed for
/// exact carry stitching across chunk seams.
#[derive(Debug, Clone)]
pub struct ChunkStats {
    /// Per-net toggle counters accumulated inside the chunk.
    pub toggles: Vec<u64>,
    /// Cycles simulated by the chunk.
    pub cycles: u64,
    /// Clocked cycles accumulated per domain inside the chunk.
    pub active_cycles: Vec<u64>,
    /// Per-net value at the chunk's first cycle (toggle-stream view:
    /// the D input for enabled DFFs).
    pub first: Vec<bool>,
    /// Per-net value at the chunk's last cycle (the carry reference).
    pub last: Vec<bool>,
    /// Per-domain enables the chunk ran with.
    pub enabled: Vec<bool>,
}

/// Summed-and-stitched activity from a set of chunk runs; implements
/// [`Activity`] so a [`power_report`](crate::power::power_report) can
/// be computed directly from a parallel simulation.
#[derive(Debug, Clone)]
pub struct MergedActivity {
    toggles: Vec<u64>,
    cycles: u64,
    active_cycles: Vec<u64>,
}

impl Activity for MergedActivity {
    fn toggles(&self) -> &[u64] {
        &self.toggles
    }
    fn cycles(&self) -> u64 {
        self.cycles
    }
    fn domain_active_cycles(&self) -> &[u64] {
        &self.active_cycles
    }
}

/// Merges chunk statistics from consecutive stimulus chunks (in
/// stimulus order) into one exact activity record: counters are
/// summed, then one toggle is added per counted net per chunk seam
/// where the left chunk's last value differs from the right chunk's
/// first value — the toggle a sequential run counts through its carry
/// bit. Exactness requires [`CompiledNetlist::chunk_parallel_safe`];
/// see the module docs for the argument.
pub fn merge_chunk_stats(compiled: &CompiledNetlist, chunks: &[ChunkStats]) -> MergedActivity {
    let mut merged = MergedActivity {
        toggles: vec![0; compiled.n_cells],
        cycles: 0,
        active_cycles: vec![0; compiled.n_domains],
    };
    for chunk in chunks {
        for (acc, &t) in merged.toggles.iter_mut().zip(&chunk.toggles) {
            *acc += t;
        }
        for (acc, &a) in merged.active_cycles.iter_mut().zip(&chunk.active_cycles) {
            *acc += a;
        }
        merged.cycles += chunk.cycles;
    }
    for pair in chunks.windows(2) {
        let (left, right) = (&pair[0], &pair[1]);
        for &i in &compiled.counted {
            let i = i as usize;
            merged.toggles[i] += u64::from(left.last[i] != right.first[i]);
        }
        for dff in &compiled.dffs {
            if left.enabled[dff.domain as usize] {
                let i = dff.net as usize;
                merged.toggles[i] += u64::from(left.last[i] != right.first[i]);
            }
        }
    }
    merged
}

/// A wide-word simulator over a [`CompiledNetlist`].
///
/// Semantics are bit-identical to
/// [`BatchSimulator`](crate::batch::BatchSimulator) — same toggle
/// formula, clock accounting, DFF fixpoint and output visibility —
/// generalised over the lane width `W`. The hot block step is
/// dispatched once at construction to an instruction-set-specific
/// compilation of the same portable body (AVX2/AVX-512 on x86-64 when
/// the CPU has them), so wider words become genuine vector operations
/// without any behavioural difference.
#[derive(Debug)]
pub struct CompiledSimulator<'a, W: WideWord> {
    compiled: &'a CompiledNetlist,
    isa: Isa,
    /// Settled lane word per net (always masked to the current block).
    words: Vec<W>,
    /// Last visible lane of the previous block, per net.
    carry: Vec<bool>,
    /// First visible lane of the first block, per net (chunk stitching).
    first: Vec<bool>,
    /// Stored state per DFF net.
    state: Vec<bool>,
    toggles: Vec<u64>,
    enabled: Vec<bool>,
    active_cycles: Vec<u64>,
    cycles: u64,
    initialized: bool,
    /// Two-phase commit scratch, parallel to `compiled.dffs`.
    dff_next: Vec<W>,
}

impl<'a, W: WideWord> CompiledSimulator<'a, W> {
    /// Creates a simulator with the best instruction set the CPU
    /// supports; all nets start at 0, all domains enabled.
    pub fn new(compiled: &'a CompiledNetlist) -> Self {
        Self::with_isa(compiled, crate::backend::detect_isa())
    }

    /// Creates a simulator pinned to the portable (no explicit ISA
    /// features) compilation of the kernel — the differential suite
    /// uses this to cover the exact code path CI machines without AVX
    /// run.
    pub fn new_portable(compiled: &'a CompiledNetlist) -> Self {
        Self::with_isa(compiled, Isa::Portable)
    }

    pub(crate) fn with_isa(compiled: &'a CompiledNetlist, isa: Isa) -> Self {
        let n = compiled.n_cells;
        Self {
            compiled,
            isa,
            words: vec![W::zero(); n],
            carry: vec![false; n],
            first: vec![false; n],
            state: vec![false; n],
            toggles: vec![0; n],
            enabled: vec![true; compiled.n_domains],
            active_cycles: vec![0; compiled.n_domains],
            cycles: 0,
            initialized: false,
            dff_next: vec![W::zero(); compiled.dffs.len()],
        }
    }

    /// Lanes (stimulus cycles) per block for this width.
    pub fn lanes_per_block(&self) -> usize {
        W::LANES
    }

    /// Presets a DFF's stored value before simulation; broadcast across
    /// all lanes, and also the net's toggle/stitch reference.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotADff`] if `net` is not a DFF.
    pub fn preset_dff(&mut self, net: NetId, value: bool) -> Result<(), NetlistError> {
        let i = net.index();
        if self
            .compiled
            .dffs
            .binary_search_by_key(&(i as u32), |d| d.net)
            .is_err()
        {
            return Err(NetlistError::NotADff(i));
        }
        self.state[i] = value;
        self.carry[i] = value;
        Ok(())
    }

    /// Enables or disables a clock domain. May only be called between
    /// blocks.
    pub fn set_domain_enabled(&mut self, domain: DomainId, enabled: bool) {
        self.enabled[domain.index()] = enabled;
    }

    /// Steps `lanes` clock cycles at once (`1..=W::LANES`).
    ///
    /// `inputs` carries `LIMBS` words per primary input — input `k`'s
    /// limb `m` at `inputs[k * LIMBS + m]`, lane `l` of the block being
    /// bit `l % 64` of limb `l / 64`. `out` receives the output lane
    /// words in the same layout.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadLaneCount`] when `lanes` is outside
    /// `1..=W::LANES` and [`NetlistError::PortWidthMismatch`] when a
    /// buffer length disagrees with the port count.
    pub fn step_block(
        &mut self,
        inputs: &[u64],
        lanes: usize,
        out: &mut [u64],
    ) -> Result<(), NetlistError> {
        if !(1..=W::LANES).contains(&lanes) {
            return Err(NetlistError::BadLaneCount {
                lanes,
                max: W::LANES,
            });
        }
        let want_in = self.compiled.input_nets.len() * W::LIMBS;
        if inputs.len() != want_in {
            return Err(NetlistError::PortWidthMismatch {
                role: "input",
                expected: want_in,
                got: inputs.len(),
            });
        }
        let want_out = self.compiled.outputs.len() * W::LIMBS;
        if out.len() != want_out {
            return Err(NetlistError::PortWidthMismatch {
                role: "output",
                expected: want_out,
                got: out.len(),
            });
        }
        match self.isa {
            Isa::Portable => self.step_block_body(inputs, lanes, out),
            // SAFETY: the Isa variant is only ever constructed after
            // `is_x86_feature_detected!` confirmed the feature (see
            // `backend::detect_isa`), so the target-feature call is
            // sound on this CPU.
            #[cfg(target_arch = "x86_64")]
            #[allow(unsafe_code)]
            Isa::Avx2 => unsafe { self.step_block_avx2(inputs, lanes, out) },
            #[cfg(target_arch = "x86_64")]
            #[allow(unsafe_code)]
            Isa::Avx512 => unsafe { self.step_block_avx512(inputs, lanes, out) },
        }
        Ok(())
    }

    /// The portable kernel body recompiled with AVX2 enabled.
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    unsafe fn step_block_avx2(&mut self, inputs: &[u64], lanes: usize, out: &mut [u64]) {
        self.step_block_body(inputs, lanes, out);
    }

    /// The portable kernel body recompiled with AVX-512F enabled.
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f")]
    unsafe fn step_block_avx512(&mut self, inputs: &[u64], lanes: usize, out: &mut [u64]) {
        self.step_block_body(inputs, lanes, out);
    }

    /// One block step; mirrors `BatchSimulator::step_block` exactly
    /// (see that module's equivalence argument), with the per-cell
    /// `match` replaced by the compiled run schedule. `inline(always)`
    /// so each `#[target_feature]` wrapper gets its own ISA-specific
    /// compilation of the whole body.
    #[inline(always)]
    fn step_block_body(&mut self, inputs: &[u64], lanes: usize, out: &mut [u64]) {
        let cn = self.compiled;
        let mask = W::lane_mask(lanes);

        // Source words: inputs, constants, DFF broadcast states.
        for (k, &net) in cn.input_nets.iter().enumerate() {
            let mut w = W::zero();
            for m in 0..W::LIMBS {
                w.set_limb(m, inputs[k * W::LIMBS + m]);
            }
            self.words[net as usize] = w.and(mask);
        }
        for &i in &cn.const1 {
            self.words[i as usize] = mask;
        }
        for dff in &cn.dffs {
            self.words[dff.net as usize] = if self.state[dff.net as usize] {
                mask
            } else {
                W::zero()
            };
        }

        // Settle the block: run-scheduled combinational evaluation
        // interleaved with two-phase DFF lane shifts until fixpoint.
        let mut passes = 0usize;
        loop {
            passes += 1;
            assert!(
                passes <= W::LANES + 2,
                "DFF lane fixpoint failed to converge (netlist bug)"
            );
            self.eval_runs(mask);
            if cn.dffs.is_empty() {
                break;
            }
            let mut changed = false;
            for (k, dff) in cn.dffs.iter().enumerate() {
                let i = dff.net as usize;
                let q = if self.enabled[dff.domain as usize] {
                    self.words[dff.d as usize].shl1(self.state[i]).and(mask)
                } else {
                    self.words[i] // frozen broadcast
                };
                changed |= q != self.words[i];
                self.dff_next[k] = q;
            }
            if !changed {
                break;
            }
            for (k, dff) in cn.dffs.iter().enumerate() {
                self.words[dff.net as usize] = self.dff_next[k];
            }
        }

        // Toggle counting + state/carry update: non-DFF nets first
        // (unconditional), then enabled DFFs over their next-state
        // stream. Identical formula to the u64 engine.
        let record_first = !self.initialized;
        for &i in &cn.counted {
            let i = i as usize;
            let w = self.words[i];
            let mut diff = w.xor(w.shl1(self.carry[i])).and(mask);
            if record_first {
                diff = diff.clear_bit0(); // first-ever cycle: no predecessor
                self.first[i] = w.bit(0);
            }
            self.toggles[i] += diff.count_ones();
            self.carry[i] = w.bit(lanes - 1);
        }
        for dff in &cn.dffs {
            if !self.enabled[dff.domain as usize] {
                continue; // frozen: no toggles, reference unchanged
            }
            let i = dff.net as usize;
            let w = self.words[dff.d as usize];
            let mut diff = w.xor(w.shl1(self.carry[i])).and(mask);
            if record_first {
                diff = diff.clear_bit0();
                self.first[i] = w.bit(0);
            }
            self.toggles[i] += diff.count_ones();
            self.carry[i] = w.bit(lanes - 1);
            self.state[i] = w.bit(lanes - 1);
        }

        for (d, &en) in self.enabled.iter().enumerate() {
            if en {
                self.active_cycles[d] += lanes as u64;
            }
        }
        self.cycles += lanes as u64;
        self.initialized = true;

        // Post-edge output visibility, as in the scalar engine.
        for (k, slot) in cn.outputs.iter().enumerate() {
            let w = if slot.is_dff && self.enabled[slot.domain as usize] {
                self.words[slot.d as usize]
            } else {
                self.words[slot.net as usize]
            };
            for m in 0..W::LIMBS {
                out[k * W::LIMBS + m] = w.limb(m);
            }
        }
    }

    /// One combinational settle pass over the level-sorted run
    /// schedule.
    #[inline(always)]
    fn eval_runs(&mut self, mask: W) {
        let cn = self.compiled;
        let words = &mut self.words;
        for run in &cn.runs {
            let span = run.start as usize..(run.start + run.len) as usize;
            match run.kind {
                CellKind::Inv => {
                    for j in span {
                        words[cn.dst[j] as usize] = words[cn.a[j] as usize].not().and(mask);
                    }
                }
                CellKind::Buf => {
                    for j in span {
                        words[cn.dst[j] as usize] = words[cn.a[j] as usize];
                    }
                }
                CellKind::And2 => {
                    for j in span {
                        words[cn.dst[j] as usize] =
                            words[cn.a[j] as usize].and(words[cn.b[j] as usize]);
                    }
                }
                CellKind::Or2 => {
                    for j in span {
                        words[cn.dst[j] as usize] =
                            words[cn.a[j] as usize].or(words[cn.b[j] as usize]);
                    }
                }
                CellKind::Nand2 => {
                    for j in span {
                        words[cn.dst[j] as usize] = words[cn.a[j] as usize]
                            .and(words[cn.b[j] as usize])
                            .not()
                            .and(mask);
                    }
                }
                CellKind::Nor2 => {
                    for j in span {
                        words[cn.dst[j] as usize] = words[cn.a[j] as usize]
                            .or(words[cn.b[j] as usize])
                            .not()
                            .and(mask);
                    }
                }
                CellKind::Xor2 => {
                    for j in span {
                        words[cn.dst[j] as usize] =
                            words[cn.a[j] as usize].xor(words[cn.b[j] as usize]);
                    }
                }
                CellKind::Xnor2 => {
                    for j in span {
                        words[cn.dst[j] as usize] = words[cn.a[j] as usize]
                            .xor(words[cn.b[j] as usize])
                            .not()
                            .and(mask);
                    }
                }
                // `!sel` spills ones above the mask, but `a` is masked.
                CellKind::Mux2 => {
                    for j in span {
                        let sel = words[cn.c[j] as usize];
                        words[cn.dst[j] as usize] = sel
                            .and(words[cn.b[j] as usize])
                            .or(sel.not().and(words[cn.a[j] as usize]));
                    }
                }
                CellKind::Input | CellKind::Const0 | CellKind::Const1 | CellKind::Dff => {
                    unreachable!("source cells are not in the run schedule")
                }
            }
        }
    }

    /// Total toggles of net `net` so far.
    pub fn toggle_count(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// All per-net toggle counters.
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Cycles stepped so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Clocked cycles accumulated per domain.
    pub fn domain_active_cycles(&self) -> &[u64] {
        &self.active_cycles
    }

    /// Extracts the chunk's statistics and boundary values for
    /// [`merge_chunk_stats`].
    pub fn chunk_stats(&self) -> ChunkStats {
        ChunkStats {
            toggles: self.toggles.clone(),
            cycles: self.cycles,
            active_cycles: self.active_cycles.clone(),
            first: self.first.clone(),
            last: self.carry.clone(),
            enabled: self.enabled.clone(),
        }
    }
}

impl<W: WideWord> Activity for CompiledSimulator<'_, W> {
    fn toggles(&self) -> &[u64] {
        &self.toggles
    }
    fn cycles(&self) -> u64 {
        self.cycles
    }
    fn domain_active_cycles(&self) -> &[u64] {
        &self.active_cycles
    }
}
