//! Technology cell library: per-cell area, delay, switching energy and
//! leakage, plus clocking costs.
//!
//! The paper synthesises its architectures with Synopsys DC against the
//! Nangate 45 nm open cell library and measures power with PrimeTime. We
//! substitute a constant-per-cell model with Nangate-45-inspired numbers
//! (DESIGN.md §3): absolute values are approximate, but Fig. 5 compares
//! *ratios* between architectures built from the same cells, which the
//! model preserves by construction.

use crate::cell::CellKind;
use serde::{Deserialize, Serialize};

/// Physical parameters of one cell type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Pin-to-output propagation delay in ns.
    pub delay_ns: f64,
    /// Energy per output toggle in fJ.
    pub switch_energy_fj: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
}

const ZERO: CellParams = CellParams {
    area_um2: 0.0,
    delay_ns: 0.0,
    switch_energy_fj: 0.0,
    leakage_nw: 0.0,
};

/// A complete cell library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    /// Library name (for reports).
    pub name: String,
    inv: CellParams,
    buf: CellParams,
    and2: CellParams,
    or2: CellParams,
    nand2: CellParams,
    nor2: CellParams,
    xor2: CellParams,
    xnor2: CellParams,
    mux2: CellParams,
    dff: CellParams,
    /// Clock-pin energy charged to every DFF in an *enabled* clock domain,
    /// every cycle, in fJ (this is what clock gating saves).
    pub dff_clock_energy_fj: f64,
    /// DFF clock-to-Q delay in ns (timing-path launch cost).
    pub dff_clk_to_q_ns: f64,
    /// Area overhead of one integrated clock-gating cell, in µm².
    pub icg_area_um2: f64,
    /// Per-cycle energy of one enabled clock-gating cell, in fJ.
    pub icg_energy_fj: f64,
}

impl CellLibrary {
    /// A Nangate-45-nm-inspired library (typical corner, rounded values).
    pub fn nangate45() -> Self {
        Self {
            name: "nangate45-inspired".to_string(),
            inv: CellParams {
                area_um2: 0.80,
                delay_ns: 0.025,
                switch_energy_fj: 0.55,
                leakage_nw: 12.0,
            },
            buf: CellParams {
                area_um2: 1.06,
                delay_ns: 0.040,
                switch_energy_fj: 0.75,
                leakage_nw: 16.0,
            },
            and2: CellParams {
                area_um2: 1.33,
                delay_ns: 0.050,
                switch_energy_fj: 1.00,
                leakage_nw: 22.0,
            },
            or2: CellParams {
                area_um2: 1.33,
                delay_ns: 0.052,
                switch_energy_fj: 1.00,
                leakage_nw: 22.0,
            },
            nand2: CellParams {
                area_um2: 1.06,
                delay_ns: 0.035,
                switch_energy_fj: 0.80,
                leakage_nw: 18.0,
            },
            nor2: CellParams {
                area_um2: 1.06,
                delay_ns: 0.038,
                switch_energy_fj: 0.80,
                leakage_nw: 18.0,
            },
            xor2: CellParams {
                area_um2: 1.86,
                delay_ns: 0.080,
                switch_energy_fj: 1.60,
                leakage_nw: 40.0,
            },
            xnor2: CellParams {
                area_um2: 1.86,
                delay_ns: 0.082,
                switch_energy_fj: 1.60,
                leakage_nw: 40.0,
            },
            mux2: CellParams {
                area_um2: 1.86,
                delay_ns: 0.070,
                switch_energy_fj: 1.40,
                leakage_nw: 35.0,
            },
            dff: CellParams {
                area_um2: 4.52,
                delay_ns: 0.0, // D-pin has no combinational propagation
                switch_energy_fj: 1.80,
                leakage_nw: 90.0,
            },
            dff_clock_energy_fj: 0.90,
            dff_clk_to_q_ns: 0.090,
            icg_area_um2: 5.0,
            icg_energy_fj: 2.0,
        }
    }

    /// Returns a copy with every area, delay, switching-energy and
    /// leakage value multiplied by the given factors (simple
    /// technology-scaling model). Useful for checking that *relative*
    /// architecture comparisons are invariant under library scaling.
    #[must_use]
    pub fn scaled(&self, area: f64, delay: f64, energy: f64, leakage: f64) -> Self {
        let sc = |p: CellParams| CellParams {
            area_um2: p.area_um2 * area,
            delay_ns: p.delay_ns * delay,
            switch_energy_fj: p.switch_energy_fj * energy,
            leakage_nw: p.leakage_nw * leakage,
        };
        Self {
            name: format!("{}-scaled", self.name),
            inv: sc(self.inv),
            buf: sc(self.buf),
            and2: sc(self.and2),
            or2: sc(self.or2),
            nand2: sc(self.nand2),
            nor2: sc(self.nor2),
            xor2: sc(self.xor2),
            xnor2: sc(self.xnor2),
            mux2: sc(self.mux2),
            dff: sc(self.dff),
            dff_clock_energy_fj: self.dff_clock_energy_fj * energy,
            dff_clk_to_q_ns: self.dff_clk_to_q_ns * delay,
            icg_area_um2: self.icg_area_um2 * area,
            icg_energy_fj: self.icg_energy_fj * energy,
        }
    }

    /// Parameters of a cell kind (`Input`/`Const*` are free).
    pub fn params(&self, kind: CellKind) -> CellParams {
        match kind {
            CellKind::Input | CellKind::Const0 | CellKind::Const1 => ZERO,
            CellKind::Inv => self.inv,
            CellKind::Buf => self.buf,
            CellKind::And2 => self.and2,
            CellKind::Or2 => self.or2,
            CellKind::Nand2 => self.nand2,
            CellKind::Nor2 => self.nor2,
            CellKind::Xor2 => self.xor2,
            CellKind::Xnor2 => self.xnor2,
            CellKind::Mux2 => self.mux2,
            CellKind::Dff => self.dff,
        }
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::nangate45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_parameters() {
        let lib = CellLibrary::nangate45();
        for k in CellKind::all() {
            let p = lib.params(k);
            assert!(p.area_um2 >= 0.0 && p.delay_ns >= 0.0);
            assert!(p.switch_energy_fj >= 0.0 && p.leakage_nw >= 0.0);
        }
    }

    #[test]
    fn sources_are_free() {
        let lib = CellLibrary::nangate45();
        for k in [CellKind::Input, CellKind::Const0, CellKind::Const1] {
            assert_eq!(lib.params(k).area_um2, 0.0);
        }
    }

    #[test]
    fn relative_cell_ordering_is_plausible() {
        // The model's ratios drive every architecture comparison; pin the
        // basic ordering so a library edit cannot silently invert them.
        let lib = CellLibrary::nangate45();
        assert!(lib.params(CellKind::Inv).area_um2 < lib.params(CellKind::Mux2).area_um2);
        assert!(lib.params(CellKind::Mux2).area_um2 < lib.params(CellKind::Dff).area_um2);
        assert!(lib.params(CellKind::Nand2).delay_ns < lib.params(CellKind::Xor2).delay_ns);
        assert!(lib.dff_clock_energy_fj > 0.0);
    }

    #[test]
    fn scaling_multiplies_every_field() {
        let lib = CellLibrary::nangate45();
        let s = lib.scaled(2.0, 3.0, 4.0, 5.0);
        for k in CellKind::all() {
            let a = lib.params(k);
            let b = s.params(k);
            assert!((b.area_um2 - 2.0 * a.area_um2).abs() < 1e-12);
            assert!((b.delay_ns - 3.0 * a.delay_ns).abs() < 1e-12);
            assert!((b.switch_energy_fj - 4.0 * a.switch_energy_fj).abs() < 1e-12);
            assert!((b.leakage_nw - 5.0 * a.leakage_nw).abs() < 1e-12);
        }
        assert!((s.dff_clock_energy_fj - 4.0 * lib.dff_clock_energy_fj).abs() < 1e-12);
        assert!((s.icg_area_um2 - 2.0 * lib.icg_area_um2).abs() < 1e-12);
    }

    #[test]
    fn library_serde_round_trip() {
        let lib = CellLibrary::nangate45();
        let json = serde_json::to_string(&lib).unwrap();
        let back: CellLibrary = serde_json::from_str(&json).unwrap();
        assert_eq!(lib, back);
    }
}
