//! Cycle-accurate two-state simulation with per-net toggle counting and
//! clock-domain activity tracking — the data the power model consumes
//! (our stand-in for VCS + PrimeTime).

use crate::cell::{CellKind, NetId};
use crate::netlist::{DomainId, Netlist, NetlistError};

/// A simulator instance bound to one netlist.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<u32>,
    /// Current value of every net.
    values: Vec<bool>,
    /// Next-state latch for DFFs (captured before the clock edge).
    next_state: Vec<bool>,
    /// Output-toggle count per net.
    toggles: Vec<u64>,
    /// Whether each clock domain currently receives clocks.
    enabled: Vec<bool>,
    /// Clocked cycles accumulated per domain.
    active_cycles: Vec<u64>,
    /// Total cycles stepped.
    cycles: u64,
    initialized: bool,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator; all nets start at 0, all domains enabled.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let order = netlist.topo_order()?;
        let n = netlist.cell_count();
        Ok(Self {
            netlist,
            order,
            values: vec![false; n],
            next_state: vec![false; n],
            toggles: vec![0; n],
            enabled: vec![true; netlist.domains().len()],
            active_cycles: vec![0; netlist.domains().len()],
            cycles: 0,
            initialized: false,
        })
    }

    /// Presets a DFF's stored value (e.g. ROM contents) before simulation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotADff`] if `net` is not a DFF.
    pub fn preset_dff(&mut self, net: NetId, value: bool) -> Result<(), NetlistError> {
        if self.netlist.cells()[net.index()].kind != CellKind::Dff {
            return Err(NetlistError::NotADff(net.index()));
        }
        self.values[net.index()] = value;
        Ok(())
    }

    /// Enables or disables a clock domain (clock gating).
    pub fn set_domain_enabled(&mut self, domain: DomainId, enabled: bool) {
        self.enabled[domain_index(domain)] = enabled;
    }

    /// Steps one clock cycle: applies `inputs` (in primary-input
    /// declaration order), settles combinational logic, counts toggles,
    /// then clocks the DFFs of enabled domains.
    ///
    /// Returns the primary-output values in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        let mut out = vec![false; self.netlist.outputs().len()];
        self.step_into(inputs, &mut out);
        out
    }

    /// Like [`step`](Self::step), but writes the primary-output values
    /// into a caller-provided buffer instead of allocating one — the
    /// variant exhaustive scalar loops should use.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs
    /// or `out.len()` from the number of primary outputs.
    pub fn step_into(&mut self, inputs: &[bool], out: &mut [bool]) {
        let ports = self.netlist.inputs();
        assert_eq!(inputs.len(), ports.len(), "primary input count mismatch");
        assert_eq!(
            out.len(),
            self.netlist.outputs().len(),
            "primary output count mismatch"
        );
        // Apply inputs.
        for ((_, net), &v) in ports.iter().zip(inputs) {
            self.set_value(net.index(), v);
        }
        // Constants.
        if !self.initialized {
            for (i, cell) in self.netlist.cells().iter().enumerate() {
                match cell.kind {
                    CellKind::Const1 => self.values[i] = true,
                    CellKind::Const0 => self.values[i] = false,
                    _ => {}
                }
            }
        }
        // Settle combinational logic in topological order (indexed loop:
        // `set_value` needs `&mut self`).
        for idx in 0..self.order.len() {
            let i = self.order[idx];
            let cell = &self.netlist.cells()[i as usize];
            let ins = cell.inputs();
            let mut vals = [false; 3];
            for (slot, inp) in vals.iter_mut().zip(ins) {
                *slot = self.values[inp.index()];
            }
            let v = cell.kind.eval(&vals[..ins.len()]);
            self.set_value(i as usize, v);
        }
        // Capture DFF next states, then clock enabled domains.
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if cell.kind == CellKind::Dff {
                self.next_state[i] = self.values[cell.inputs()[0].index()];
            }
        }
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if cell.kind == CellKind::Dff && self.enabled[cell.domain()] {
                let v = self.next_state[i];
                if self.initialized && v != self.values[i] {
                    self.toggles[i] += 1;
                }
                self.values[i] = v;
            }
        }
        for (d, &en) in self.enabled.iter().enumerate() {
            if en {
                self.active_cycles[d] += 1;
            }
        }
        self.cycles += 1;
        self.initialized = true;
        for (slot, (_, net)) in out.iter_mut().zip(self.netlist.outputs()) {
            *slot = self.values[net.index()];
        }
    }

    #[inline]
    fn set_value(&mut self, i: usize, v: bool) {
        if self.initialized && self.values[i] != v {
            self.toggles[i] += 1;
        }
        self.values[i] = v;
    }

    /// Evaluates outputs for an input word without counting it as a
    /// measured cycle (convenience for functional checks): the word's bits
    /// are applied LSB-first across the primary inputs.
    pub fn eval_word(&mut self, word: u64) -> u64 {
        let width = self.netlist.inputs().len();
        let nout = self.netlist.outputs().len();
        if width <= 64 && nout <= 64 {
            // Stack buffers: the hot read path allocates nothing.
            let mut ins = [false; 64];
            for (i, slot) in ins[..width].iter_mut().enumerate() {
                *slot = (word >> i) & 1 == 1;
            }
            let mut outs = [false; 64];
            self.step_into(&ins[..width], &mut outs[..nout]);
            return outs[..nout]
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        }
        let bits: Vec<bool> = (0..width).map(|i| (word >> i) & 1 == 1).collect();
        let outs = self.step(&bits);
        outs.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    /// Total toggles of net `net` so far.
    pub fn toggle_count(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// All per-net toggle counters.
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Cycles stepped so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Clocked cycles accumulated per domain.
    pub fn domain_active_cycles(&self) -> &[u64] {
        &self.active_cycles
    }

    /// The current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }
}

fn domain_index(d: DomainId) -> usize {
    // DomainId is crate-internal; index access for the simulator.
    let crate::netlist::DomainId(i) = d;
    i as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::ROOT_DOMAIN;

    #[test]
    fn combinational_logic_evaluates() {
        let mut nl = Netlist::new("xor");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.gate2(CellKind::Xor2, a, b);
        nl.output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = sim.step(&[va, vb]);
            assert_eq!(out[0], va ^ vb);
        }
    }

    #[test]
    fn eval_word_packs_bits() {
        let mut nl = Netlist::new("add1");
        let a = nl.input_bus("a", 2);
        // y = a + 1 (mod 4): y0 = !a0; y1 = a1 ^ a0.
        let y0 = nl.inv(a[0]);
        let y1 = nl.gate2(CellKind::Xor2, a[1], a[0]);
        nl.output("y[0]", y0);
        nl.output("y[1]", y1);
        let mut sim = Simulator::new(&nl).unwrap();
        for x in 0..4u64 {
            assert_eq!(sim.eval_word(x), (x + 1) % 4);
        }
    }

    #[test]
    fn rom_bits_retain_preset_values() {
        let mut nl = Netlist::new("rom");
        let q0 = nl.rom_bit(ROOT_DOMAIN);
        let q1 = nl.rom_bit(ROOT_DOMAIN);
        nl.output("q0", q0);
        nl.output("q1", q1);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.preset_dff(q0, true).unwrap();
        for _ in 0..5 {
            let out = sim.step(&[]);
            assert_eq!(out, vec![true, false]);
        }
        // Retention produces no data toggles.
        assert_eq!(sim.toggle_count(q0), 0);
        assert_eq!(sim.toggle_count(q1), 0);
    }

    #[test]
    fn toggle_counting_ignores_first_cycle() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let y = nl.inv(a);
        nl.output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.step(&[true]); // initialisation, no toggles counted
        assert_eq!(sim.toggle_count(y), 0);
        sim.step(&[false]);
        assert_eq!(sim.toggle_count(y), 1);
        sim.step(&[false]); // no change, no toggle
        assert_eq!(sim.toggle_count(y), 1);
        sim.step(&[true]);
        assert_eq!(sim.toggle_count(y), 2);
    }

    #[test]
    fn gated_domain_freezes_dffs_and_saves_cycles() {
        let mut nl = Netlist::new("gate");
        let gated = nl.add_domain("gated");
        let d = nl.input("d");
        let q_on = nl.dff(d, ROOT_DOMAIN);
        let q_off = nl.dff(d, gated);
        nl.output("q_on", q_on);
        nl.output("q_off", q_off);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_domain_enabled(gated, false);
        sim.step(&[true]);
        let out = sim.step(&[true]);
        // The live DFF captured 1; the gated one stayed at reset 0.
        assert!(out[0]);
        assert!(!out[1]);
        sim.step(&[false]);
        assert_eq!(sim.domain_active_cycles()[0], 3);
        assert_eq!(sim.domain_active_cycles()[1], 0);
    }

    #[test]
    fn dff_pipeline_delays_by_one_cycle() {
        let mut nl = Netlist::new("pipe");
        let d = nl.input("d");
        let q1 = nl.dff(d, ROOT_DOMAIN);
        let q2 = nl.dff(q1, ROOT_DOMAIN);
        nl.output("q2", q2);
        let mut sim = Simulator::new(&nl).unwrap();
        let seq = [true, false, true, true, false];
        let mut seen = Vec::new();
        for &v in &seq {
            let out = sim.step(&[v]);
            seen.push(out[0]);
        }
        // After edge k, q2 holds d[k-1] (q1 holds d[k]): standard
        // two-stage register transfer.
        assert_eq!(seen, vec![false, true, false, true, true]);
    }

    #[test]
    fn preset_dff_rejects_non_dff_nets() {
        let mut nl = Netlist::new("p");
        let a = nl.input("a");
        let y = nl.inv(a);
        nl.output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        assert_eq!(
            sim.preset_dff(y, true),
            Err(NetlistError::NotADff(y.index()))
        );
    }

    #[test]
    fn step_into_reuses_the_output_buffer() {
        let mut nl = Netlist::new("b");
        let a = nl.input("a");
        let y = nl.inv(a);
        nl.output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        let mut out = [true; 1];
        sim.step_into(&[true], &mut out);
        assert!(!out[0]);
        sim.step_into(&[false], &mut out);
        assert!(out[0]);
    }

    #[test]
    #[should_panic(expected = "input count mismatch")]
    fn step_validates_input_width() {
        let mut nl = Netlist::new("w");
        let _ = nl.input("a");
        let mut sim = Simulator::new(&nl).unwrap();
        let _ = sim.step(&[]);
    }
}
