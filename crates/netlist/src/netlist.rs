//! The netlist graph: cells, ports, clock domains, and construction
//! helpers (mux trees, DFF ROM arrays, buses).

use crate::cell::{Cell, CellKind, NetId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised when a netlist is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A combinational cycle was found through the given cell index.
    CombinationalCycle(usize),
    /// A named port was declared twice.
    DuplicatePort(String),
    /// A DFF-only operation (e.g. a ROM preset) targeted the given
    /// non-DFF cell index.
    NotADff(usize),
    /// A block-stepping call passed a lane count outside `1..=max`.
    BadLaneCount {
        /// The rejected lane count.
        lanes: usize,
        /// The engine's maximum lanes per block.
        max: usize,
    },
    /// A stimulus or output buffer length disagreed with the engine's
    /// expectation for the netlist's port list.
    PortWidthMismatch {
        /// Which buffer was malformed (`"input"` or `"output"`).
        role: &'static str,
        /// The expected buffer length.
        expected: usize,
        /// The supplied buffer length.
        got: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CombinationalCycle(i) => {
                write!(f, "combinational cycle through cell {i}")
            }
            Self::DuplicatePort(name) => write!(f, "duplicate port name '{name}'"),
            Self::NotADff(i) => write!(f, "cell {i} is not a DFF"),
            Self::BadLaneCount { lanes, max } => {
                write!(f, "lane count {lanes} outside 1..={max}")
            }
            Self::PortWidthMismatch {
                role,
                expected,
                got,
            } => write!(f, "{role} buffer holds {got} words, expected {expected}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Identifier of a clock domain. Domain 0 is the always-on root clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DomainId(pub(crate) u16);

impl DomainId {
    /// The domain's index into [`Netlist::domains`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The always-on root clock domain.
pub const ROOT_DOMAIN: DomainId = DomainId(0);

/// A gate-level netlist.
///
/// Cells are stored in creation order; each cell drives the net with its
/// own index. DFFs belong to a clock domain; gating a domain freezes its
/// DFFs and saves their per-cycle clock energy (the BTO mechanism).
///
/// # Examples
///
/// ```
/// use dalut_netlist::{Netlist, CellKind};
///
/// let mut nl = Netlist::new("xor_gate");
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let x = nl.gate2(CellKind::Xor2, a, b);
/// nl.output("y", x);
/// assert_eq!(nl.cell_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    inputs: Vec<(String, NetId)>,
    outputs: Vec<(String, NetId)>,
    /// Human-readable name per clock domain (index = domain id).
    domains: Vec<String>,
    /// Count of DFFs per domain (kept in sync by `dff`).
    dff_per_domain: Vec<usize>,
}

impl Netlist {
    /// Creates an empty netlist with the always-on root clock domain.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            domains: vec!["clk".to_string()],
            dff_per_domain: vec![0],
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells (== number of nets).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The cells in creation order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The named primary inputs.
    pub fn inputs(&self) -> &[(String, NetId)] {
        &self.inputs
    }

    /// The named primary outputs.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Clock-domain names (index = domain id).
    pub fn domains(&self) -> &[String] {
        &self.domains
    }

    /// Number of DFFs in a domain.
    pub fn dff_count(&self, domain: DomainId) -> usize {
        self.dff_per_domain[domain.0 as usize]
    }

    /// DFF counts per domain (index = domain id).
    pub fn dff_counts(&self) -> &[usize] {
        &self.dff_per_domain
    }

    /// Total DFFs.
    pub fn total_dffs(&self) -> usize {
        self.dff_per_domain.iter().sum()
    }

    fn push(&mut self, kind: CellKind, inputs: [NetId; 3], domain: u16) -> NetId {
        let id = NetId(u32::try_from(self.cells.len()).expect("netlist too large"));
        self.cells.push(Cell {
            kind,
            inputs,
            domain,
        });
        id
    }

    /// Adds a named primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.push(CellKind::Input, [NetId(0); 3], 0);
        self.inputs.push((name.into(), id));
        id
    }

    /// Adds a bus of named primary inputs (`name[0]`, `name[1]`, ...),
    /// LSB first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// The constant-0 net.
    pub fn const0(&mut self) -> NetId {
        self.push(CellKind::Const0, [NetId(0); 3], 0)
    }

    /// The constant-1 net.
    pub fn const1(&mut self) -> NetId {
        self.push(CellKind::Const1, [NetId(0); 3], 0)
    }

    /// A constant of the given value.
    pub fn constant(&mut self, value: bool) -> NetId {
        if value {
            self.const1()
        } else {
            self.const0()
        }
    }

    /// Adds a 1-input gate.
    pub fn gate1(&mut self, kind: CellKind, a: NetId) -> NetId {
        assert_eq!(kind.arity(), 1, "gate1 requires a 1-input kind");
        self.push(kind, [a, NetId(0), NetId(0)], 0)
    }

    /// Adds a 2-input gate.
    pub fn gate2(&mut self, kind: CellKind, a: NetId, b: NetId) -> NetId {
        assert_eq!(kind.arity(), 2, "gate2 requires a 2-input kind");
        self.push(kind, [a, b, NetId(0)], 0)
    }

    /// Adds an inverter.
    pub fn inv(&mut self, a: NetId) -> NetId {
        self.gate1(CellKind::Inv, a)
    }

    /// Adds a 2-to-1 mux: `sel ? b : a`.
    pub fn mux2(&mut self, a: NetId, b: NetId, sel: NetId) -> NetId {
        self.push(CellKind::Mux2, [a, b, sel], 0)
    }

    /// Declares a new gated clock domain and returns its id.
    pub fn add_domain(&mut self, name: impl Into<String>) -> DomainId {
        let id = u16::try_from(self.domains.len()).expect("too many clock domains");
        self.domains.push(name.into());
        self.dff_per_domain.push(0);
        DomainId(id)
    }

    /// Adds a DFF with data input `d` in the given clock domain.
    pub fn dff(&mut self, d: NetId, domain: DomainId) -> NetId {
        self.dff_per_domain[domain.0 as usize] += 1;
        self.push(CellKind::Dff, [d, NetId(0), NetId(0)], domain.0)
    }

    /// Adds a read-only DFF bit (its D input is its own Q, so it retains
    /// its value; the initial value is set by the simulator). This is how
    /// the paper's "RAM consisting of D flip-flops" stores LUT contents.
    pub fn rom_bit(&mut self, domain: DomainId) -> NetId {
        // Self-loop through the D pin: legal because the loop crosses the
        // sequential element.
        let id = NetId(u32::try_from(self.cells.len()).expect("netlist too large"));
        self.dff_per_domain[domain.0 as usize] += 1;
        self.push(CellKind::Dff, [id, NetId(0), NetId(0)], domain.0)
    }

    /// Rewires the D input of an existing DFF. This is the only legal way
    /// to create a backward reference (a cell reading a later cell), and
    /// it is safe because DFF D-pin edges are cut for all combinational
    /// analyses; it is how read-modify-write storage bits close their
    /// update loops.
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a DFF or `d` is out of range.
    pub fn rewire_dff_input(&mut self, dff: NetId, d: NetId) {
        assert!((d.index()) < self.cells.len(), "net out of range");
        let cell = &mut self.cells[dff.index()];
        assert_eq!(cell.kind, CellKind::Dff, "rewire_dff_input on a non-DFF");
        cell.inputs[0] = d;
    }

    /// Builds a balanced mux tree selecting `leaves[Bin(sel)]`, with
    /// `sel` LSB-first. Returns the root net.
    ///
    /// # Panics
    ///
    /// Panics unless `leaves.len() == 2^sel.len()` and is non-empty.
    pub fn mux_tree(&mut self, leaves: &[NetId], sel: &[NetId]) -> NetId {
        assert!(!leaves.is_empty(), "mux tree needs at least one leaf");
        assert_eq!(
            leaves.len(),
            1usize << sel.len(),
            "leaf count must be 2^selects"
        );
        if sel.is_empty() {
            return leaves[0];
        }
        // Reduce on the LSB select first: adjacent leaf pairs.
        let mut level: Vec<NetId> = leaves.to_vec();
        for &s in sel {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                next.push(self.mux2(pair[0], pair[1], s));
            }
            level = next;
        }
        debug_assert_eq!(level.len(), 1);
        level[0]
    }

    /// Declares a named primary output driven by `net`.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Topological order of the combinational cells (inputs, constants and
    /// DFF outputs are sources). DFF *D-input* edges are cut, so loops
    /// through registers are fine.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if a cycle exists
    /// through combinational cells only.
    pub fn topo_order(&self) -> Result<Vec<u32>, NetlistError> {
        let n = self.cells.len();
        // In-degree over combinational edges only (DFF D-input edges are
        // cut, so loops through registers never count).
        let mut indeg = vec![0u32; n];
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.kind.is_sequential() {
                continue;
            }
            indeg[i] = cell
                .inputs()
                .iter()
                .filter(|inp| {
                    let src = &self.cells[inp.index()];
                    !(src.kind.is_sequential()
                        || matches!(
                            src.kind,
                            CellKind::Input | CellKind::Const0 | CellKind::Const1
                        ))
                })
                .count() as u32;
        }
        // Fan-out lists for combinational consumers.
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.kind.is_sequential() {
                continue;
            }
            for inp in cell.inputs() {
                let src = &self.cells[inp.index()];
                if !(src.kind.is_sequential()
                    || matches!(
                        src.kind,
                        CellKind::Input | CellKind::Const0 | CellKind::Const1
                    ))
                {
                    fanout[inp.index()].push(i as u32);
                }
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| {
                let k = self.cells[i as usize].kind;
                !k.is_sequential()
                    && !matches!(k, CellKind::Input | CellKind::Const0 | CellKind::Const1)
                    && indeg[i as usize] == 0
            })
            .collect();
        while let Some(i) = queue.pop() {
            order.push(i);
            for &c in &fanout[i as usize] {
                indeg[c as usize] -= 1;
                if indeg[c as usize] == 0 {
                    queue.push(c);
                }
            }
        }
        let comb_total = self
            .cells
            .iter()
            .filter(|c| {
                !c.kind.is_sequential()
                    && !matches!(
                        c.kind,
                        CellKind::Input | CellKind::Const0 | CellKind::Const1
                    )
            })
            .count();
        if order.len() != comb_total {
            // Find one cell stuck in a cycle for the error message.
            let stuck = (0..n)
                .find(|&i| {
                    let k = self.cells[i].kind;
                    !k.is_sequential()
                        && !matches!(k, CellKind::Input | CellKind::Const0 | CellKind::Const1)
                        && indeg[i] > 0
                })
                .unwrap_or(0);
            return Err(NetlistError::CombinationalCycle(stuck));
        }
        Ok(order)
    }

    /// Count of cells per kind (for reports).
    pub fn kind_counts(&self) -> Vec<(CellKind, usize)> {
        let mut out: Vec<(CellKind, usize)> = Vec::new();
        for kind in CellKind::all() {
            let c = self.cells.iter().filter(|x| x.kind == kind).count();
            if c > 0 {
                out.push((kind, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_combinational_netlist() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.gate2(CellKind::And2, a, b);
        let y = nl.inv(x);
        nl.output("y", y);
        assert_eq!(nl.cell_count(), 4);
        let order = nl.topo_order().unwrap();
        assert_eq!(order.len(), 2); // and, inv
                                    // AND comes before INV.
        let pos_and = order.iter().position(|&i| i == x.index() as u32).unwrap();
        let pos_inv = order.iter().position(|&i| i == y.index() as u32).unwrap();
        assert!(pos_and < pos_inv);
    }

    #[test]
    fn rom_bit_self_loop_is_legal() {
        let mut nl = Netlist::new("rom");
        let d = nl.add_domain("gated");
        let q = nl.rom_bit(d);
        nl.output("q", q);
        assert!(nl.topo_order().is_ok());
        assert_eq!(nl.dff_count(d), 1);
        assert_eq!(nl.dff_count(ROOT_DOMAIN), 0);
        assert_eq!(nl.total_dffs(), 1);
    }

    #[test]
    fn combinational_cycle_is_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.input("a");
        // Build b = and(a, c); c = inv(b) manually by forging ids: create
        // the cells in order and wire the first to the second.
        let b = nl.gate2(CellKind::And2, a, a); // placeholder wiring
        let c = nl.inv(b);
        // Rewire b's second input to c to create a cycle.
        nl.cells[b.index()].inputs[1] = c;
        assert!(matches!(
            nl.topo_order(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn mux_tree_has_expected_size_and_order() {
        let mut nl = Netlist::new("mux");
        let leaves: Vec<NetId> = (0..8).map(|i| nl.constant(i % 2 == 0)).collect();
        let sel = nl.input_bus("s", 3);
        let root = nl.mux_tree(&leaves, &sel);
        nl.output("y", root);
        // 8 leaves -> 4 + 2 + 1 = 7 muxes.
        let muxes = nl
            .cells()
            .iter()
            .filter(|c| c.kind == CellKind::Mux2)
            .count();
        assert_eq!(muxes, 7);
        assert!(nl.topo_order().is_ok());
    }

    #[test]
    #[should_panic(expected = "leaf count")]
    fn mux_tree_validates_leaf_count() {
        let mut nl = Netlist::new("bad");
        let leaves = vec![nl.const0(), nl.const1(), nl.const0()];
        let sel = nl.input_bus("s", 2);
        let _ = nl.mux_tree(&leaves, &sel);
    }

    #[test]
    fn mux_tree_single_leaf_passthrough() {
        let mut nl = Netlist::new("one");
        let a = nl.input("a");
        let root = nl.mux_tree(&[a], &[]);
        assert_eq!(root, a);
    }

    #[test]
    fn input_bus_names_are_indexed() {
        let mut nl = Netlist::new("bus");
        let bus = nl.input_bus("d", 3);
        assert_eq!(bus.len(), 3);
        assert_eq!(nl.inputs()[0].0, "d[0]");
        assert_eq!(nl.inputs()[2].0, "d[2]");
    }

    #[test]
    fn netlist_serde_round_trip() {
        let mut nl = Netlist::new("snap");
        let dom = nl.add_domain("g");
        let a = nl.input("a");
        let q = nl.rom_bit(dom);
        let y = nl.gate2(CellKind::Xor2, a, q);
        nl.output("y", y);
        let json = serde_json::to_string(&nl).unwrap();
        let back: Netlist = serde_json::from_str(&json).unwrap();
        assert_eq!(nl, back);
        assert_eq!(back.dff_count(dom), 1);
    }

    #[test]
    fn kind_counts_reflect_cells() {
        let mut nl = Netlist::new("k");
        let a = nl.input("a");
        let b = nl.input("b");
        let _ = nl.gate2(CellKind::Xor2, a, b);
        let _ = nl.gate2(CellKind::Xor2, a, b);
        let counts = nl.kind_counts();
        assert!(counts.contains(&(CellKind::Input, 2)));
        assert!(counts.contains(&(CellKind::Xor2, 2)));
    }
}
