//! Multi-limb lane words for the compiled simulator.
//!
//! A [`WideWord`] packs `64 × LIMBS` consecutive stimulus cycles into
//! one value — the wide generalisation of the `u64` lane word used by
//! [`BatchSimulator`](crate::batch::BatchSimulator). All operations are
//! plain per-limb array ops: with one limb they compile to scalar `u64`
//! instructions, with four or eight limbs they autovectorize to
//! 256/512-bit vector ops when the enclosing function is compiled with
//! AVX2/AVX-512 enabled (see
//! [`CompiledSimulator`](crate::compiled::CompiledSimulator)'s
//! runtime-dispatched `#[target_feature]` wrappers). No `std::simd`,
//! no intrinsics in the kernel itself — the portable body is the only
//! implementation, so every backend computes bit-identical words.

/// A fixed-width bundle of simulation lanes (one bit per cycle).
///
/// Lane `l` lives in bit `l % 64` of limb `l / 64`. The only
/// cross-limb operation is [`shl1`](WideWord::shl1), the
/// one-lane-toward-older shift at the heart of the carry-linked toggle
/// formula and the DFF lane fixpoint.
pub trait WideWord: Copy + PartialEq + Send + Sync + 'static {
    /// Stimulus cycles (lanes) carried per word.
    const LANES: usize;
    /// Number of `u64` limbs.
    const LIMBS: usize;

    /// The all-zero word.
    fn zero() -> Self;
    /// A word with the low `lanes` bits set (`1..=LANES`).
    fn lane_mask(lanes: usize) -> Self;
    /// Bitwise AND.
    fn and(self, other: Self) -> Self;
    /// Bitwise OR.
    fn or(self, other: Self) -> Self;
    /// Bitwise XOR.
    fn xor(self, other: Self) -> Self;
    /// Bitwise complement (unmasked — callers re-mask inverting gate
    /// outputs, exactly like the `u64` engine).
    fn not(self) -> Self;
    /// Shifts every lane one position up (toward newer cycles),
    /// inserting `carry_in` at lane 0. Carries propagate across limbs.
    fn shl1(self, carry_in: bool) -> Self;
    /// Value of lane `i`.
    fn bit(self, i: usize) -> bool;
    /// Total number of set lanes.
    fn count_ones(self) -> u64;
    /// Clears lane 0 (masks the first-ever cycle out of a toggle diff).
    fn clear_bit0(self) -> Self;
    /// Limb `i` as a raw `u64` (lane I/O packing).
    fn limb(self, i: usize) -> u64;
    /// Overwrites limb `i` (lane I/O packing).
    fn set_limb(&mut self, i: usize, value: u64);
}

impl<const L: usize> WideWord for [u64; L] {
    const LANES: usize = 64 * L;
    const LIMBS: usize = L;

    #[inline(always)]
    fn zero() -> Self {
        [0; L]
    }

    #[inline(always)]
    fn lane_mask(lanes: usize) -> Self {
        let mut out = [0u64; L];
        for (m, limb) in out.iter_mut().enumerate() {
            let lo = m * 64;
            *limb = if lanes >= lo + 64 {
                u64::MAX
            } else if lanes <= lo {
                0
            } else {
                (1u64 << (lanes - lo)) - 1
            };
        }
        out
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        let mut out = [0u64; L];
        for m in 0..L {
            out[m] = self[m] & other[m];
        }
        out
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        let mut out = [0u64; L];
        for m in 0..L {
            out[m] = self[m] | other[m];
        }
        out
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        let mut out = [0u64; L];
        for m in 0..L {
            out[m] = self[m] ^ other[m];
        }
        out
    }

    #[inline(always)]
    fn not(self) -> Self {
        let mut out = [0u64; L];
        for m in 0..L {
            out[m] = !self[m];
        }
        out
    }

    #[inline(always)]
    fn shl1(self, carry_in: bool) -> Self {
        let mut out = [0u64; L];
        let mut carry = u64::from(carry_in);
        for m in 0..L {
            out[m] = (self[m] << 1) | carry;
            carry = self[m] >> 63;
        }
        out
    }

    #[inline(always)]
    fn bit(self, i: usize) -> bool {
        (self[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline(always)]
    fn count_ones(self) -> u64 {
        self.iter().map(|limb| u64::from(limb.count_ones())).sum()
    }

    #[inline(always)]
    fn clear_bit0(self) -> Self {
        let mut out = self;
        out[0] &= !1;
        out
    }

    #[inline(always)]
    fn limb(self, i: usize) -> u64 {
        self[i]
    }

    #[inline(always)]
    fn set_limb(&mut self, i: usize, value: u64) {
        self[i] = value;
    }
}

/// One-limb word: the 64-lane compiled engine (same width as
/// [`BatchSimulator`](crate::batch::BatchSimulator)).
pub type W64 = [u64; 1];
/// Four-limb word: 256 lanes per block.
pub type W256 = [u64; 4];
/// Eight-limb word: 512 lanes per block.
pub type W512 = [u64; 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_mask_edges() {
        assert_eq!(<W256 as WideWord>::lane_mask(1), [1, 0, 0, 0]);
        assert_eq!(<W256 as WideWord>::lane_mask(64), [u64::MAX, 0, 0, 0]);
        assert_eq!(<W256 as WideWord>::lane_mask(65), [u64::MAX, 1, 0, 0]);
        assert_eq!(
            <W256 as WideWord>::lane_mask(256),
            [u64::MAX, u64::MAX, u64::MAX, u64::MAX]
        );
        assert_eq!(<W64 as WideWord>::lane_mask(3), [0b111]);
    }

    #[test]
    fn shl1_carries_across_limbs() {
        let w: W256 = [1u64 << 63, 0, 0, 0];
        assert_eq!(w.shl1(true), [1, 1, 0, 0]);
        let w: W256 = [u64::MAX, u64::MAX, 0, 0];
        assert_eq!(w.shl1(false), [u64::MAX - 1, u64::MAX, 1, 0]);
    }

    #[test]
    fn bit_and_counts_span_limbs() {
        let mut w = <W512 as WideWord>::zero();
        w.set_limb(7, 1u64 << 13);
        assert!(w.bit(7 * 64 + 13));
        assert!(!w.bit(0));
        assert_eq!(w.count_ones(), 1);
        assert_eq!(w.clear_bit0(), w);
        let mut v = w;
        v.set_limb(0, 1);
        assert_eq!(v.clear_bit0(), w);
    }
}
