//! A miniature interpreter for the Verilog subset emitted by
//! [`crate::verilog`] — used to validate the export round-trip: a netlist
//! simulated natively and its emitted Verilog interpreted here must agree
//! cycle by cycle. (The stand-in for running the exported module through
//! a real Verilog simulator.)
//!
//! Supported constructs (exactly what `to_verilog_with_presets`
//! produces): `module`/`endmodule`, `input`/`output`/`wire`/`reg`
//! declarations, `assign` with the gate expressions `1'b0`, `1'b1`, `x`,
//! `~x`, `a & b`, `a | b`, `a ^ b`, their negations, and `s ? b : a`;
//! one `initial begin` block of blocking assignments; `always @(posedge
//! clk)` blocks of non-blocking assignments optionally guarded by
//! `if (en)`.

use std::collections::HashMap;
use std::fmt;

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerilogParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for VerilogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for VerilogParseError {}

/// A parsed right-hand-side expression.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Expr {
    Const(bool),
    Net(String),
    Not(String),
    And(String, String),
    Nand(String, String),
    Or(String, String),
    Nor(String, String),
    Xor(String, String),
    Xnor(String, String),
    Mux {
        sel: String,
        then: String,
        els: String,
    },
}

/// One non-blocking register assignment inside an always block.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RegAssign {
    guard: Option<String>,
    lhs: String,
    rhs: String,
}

/// A parsed module ready for interpretation.
#[derive(Debug, Clone)]
pub struct VerilogModule {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    assigns: Vec<(String, Expr)>,
    initials: Vec<(String, bool)>,
    regs: Vec<RegAssign>,
    has_clk: bool,
}

fn parse_operand(tok: &str) -> Result<Expr, String> {
    match tok {
        "1'b0" => Ok(Expr::Const(false)),
        "1'b1" => Ok(Expr::Const(true)),
        t if t.starts_with('~') => Ok(Expr::Not(t[1..].to_string())),
        t if is_ident(t) => Ok(Expr::Net(t.to_string())),
        other => Err(format!("unsupported operand '{other}'")),
    }
}

fn is_ident(t: &str) -> bool {
    !t.is_empty() && t.chars().all(|c| c.is_alphanumeric() || c == '_')
}

fn parse_expr(rhs: &str) -> Result<Expr, String> {
    let rhs = rhs.trim();
    // Ternary.
    if let Some(q) = rhs.find('?') {
        let sel = rhs[..q].trim();
        let rest = &rhs[q + 1..];
        let c = rest.find(':').ok_or("ternary without ':'")?;
        let (then, els) = (rest[..c].trim(), rest[c + 1..].trim());
        if is_ident(sel) && is_ident(then) && is_ident(els) {
            return Ok(Expr::Mux {
                sel: sel.to_string(),
                then: then.to_string(),
                els: els.to_string(),
            });
        }
        return Err(format!("unsupported ternary '{rhs}'"));
    }
    // Negated binary: ~(a OP b).
    if let Some(inner) = rhs.strip_prefix("~(").and_then(|r| r.strip_suffix(')')) {
        return parse_binary(inner, true);
    }
    // Plain binary.
    if rhs.contains('&') || rhs.contains('|') || rhs.contains('^') {
        return parse_binary(rhs, false);
    }
    parse_operand(rhs)
}

fn parse_binary(body: &str, negated: bool) -> Result<Expr, String> {
    for (op, mk, mkn) in [
        (
            '&',
            Expr::And as fn(String, String) -> Expr,
            Expr::Nand as fn(String, String) -> Expr,
        ),
        ('|', Expr::Or, Expr::Nor),
        ('^', Expr::Xor, Expr::Xnor),
    ] {
        if let Some(pos) = body.find(op) {
            let a = body[..pos].trim();
            let b = body[pos + 1..].trim();
            if !is_ident(a) || !is_ident(b) {
                return Err(format!("unsupported binary operands in '{body}'"));
            }
            let (a, b) = (a.to_string(), b.to_string());
            return Ok(if negated { mkn(a, b) } else { mk(a, b) });
        }
    }
    Err(format!("no operator in '{body}'"))
}

impl VerilogModule {
    /// Parses a module from the emitted Verilog text.
    ///
    /// # Errors
    ///
    /// Returns a parse error on the first unsupported construct.
    pub fn parse(src: &str) -> Result<Self, VerilogParseError> {
        let mut name = String::new();
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut assigns = Vec::new();
        let mut initials = Vec::new();
        let mut regs = Vec::new();
        let mut has_clk = false;
        let mut in_initial = false;
        let mut in_always = false;
        let err = |line: usize, message: String| VerilogParseError { line, message };

        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty()
                || line.starts_with("//")
                || line == ");"
                || (name.is_empty() && !line.starts_with("module"))
            {
                continue;
            }
            if let Some(rest) = line.strip_prefix("module ") {
                name = rest.trim_end_matches('(').trim().to_string();
            } else if line == "endmodule" {
                break;
            } else if line == "initial begin" {
                in_initial = true;
            } else if line.starts_with("always @(posedge clk)") {
                in_always = true;
            } else if line == "end" {
                in_initial = false;
                in_always = false;
            } else if in_initial {
                // nN = 1'bV;
                let body = line.trim_end_matches(';');
                let (lhs, rhs) = body
                    .split_once('=')
                    .ok_or_else(|| err(lineno, "malformed initial assignment".into()))?;
                let value = match rhs.trim() {
                    "1'b0" => false,
                    "1'b1" => true,
                    other => return Err(err(lineno, format!("bad initial value '{other}'"))),
                };
                initials.push((lhs.trim().to_string(), value));
            } else if in_always {
                // [if (en) ]nN <= rhs;
                let body = line.trim_end_matches(';');
                let (guard, body) = if let Some(rest) = body.strip_prefix("if (") {
                    let close = rest
                        .find(')')
                        .ok_or_else(|| err(lineno, "unclosed guard".into()))?;
                    (
                        Some(rest[..close].trim().to_string()),
                        rest[close + 1..].trim(),
                    )
                } else {
                    (None, body)
                };
                let (lhs, rhs) = body
                    .split_once("<=")
                    .ok_or_else(|| err(lineno, "malformed register assignment".into()))?;
                if !is_ident(rhs.trim()) {
                    return Err(err(lineno, format!("unsupported D expression '{rhs}'")));
                }
                regs.push(RegAssign {
                    guard,
                    lhs: lhs.trim().to_string(),
                    rhs: rhs.trim().to_string(),
                });
            } else if let Some(rest) = line.strip_prefix("input ") {
                let port = rest.trim_end_matches(';').trim();
                if port == "clk" {
                    has_clk = true;
                } else {
                    inputs.push(port.to_string());
                }
            } else if let Some(rest) = line.strip_prefix("output ") {
                outputs.push(rest.trim_end_matches(';').trim().to_string());
            } else if line.starts_with("wire ") || line.starts_with("reg ") {
                // declarations carry no semantics for the interpreter
            } else if let Some(rest) = line.strip_prefix("assign ") {
                let body = rest.trim_end_matches(';');
                let (lhs, rhs) = body
                    .split_once('=')
                    .ok_or_else(|| err(lineno, "malformed assign".into()))?;
                let expr = parse_expr(rhs).map_err(|m| err(lineno, m))?;
                assigns.push((lhs.trim().to_string(), expr));
            } else if !name.is_empty() && (is_ident(line.trim_end_matches(','))) {
                // port list continuation lines inside module (...)
                continue;
            } else {
                return Err(err(lineno, format!("unsupported construct '{line}'")));
            }
        }
        if name.is_empty() {
            return Err(err(0, "no module found".into()));
        }
        Ok(Self {
            name,
            inputs,
            outputs,
            assigns,
            initials,
            regs,
            has_clk,
        })
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Data input names, in port order (excluding `clk` and enables —
    /// enable ports appear like normal inputs named `en_*`).
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Output names, in port order.
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// True if the module has a clock (any registers).
    pub fn is_sequential(&self) -> bool {
        self.has_clk
    }

    /// Creates an interpreter state with `initial` values applied.
    pub fn interpreter(&self) -> VerilogSim<'_> {
        let mut values: HashMap<String, bool> = HashMap::new();
        for (net, v) in &self.initials {
            values.insert(net.clone(), *v);
        }
        VerilogSim {
            module: self,
            values,
        }
    }
}

/// Interpreter state for one [`VerilogModule`].
#[derive(Debug)]
pub struct VerilogSim<'a> {
    module: &'a VerilogModule,
    values: HashMap<String, bool>,
}

impl VerilogSim<'_> {
    fn get(&self, net: &str) -> bool {
        *self.values.get(net).unwrap_or(&false)
    }

    /// Steps one clock cycle: applies `inputs` (by the module's data-input
    /// port order), settles assigns, clocks the registers, returns the
    /// outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of data inputs.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.module.inputs.len(),
            "input port count mismatch"
        );
        for (name, &v) in self.module.inputs.iter().zip(inputs) {
            self.values.insert(name.clone(), v);
        }
        // Combinational settle: assigns are emitted in topological order.
        for (lhs, expr) in &self.module.assigns {
            let v = match expr {
                Expr::Const(c) => *c,
                Expr::Net(a) => self.get(a),
                Expr::Not(a) => !self.get(a),
                Expr::And(a, b) => self.get(a) && self.get(b),
                Expr::Nand(a, b) => !(self.get(a) && self.get(b)),
                Expr::Or(a, b) => self.get(a) || self.get(b),
                Expr::Nor(a, b) => !(self.get(a) || self.get(b)),
                Expr::Xor(a, b) => self.get(a) ^ self.get(b),
                Expr::Xnor(a, b) => !(self.get(a) ^ self.get(b)),
                Expr::Mux { sel, then, els } => {
                    if self.get(sel) {
                        self.get(then)
                    } else {
                        self.get(els)
                    }
                }
            };
            self.values.insert(lhs.clone(), v);
        }
        // Non-blocking register updates: sample all RHS, then commit.
        let sampled: Vec<(String, bool, bool)> = self
            .module
            .regs
            .iter()
            .map(|r| {
                let guard_ok = r.guard.as_deref().is_none_or(|g| self.get(g));
                (r.lhs.clone(), self.get(&r.rhs), guard_ok)
            })
            .collect();
        for (lhs, v, guard_ok) in sampled {
            if guard_ok {
                self.values.insert(lhs, v);
            }
        }
        // The native simulator reads outputs *after* the clock edge:
        // an output aliased straight onto a register shows the new value,
        // while combinational nets keep their pre-edge values. Re-run the
        // output alias assigns (always `assign y = n;`) post-commit to
        // match.
        let out_aliases: Vec<(String, bool)> = self
            .module
            .assigns
            .iter()
            .filter(|(lhs, _)| self.module.outputs.contains(lhs))
            .filter_map(|(lhs, expr)| match expr {
                Expr::Net(a) => Some((lhs.clone(), self.get(a))),
                _ => None,
            })
            .collect();
        for (lhs, v) in out_aliases {
            self.values.insert(lhs, v);
        }
        self.module.outputs.iter().map(|o| self.get(o)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Netlist, ROOT_DOMAIN};
    use crate::sim::Simulator;
    use crate::verilog::{to_verilog, to_verilog_with_presets};
    use crate::CellKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Co-simulates a netlist natively and through its Verilog export.
    fn cosim(nl: &Netlist, presets: &[(crate::cell::NetId, bool)], stimulus: &[u64]) {
        let src = to_verilog_with_presets(nl, presets);
        let module =
            VerilogModule::parse(&src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
        let mut vs = module.interpreter();
        let mut ns = Simulator::new(nl).unwrap();
        for &(q, v) in presets {
            ns.preset_dff(q, v).unwrap();
        }
        let width = nl.inputs().len();
        // Verilog port order: en_* enables (always-on here) come before
        // data inputs in the interpreter's input list only if declared
        // so; our emitter declares enables first.
        let enables = module
            .inputs
            .iter()
            .filter(|i| i.starts_with("en_"))
            .count();
        let mut nin = vec![false; width];
        let mut nout = vec![false; nl.outputs().len()];
        for &word in stimulus {
            let mut vin: Vec<bool> = vec![true; enables];
            vin.extend((0..width).map(|i| (word >> i) & 1 == 1));
            let vout = vs.step(&vin);
            for (i, slot) in nin.iter_mut().enumerate() {
                *slot = (word >> i) & 1 == 1;
            }
            ns.step_into(&nin, &mut nout);
            assert_eq!(vout, nout, "divergence at stimulus {word:#x}");
        }
    }

    #[test]
    fn combinational_roundtrip() {
        let mut nl = Netlist::new("comb");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.gate2(CellKind::Xor2, a, b);
        let y = nl.gate2(CellKind::Nand2, x, a);
        let z = nl.mux2(x, y, b);
        nl.output("y", y);
        nl.output("z", z);
        cosim(&nl, &[], &(0..4).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_roundtrip_with_presets() {
        let mut nl = Netlist::new("seq");
        let a = nl.input("a");
        let q0 = nl.rom_bit(ROOT_DOMAIN);
        let q1 = nl.dff(a, ROOT_DOMAIN);
        let y = nl.gate2(CellKind::And2, q0, q1);
        nl.output("y", y);
        let presets = vec![(q0, true)];
        cosim(&nl, &presets, &[1, 0, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn gated_domain_roundtrip() {
        // Gated domains become enable-guarded always blocks; driving the
        // enable high in both simulators must agree (the native sim's
        // domain stays enabled by default).
        let mut nl = Netlist::new("gated");
        let dom = nl.add_domain("free0");
        let a = nl.input("a");
        let q = nl.dff(a, dom);
        nl.output("q", q);
        cosim(&nl, &[], &[1, 1, 0, 1, 0]);
    }

    #[test]
    fn random_netlists_roundtrip() {
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..10 {
            let mut nl = Netlist::new("rand");
            let inputs = nl.input_bus("x", 4);
            let mut nets = inputs.clone();
            nets.push(nl.const0());
            nets.push(nl.const1());
            for _ in 0..25 {
                let pick = |rng: &mut StdRng, nets: &Vec<_>| nets[rng.random_range(0..nets.len())];
                let a = pick(&mut rng, &nets);
                let b = pick(&mut rng, &nets);
                let id = match rng.random_range(0..8) {
                    0 => nl.gate1(CellKind::Inv, a),
                    1 => nl.gate1(CellKind::Buf, a),
                    2 => nl.gate2(CellKind::And2, a, b),
                    3 => nl.gate2(CellKind::Nor2, a, b),
                    4 => nl.gate2(CellKind::Xnor2, a, b),
                    5 => nl.dff(a, ROOT_DOMAIN),
                    6 => {
                        let s = pick(&mut rng, &nets);
                        nl.mux2(a, b, s)
                    }
                    _ => nl.gate2(CellKind::Or2, a, b),
                };
                nets.push(id);
            }
            for (i, &n) in nets.iter().rev().take(2).enumerate() {
                nl.output(format!("y[{i}]"), n);
            }
            let stim: Vec<u64> = (0..40).map(|_| rng.random_range(0..16)).collect();
            cosim(&nl, &[], &stim);
            let _ = trial;
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(VerilogModule::parse("not verilog at all").is_err());
        let bad = "module m (\n  a\n);\n  input a;\n  assign b = a + a;\nendmodule\n";
        assert!(VerilogModule::parse(bad).is_err());
    }

    #[test]
    fn module_metadata_is_extracted() {
        let mut nl = Netlist::new("meta");
        let a = nl.input("a");
        let q = nl.dff(a, ROOT_DOMAIN);
        nl.output("q", q);
        let m = VerilogModule::parse(&to_verilog(&nl)).unwrap();
        assert_eq!(m.name(), "meta");
        assert_eq!(m.inputs(), &["a".to_string()]);
        assert_eq!(m.outputs(), &["q".to_string()]);
        assert!(m.is_sequential());
    }
}
