//! Structural Verilog export.
//!
//! Emits a synthesisable module equivalent to the netlist: `assign`
//! statements for combinational cells and one clocked `always` block per
//! clock domain, with gated domains guarded by an enable input. This is
//! the artefact the paper would hand to Synopsys DC.

use crate::cell::CellKind;
use crate::netlist::Netlist;
use std::fmt::Write as _;

/// Precomputed net names: ports keep their declared names; internal nets
/// are `n<idx>`.
struct Names(std::collections::HashMap<usize, String>);

impl Names {
    fn new(netlist: &Netlist) -> Self {
        Self(
            netlist
                .inputs()
                .iter()
                .map(|(name, id)| (id.index(), sanitize(name)))
                .collect(),
        )
    }

    fn get(&self, idx: usize) -> String {
        self.0
            .get(&idx)
            .cloned()
            .unwrap_or_else(|| format!("n{idx}"))
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders the netlist as a structural Verilog module.
///
/// Ports: declared inputs/outputs, a clock `clk`, and one `en_<domain>`
/// enable input per gated domain. Registers start at `0`; for netlists
/// whose behaviour depends on stored contents (DFF-RAM LUTs) use
/// [`to_verilog_with_presets`].
pub fn to_verilog(netlist: &Netlist) -> String {
    to_verilog_with_presets(netlist, &[])
}

/// Like [`to_verilog`], additionally emitting an `initial` block that
/// loads the given register values — the ROM contents of DFF-RAM tables,
/// without which the exported module would not compute its function.
///
/// # Panics
///
/// Panics if a preset net is not a DFF.
pub fn to_verilog_with_presets(
    netlist: &Netlist,
    presets: &[(crate::cell::NetId, bool)],
) -> String {
    let mut v = String::new();
    let names = Names::new(netlist);
    let has_dffs = netlist.total_dffs() > 0;

    // Port list.
    let mut ports: Vec<String> = Vec::new();
    if has_dffs {
        ports.push("clk".into());
    }
    for d in 1..netlist.domains().len() {
        ports.push(format!("en_{}", sanitize(&netlist.domains()[d])));
    }
    for (name, _) in netlist.inputs() {
        ports.push(sanitize(name));
    }
    for (name, _) in netlist.outputs() {
        ports.push(sanitize(name));
    }
    let _ = writeln!(v, "module {} (", sanitize(netlist.name()));
    let _ = writeln!(v, "  {}", ports.join(",\n  "));
    let _ = writeln!(v, ");");

    if has_dffs {
        let _ = writeln!(v, "  input clk;");
    }
    for d in 1..netlist.domains().len() {
        let _ = writeln!(v, "  input en_{};", sanitize(&netlist.domains()[d]));
    }
    for (name, _) in netlist.inputs() {
        let _ = writeln!(v, "  input {};", sanitize(name));
    }
    for (name, _) in netlist.outputs() {
        let _ = writeln!(v, "  output {};", sanitize(name));
    }

    // Wire/reg declarations for internal nets.
    for (i, cell) in netlist.cells().iter().enumerate() {
        match cell.kind {
            CellKind::Input => {}
            CellKind::Dff => {
                let _ = writeln!(v, "  reg n{i};");
            }
            _ => {
                let _ = writeln!(v, "  wire n{i};");
            }
        }
    }

    // Combinational assigns.
    for (i, cell) in netlist.cells().iter().enumerate() {
        let ins: Vec<String> = cell
            .inputs()
            .iter()
            .map(|inp| names.get(inp.index()))
            .collect();
        let rhs = match cell.kind {
            CellKind::Input | CellKind::Dff => continue,
            CellKind::Const0 => "1'b0".to_string(),
            CellKind::Const1 => "1'b1".to_string(),
            CellKind::Inv => format!("~{}", ins[0]),
            CellKind::Buf => ins[0].clone(),
            CellKind::And2 => format!("{} & {}", ins[0], ins[1]),
            CellKind::Or2 => format!("{} | {}", ins[0], ins[1]),
            CellKind::Nand2 => format!("~({} & {})", ins[0], ins[1]),
            CellKind::Nor2 => format!("~({} | {})", ins[0], ins[1]),
            CellKind::Xor2 => format!("{} ^ {}", ins[0], ins[1]),
            CellKind::Xnor2 => format!("~({} ^ {})", ins[0], ins[1]),
            CellKind::Mux2 => format!("{} ? {} : {}", ins[2], ins[1], ins[0]),
        };
        let _ = writeln!(v, "  assign n{i} = {rhs};");
    }

    // Initial register contents (ROM presets).
    if !presets.is_empty() {
        let _ = writeln!(v, "  initial begin");
        for &(net, value) in presets {
            assert_eq!(
                netlist.cells()[net.index()].kind,
                CellKind::Dff,
                "preset on a non-DFF net"
            );
            let _ = writeln!(v, "    n{} = 1'b{};", net.index(), u8::from(value));
        }
        let _ = writeln!(v, "  end");
    }

    // One always block per domain.
    for d in 0..netlist.domains().len() {
        let dffs: Vec<(usize, usize)> = netlist
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == CellKind::Dff && c.domain() == d)
            .map(|(i, c)| (i, c.inputs()[0].index()))
            .collect();
        if dffs.is_empty() {
            continue;
        }
        let _ = writeln!(v, "  always @(posedge clk) begin");
        let guard = if d == 0 {
            String::new()
        } else {
            format!("if (en_{}) ", sanitize(&netlist.domains()[d]))
        };
        for (q, dpin) in dffs {
            let _ = writeln!(v, "    {guard}n{q} <= {};", names.get(dpin));
        }
        let _ = writeln!(v, "  end");
    }

    // Output assigns.
    for (name, net) in netlist.outputs() {
        let _ = writeln!(
            v,
            "  assign {} = {};",
            sanitize(name),
            names.get(net.index())
        );
    }
    let _ = writeln!(v, "endmodule");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::ROOT_DOMAIN;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("tiny");
        let a = nl.input("a");
        let b = nl.input("b[0]");
        let x = nl.gate2(CellKind::Xor2, a, b);
        let q = nl.dff(x, ROOT_DOMAIN);
        nl.output("y", q);
        nl
    }

    #[test]
    fn module_structure_is_emitted() {
        let v = to_verilog(&tiny());
        assert!(v.starts_with("module tiny ("));
        assert!(v.contains("input clk;"));
        assert!(v.contains("input a;"));
        assert!(v.contains("input b_0_;")); // sanitised
        assert!(v.contains("output y;"));
        assert!(v.contains("^")); // the xor
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn gated_domain_gets_enable_port_and_guard() {
        let mut nl = Netlist::new("g");
        let dom = nl.add_domain("free0");
        let q = nl.rom_bit(dom);
        nl.output("y", q);
        let v = to_verilog(&nl);
        assert!(v.contains("input en_free0;"));
        assert!(v.contains("if (en_free0)"));
    }

    #[test]
    fn combinational_only_module_has_no_clock() {
        let mut nl = Netlist::new("comb");
        let a = nl.input("a");
        let y = nl.inv(a);
        nl.output("y", y);
        let v = to_verilog(&nl);
        assert!(!v.contains("clk"));
        assert!(!v.contains("always"));
    }

    #[test]
    fn presets_emit_initial_block() {
        let mut nl = Netlist::new("rom");
        let q0 = nl.rom_bit(ROOT_DOMAIN);
        let q1 = nl.rom_bit(ROOT_DOMAIN);
        nl.output("a", q0);
        nl.output("b", q1);
        let v = to_verilog_with_presets(&nl, &[(q0, true), (q1, false)]);
        assert!(v.contains("initial begin"));
        assert!(v.contains(&format!("n{} = 1'b1;", q0.index())));
        assert!(v.contains(&format!("n{} = 1'b0;", q1.index())));
        // Plain export has no initial block.
        assert!(!to_verilog(&nl).contains("initial"));
    }

    #[test]
    #[should_panic(expected = "preset on a non-DFF")]
    fn presets_reject_combinational_nets() {
        let mut nl = Netlist::new("bad");
        let a = nl.input("a");
        let y = nl.inv(a);
        nl.output("y", y);
        let _ = to_verilog_with_presets(&nl, &[(y, true)]);
    }

    #[test]
    fn every_internal_net_is_declared_before_use() {
        let v = to_verilog(&tiny());
        // Each assign target has a matching wire/reg declaration.
        for line in v.lines() {
            if let Some(rest) = line.trim().strip_prefix("assign n") {
                let idx: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                assert!(
                    v.contains(&format!("wire n{idx};")) || v.contains(&format!("reg n{idx};")),
                    "n{idx} not declared"
                );
            }
        }
    }
}
