//! Simulation-based equivalence checking between two netlists (used to
//! validate the optimisation pass, and generally handy as a miniature
//! "formal" step of the flow).

use crate::netlist::{Netlist, NetlistError};
use crate::sim::Simulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Checks cycle-by-cycle I/O equivalence over **all** input words (both
/// netlists start from the all-zero state and step once per word, in
/// order). Intended for interfaces up to ~20 input bits.
///
/// # Errors
///
/// Returns an error if either netlist has a combinational cycle.
///
/// # Panics
///
/// Panics if the interfaces differ in width or the input space exceeds
/// `2^20`.
///
/// # Examples
///
/// ```
/// use dalut_netlist::{equivalent_exhaustive, CellKind, Netlist};
///
/// // De Morgan: ~(a & b) == ~a | ~b.
/// let mut lhs = Netlist::new("nand");
/// let (a, b) = (lhs.input("a"), lhs.input("b"));
/// let y = lhs.gate2(CellKind::Nand2, a, b);
/// lhs.output("y", y);
///
/// let mut rhs = Netlist::new("demorgan");
/// let (a, b) = (rhs.input("a"), rhs.input("b"));
/// let (na, nb) = (rhs.inv(a), rhs.inv(b));
/// let y = rhs.gate2(CellKind::Or2, na, nb);
/// rhs.output("y", y);
///
/// assert!(equivalent_exhaustive(&lhs, &rhs).unwrap());
/// ```
pub fn equivalent_exhaustive(a: &Netlist, b: &Netlist) -> Result<bool, NetlistError> {
    check_interfaces(a, b);
    let bits = a.inputs().len();
    assert!(bits <= 20, "exhaustive check limited to 20 inputs");
    let words: Vec<u64> = (0..1u64 << bits).collect();
    equivalent_on(a, b, &words)
}

/// Checks cycle-by-cycle I/O equivalence on `count` random input words
/// drawn from `seed` (for wide interfaces).
///
/// # Errors
///
/// Returns an error if either netlist has a combinational cycle.
///
/// # Panics
///
/// Panics if the interfaces differ in width.
pub fn equivalent_random(
    a: &Netlist,
    b: &Netlist,
    count: usize,
    seed: u64,
) -> Result<bool, NetlistError> {
    check_interfaces(a, b);
    let bits = a.inputs().len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let words: Vec<u64> = (0..count).map(|_| rng.random::<u64>() & mask).collect();
    equivalent_on(a, b, &words)
}

/// Core comparison over a given stimulus sequence. Buffers are hoisted
/// out of the loop (`step_into`), so the whole check is allocation-free
/// per word.
fn equivalent_on(a: &Netlist, b: &Netlist, words: &[u64]) -> Result<bool, NetlistError> {
    let mut sa = Simulator::new(a)?;
    let mut sb = Simulator::new(b)?;
    let mut ins = vec![false; a.inputs().len()];
    let mut outs_a = vec![false; a.outputs().len()];
    let mut outs_b = vec![false; b.outputs().len()];
    for &w in words {
        for (i, slot) in ins.iter_mut().enumerate() {
            *slot = (w >> i) & 1 == 1;
        }
        sa.step_into(&ins, &mut outs_a);
        sb.step_into(&ins, &mut outs_b);
        if outs_a != outs_b {
            return Ok(false);
        }
    }
    Ok(true)
}

fn check_interfaces(a: &Netlist, b: &Netlist) {
    assert_eq!(
        a.inputs().len(),
        b.inputs().len(),
        "input interfaces differ"
    );
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "output interfaces differ"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn xor_net(swap: bool) -> Netlist {
        let mut nl = Netlist::new("x");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = if swap {
            nl.gate2(CellKind::Xor2, b, a)
        } else {
            nl.gate2(CellKind::Xor2, a, b)
        };
        nl.output("y", y);
        nl
    }

    #[test]
    fn commuted_xor_is_equivalent() {
        assert!(equivalent_exhaustive(&xor_net(false), &xor_net(true)).unwrap());
    }

    #[test]
    fn different_functions_are_detected() {
        let mut nl = Netlist::new("and");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.gate2(CellKind::And2, a, b);
        nl.output("y", y);
        assert!(!equivalent_exhaustive(&xor_net(false), &nl).unwrap());
    }

    #[test]
    fn random_check_agrees_with_exhaustive_on_small_nets() {
        assert!(equivalent_random(&xor_net(false), &xor_net(true), 50, 1).unwrap());
    }

    #[test]
    #[should_panic(expected = "interfaces differ")]
    fn interface_mismatch_panics() {
        let mut nl = Netlist::new("one");
        let a = nl.input("a");
        nl.output("y", a);
        let _ = equivalent_exhaustive(&xor_net(false), &nl);
    }
}
