//! Property-based tests for the Boolean-function substrate.

use dalut_boolfn::bits::{bit_positions, deposit_bits, extract_bits, ScatterTable};
use dalut_boolfn::builder::QuantizedFn;
use dalut_boolfn::{metrics, InputDistribution, Partition, TruthTable, TwoDimTable};
use proptest::prelude::*;

fn arb_partition() -> impl Strategy<Value = Partition> {
    (2usize..=8).prop_flat_map(|n| {
        (Just(n), 1u32..((1 << n) - 1))
            .prop_filter_map("proper subset", |(n, mask)| Partition::new(n, mask).ok())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// PEXT/PDEP are mutually inverse on their masked domains.
    #[test]
    fn extract_deposit_inverse(value: u32, mask: u32) {
        let packed = extract_bits(value, mask);
        prop_assert_eq!(deposit_bits(packed, mask), value & mask);
        prop_assert_eq!(extract_bits(deposit_bits(packed, mask), mask), packed);
    }

    /// The number of extracted bits equals the mask's popcount.
    #[test]
    fn extract_respects_popcount(value: u32, mask: u32) {
        let packed = extract_bits(value, mask);
        let width = mask.count_ones();
        if width < 32 {
            prop_assert!(packed < (1u32 << width));
        }
        prop_assert_eq!(bit_positions(mask).len(), width as usize);
    }

    /// Every partition's row/col projections are a bijection onto the
    /// full input space.
    #[test]
    fn partition_projections_are_bijective(part in arb_partition()) {
        let n = part.n();
        let mut seen = vec![false; 1 << n];
        let st = part.scatter_table();
        for r in 0..part.rows() {
            for c in 0..part.cols() {
                let x = st.flat_index(r, c);
                prop_assert!(!seen[x]);
                seen[x] = true;
                prop_assert_eq!(part.row_of(x as u32) as usize, r);
                prop_assert_eq!(part.col_of(x as u32) as usize, c);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Neighbour partitions always differ by exactly one swapped pair and
    /// keep the bound size.
    #[test]
    fn neighbors_preserve_bound_size(part in arb_partition()) {
        for nb in part.neighbors() {
            prop_assert_eq!(nb.bound_size(), part.bound_size());
            prop_assert_eq!((nb.bound_mask() ^ part.bound_mask()).count_ones(), 2);
        }
        // Neighbour count = |A| * |B|.
        prop_assert_eq!(part.neighbors().len(), part.free_size() * part.bound_size());
    }

    /// MED of a table against itself shifted by a constant equals that
    /// constant (when no clamping occurs).
    #[test]
    fn med_of_constant_shift(shift in 1u32..8) {
        let g = TruthTable::from_fn(6, 8, |x| x % 200).unwrap();
        let h = TruthTable::from_fn(6, 8, |x| x % 200 + shift).unwrap();
        let d = InputDistribution::uniform(6).unwrap();
        let med = metrics::med(&g, &h, &d).unwrap();
        prop_assert!((med - f64::from(shift)).abs() < 1e-9);
    }

    /// A 2-D view contains every truth-table entry exactly once.
    #[test]
    fn two_dim_view_is_complete(part in arb_partition(), seed: u64) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = TruthTable::from_fn(part.n(), 1, |_| u32::from(rng.random::<bool>())).unwrap();
        let view = TwoDimTable::new(&f, part).unwrap();
        let mut ones_in_view = 0usize;
        for r in 0..part.rows() {
            for c in 0..part.cols() {
                ones_in_view += usize::from(view.cell(r, c));
            }
        }
        let ones_in_table = f.values().iter().filter(|&&v| v == 1).count();
        prop_assert_eq!(ones_in_view, ones_in_table);
    }

    /// Quantisation round-trips output codes exactly on the code grid.
    #[test]
    fn output_code_value_roundtrip(
        bits in 2usize..10,
        lo in -10.0f64..0.0,
        span in 0.1f64..100.0,
    ) {
        let q = QuantizedFn::new(4, bits, 0.0, 1.0, lo, lo + span);
        for code in 0..(1u32 << bits) {
            prop_assert_eq!(q.output_code(q.output_value(code)), code);
        }
    }

    /// Explicit distributions always sum to one after normalisation.
    #[test]
    fn distributions_are_normalised(
        weights in proptest::collection::vec(0.0f64..10.0, 8),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = InputDistribution::from_weights(weights).unwrap();
        let total: f64 = (0..8u32).map(|x| d.prob(x)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Conditioning then recombining reproduces the joint distribution.
    #[test]
    fn conditioning_is_consistent(
        weights in proptest::collection::vec(0.01f64..10.0, 16),
        s in 0usize..4,
    ) {
        let d = InputDistribution::from_weights(weights).unwrap();
        let (p0, c0) = d.condition_on_bit(s, false);
        let (p1, c1) = d.condition_on_bit(s, true);
        prop_assert!((p0 + p1 - 1.0).abs() < 1e-9);
        for x in 0..16u32 {
            let rx = {
                let low = x & ((1 << s) - 1);
                low | ((x >> 1) & !((1u32 << s) - 1))
            };
            let (pe, c) = if (x >> s) & 1 == 1 { (p1, &c1) } else { (p0, &c0) };
            prop_assert!((pe * c.prob(rx) - d.prob(x)).abs() < 1e-9);
        }
    }
}

/// ScatterTable agrees with the bit primitives on random masks.
#[test]
fn scatter_table_matches_primitives() {
    for (free, bound) in [(0b0011u32, 0b1100u32), (0b0101, 0b1010), (0b1001, 0b0110)] {
        let st = ScatterTable::new(free, bound);
        for r in 0..st.rows() {
            for c in 0..st.cols() {
                let x = st.flat_index(r, c) as u32;
                assert_eq!(extract_bits(x, free), r as u32);
                assert_eq!(extract_bits(x, bound), c as u32);
            }
        }
    }
}
