//! Input occurrence-probability distributions `p_X`.

use crate::error::BoolFnError;
use serde::{Deserialize, Serialize};

/// A probability distribution over the `2^n` inputs of a Boolean function.
///
/// The paper's experiments assume uniformly distributed inputs, but the MED
/// definition and the non-disjoint decomposition (which conditions on a
/// shared bit, Eq. (2)) are stated for arbitrary distributions, so both are
/// supported.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::InputDistribution;
///
/// let u = InputDistribution::uniform(3).unwrap();
/// assert!((u.prob(5) - 0.125).abs() < 1e-12);
///
/// let w = InputDistribution::from_weights(vec![1.0, 3.0]).unwrap();
/// assert!((w.prob(1) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputDistribution {
    inputs: u8,
    kind: DistKind,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum DistKind {
    Uniform,
    Explicit(Vec<f64>),
}

impl InputDistribution {
    /// The uniform distribution over `2^n` inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is outside `1..=16`.
    pub fn uniform(n: usize) -> Result<Self, BoolFnError> {
        if n == 0 || n > crate::truth_table::MAX_INPUTS {
            return Err(BoolFnError::InputWidth(n));
        }
        Ok(Self {
            inputs: n as u8,
            kind: DistKind::Uniform,
        })
    }

    /// A discretised Gaussian over the input codes: code `i` gets weight
    /// `exp(−(i − µ)² / 2σ²)` with `µ = mean_frac · (2^n − 1)` and
    /// `σ = sigma_frac · 2^n`. Models workloads concentrated around an
    /// operating point (e.g. sensor values near a setpoint), where the
    /// MED objective should spend its error budget.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is out of range or the parameters give a
    /// degenerate (zero-mass) distribution.
    ///
    /// # Examples
    ///
    /// ```
    /// use dalut_boolfn::InputDistribution;
    /// let d = InputDistribution::gaussian(8, 0.5, 0.1).unwrap();
    /// // Mass peaks at the centre code and decays towards the edges.
    /// assert!(d.prob(128) > d.prob(0));
    /// assert!(d.prob(128) > d.prob(255));
    /// ```
    pub fn gaussian(n: usize, mean_frac: f64, sigma_frac: f64) -> Result<Self, BoolFnError> {
        if n == 0 || n > crate::truth_table::MAX_INPUTS {
            return Err(BoolFnError::InputWidth(n));
        }
        if !(sigma_frac.is_finite() && sigma_frac > 0.0 && mean_frac.is_finite()) {
            return Err(BoolFnError::InvalidDistribution(format!(
                "gaussian(mean_frac={mean_frac}, sigma_frac={sigma_frac})"
            )));
        }
        let len = 1usize << n;
        let mu = mean_frac * (len as f64 - 1.0);
        let sigma = sigma_frac * len as f64;
        let weights: Vec<f64> = (0..len)
            .map(|i| {
                let z = (i as f64 - mu) / sigma;
                (-0.5 * z * z).exp()
            })
            .collect();
        Self::from_weights(weights)
    }

    /// Builds a distribution from non-negative weights (normalised to 1).
    /// The length must be a power of two in `2..=2^16`.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid length, a negative/non-finite weight, or
    /// zero total mass.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, BoolFnError> {
        let len = weights.len();
        if !len.is_power_of_two() || !(2..=(1 << crate::truth_table::MAX_INPUTS)).contains(&len) {
            return Err(BoolFnError::InvalidDistribution(format!(
                "length {len} is not a power of two in range"
            )));
        }
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(BoolFnError::InvalidDistribution(format!(
                    "weight {w} at index {i} is invalid"
                )));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(BoolFnError::InvalidDistribution("zero total mass".into()));
        }
        let probs = weights.into_iter().map(|w| w / total).collect();
        Ok(Self {
            inputs: len.trailing_zeros() as u8,
            kind: DistKind::Explicit(probs),
        })
    }

    /// Number of input bits `n`.
    #[inline]
    pub fn inputs(&self) -> usize {
        self.inputs as usize
    }

    /// Number of inputs, `2^n`.
    #[inline]
    pub fn len(&self) -> usize {
        1usize << self.inputs
    }

    /// Always `false`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of input `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= 2^n`.
    #[inline]
    pub fn prob(&self, x: u32) -> f64 {
        match &self.kind {
            DistKind::Uniform => {
                assert!((x as usize) < self.len(), "input out of range");
                1.0 / self.len() as f64
            }
            DistKind::Explicit(p) => p[x as usize],
        }
    }

    /// True if this is the lazily-represented uniform distribution.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        matches!(self.kind, DistKind::Uniform)
    }

    /// Marginal probability `P(bit s of X = value)`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n`.
    pub fn bit_marginal(&self, s: usize, value: bool) -> f64 {
        assert!(s < self.inputs(), "bit out of range");
        match &self.kind {
            DistKind::Uniform => 0.5,
            DistKind::Explicit(p) => p
                .iter()
                .enumerate()
                .filter(|(x, _)| ((x >> s) & 1 == 1) == value)
                .map(|(_, &pr)| pr)
                .sum(),
        }
    }

    /// Conditions on `bit s = value` and removes the bit, yielding the event
    /// probability and the conditional distribution over the remaining
    /// `n - 1` variables (bits above `s` shift down by one).
    ///
    /// This is the `P(X | x_s = j)` needed by the non-disjoint decomposition
    /// (paper Eq. (2)). If the event has zero probability, the conditional
    /// distribution is uniform (its choice cannot affect the MED).
    ///
    /// # Panics
    ///
    /// Panics if `s >= n` or `n == 1`.
    pub fn condition_on_bit(&self, s: usize, value: bool) -> (f64, InputDistribution) {
        assert!(s < self.inputs(), "bit out of range");
        assert!(
            self.inputs() > 1,
            "cannot condition a 1-variable distribution"
        );
        let reduced_n = self.inputs() - 1;
        match &self.kind {
            DistKind::Uniform => (
                0.5,
                InputDistribution {
                    inputs: reduced_n as u8,
                    kind: DistKind::Uniform,
                },
            ),
            DistKind::Explicit(p) => {
                let low_mask = (1u32 << s) - 1;
                let mut cond = vec![0.0f64; 1 << reduced_n];
                let mut event = 0.0f64;
                for (x, &pr) in p.iter().enumerate() {
                    let x = x as u32;
                    if ((x >> s) & 1 == 1) != value {
                        continue;
                    }
                    let reduced = (x & low_mask) | ((x >> 1) & !low_mask);
                    cond[reduced as usize] += pr;
                    event += pr;
                }
                if event <= 0.0 {
                    return (
                        0.0,
                        InputDistribution {
                            inputs: reduced_n as u8,
                            kind: DistKind::Uniform,
                        },
                    );
                }
                for c in &mut cond {
                    *c /= event;
                }
                (
                    event,
                    InputDistribution {
                        inputs: reduced_n as u8,
                        kind: DistKind::Explicit(cond),
                    },
                )
            }
        }
    }

    /// Expected per-cycle toggle density of input bit `s` under i.i.d.
    /// sampling from this distribution: with `p = P(bit s = 1)`, two
    /// consecutive independent reads differ on the bit with probability
    /// `2·p·(1 − p)`. Uniform inputs give the familiar 0.5.
    ///
    /// This is the activity factor analytic power models multiply against
    /// per-cell switching energy, exported here so resource estimators can
    /// predict dynamic power without simulating a netlist.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n`.
    pub fn toggle_density(&self, s: usize) -> f64 {
        let p = self.bit_marginal(s, true);
        2.0 * p * (1.0 - p)
    }

    /// [`toggle_density`](Self::toggle_density) for every input bit, LSB
    /// first (length `n`).
    pub fn toggle_densities(&self) -> Vec<f64> {
        (0..self.inputs()).map(|s| self.toggle_density(s)).collect()
    }

    /// Materialises the probability vector (length `2^n`).
    pub fn to_vec(&self) -> Vec<f64> {
        match &self.kind {
            DistKind::Uniform => vec![1.0 / self.len() as f64; self.len()],
            DistKind::Explicit(p) => p.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(d: &InputDistribution) -> f64 {
        (0..d.len() as u32).map(|x| d.prob(x)).sum()
    }

    #[test]
    fn uniform_sums_to_one() {
        let d = InputDistribution::uniform(6).unwrap();
        assert!((total(&d) - 1.0).abs() < 1e-12);
        assert!(d.is_uniform());
    }

    #[test]
    fn uniform_rejects_bad_width() {
        assert!(InputDistribution::uniform(0).is_err());
        assert!(InputDistribution::uniform(17).is_err());
    }

    #[test]
    fn from_weights_normalises() {
        let d = InputDistribution::from_weights(vec![1.0, 1.0, 2.0, 0.0]).unwrap();
        assert!((d.prob(2) - 0.5).abs() < 1e-12);
        assert!((d.prob(3)).abs() < 1e-12);
        assert!((total(&d) - 1.0).abs() < 1e-12);
        assert!(!d.is_uniform());
    }

    #[test]
    fn from_weights_validates() {
        assert!(InputDistribution::from_weights(vec![1.0; 3]).is_err());
        assert!(InputDistribution::from_weights(vec![1.0, -1.0]).is_err());
        assert!(InputDistribution::from_weights(vec![0.0, 0.0]).is_err());
        assert!(InputDistribution::from_weights(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn gaussian_is_normalised_and_peaked() {
        let d = InputDistribution::gaussian(6, 0.25, 0.1).unwrap();
        assert!((total(&d) - 1.0).abs() < 1e-12);
        // Peak near code 16 (0.25 of 63).
        let peak = (0..64u32).max_by(|&a, &b| d.prob(a).partial_cmp(&d.prob(b)).unwrap());
        let p = peak.unwrap();
        assert!((14..=18).contains(&p), "peak at {p}");
        assert!(InputDistribution::gaussian(6, 0.5, 0.0).is_err());
        assert!(InputDistribution::gaussian(0, 0.5, 0.1).is_err());
    }

    #[test]
    fn bit_marginal_uniform_is_half() {
        let d = InputDistribution::uniform(4).unwrap();
        for s in 0..4 {
            assert!((d.bit_marginal(s, true) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn bit_marginal_explicit() {
        // Mass only on x=0b10 and x=0b11.
        let d = InputDistribution::from_weights(vec![0.0, 0.0, 1.0, 3.0]).unwrap();
        assert!((d.bit_marginal(1, true) - 1.0).abs() < 1e-12);
        assert!((d.bit_marginal(0, true) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn condition_on_bit_uniform() {
        let d = InputDistribution::uniform(4).unwrap();
        let (p, cond) = d.condition_on_bit(2, true);
        assert!((p - 0.5).abs() < 1e-12);
        assert_eq!(cond.inputs(), 3);
        assert!(cond.is_uniform());
    }

    #[test]
    fn condition_on_bit_explicit_law_of_total_probability() {
        let weights = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let d = InputDistribution::from_weights(weights).unwrap();
        for s in 0..3 {
            let (p0, c0) = d.condition_on_bit(s, false);
            let (p1, c1) = d.condition_on_bit(s, true);
            assert!((p0 + p1 - 1.0).abs() < 1e-12);
            assert!((total(&c0) - 1.0).abs() < 1e-12);
            assert!((total(&c1) - 1.0).abs() < 1e-12);
            // Reconstruct joint probabilities.
            let low_mask = (1u32 << s) - 1;
            for x in 0..8u32 {
                let reduced = (x & low_mask) | ((x >> 1) & !low_mask);
                let (pe, c) = if (x >> s) & 1 == 1 {
                    (p1, &c1)
                } else {
                    (p0, &c0)
                };
                assert!((pe * c.prob(reduced) - d.prob(x)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn condition_on_zero_probability_event() {
        let d = InputDistribution::from_weights(vec![1.0, 0.0, 1.0, 0.0]).unwrap();
        let (p, cond) = d.condition_on_bit(0, true);
        assert_eq!(p, 0.0);
        assert!((total(&cond) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toggle_density_uniform_is_half() {
        let d = InputDistribution::uniform(5).unwrap();
        let t = d.toggle_densities();
        assert_eq!(t.len(), 5);
        for (s, &v) in t.iter().enumerate() {
            assert!((v - 0.5).abs() < 1e-12, "bit {s}");
        }
    }

    #[test]
    fn toggle_density_tracks_marginal() {
        // Bit 1 is always set (marginal 1.0): it never toggles. Bit 0 has
        // marginal 0.75: density 2 · 0.75 · 0.25 = 0.375.
        let d = InputDistribution::from_weights(vec![0.0, 0.0, 1.0, 3.0]).unwrap();
        assert!((d.toggle_density(1) - 0.0).abs() < 1e-12);
        assert!((d.toggle_density(0) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn to_vec_matches_prob() {
        let d = InputDistribution::from_weights(vec![2.0, 1.0, 1.0, 0.0]).unwrap();
        let v = d.to_vec();
        for x in 0..4u32 {
            assert_eq!(v[x as usize], d.prob(x));
        }
    }
}
