//! Error metrics between an accurate function and its approximation.

use crate::distribution::InputDistribution;
use crate::error::BoolFnError;
use crate::truth_table::TruthTable;

/// Mean error distance (the paper's quality metric):
///
/// `MED(G, Ĝ) = Σ_X p_X · |Bin(G(X)) − Bin(Ĝ(X))|`.
///
/// # Errors
///
/// Returns an error if the tables differ in shape or the distribution width
/// does not match.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::{TruthTable, InputDistribution, metrics};
///
/// let g = TruthTable::from_fn(2, 3, |x| x + 1).unwrap();
/// let h = TruthTable::from_fn(2, 3, |x| x).unwrap();
/// let d = InputDistribution::uniform(2).unwrap();
/// assert!((metrics::med(&g, &h, &d).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn med(
    g: &TruthTable,
    g_hat: &TruthTable,
    dist: &InputDistribution,
) -> Result<f64, BoolFnError> {
    check(g, g_hat, dist)?;
    let mut total = 0.0f64;
    for ((x, a), b) in g.iter().zip(g_hat.values()) {
        total += dist.prob(x) * f64::from(a.abs_diff(*b));
    }
    Ok(total)
}

/// Worst-case (maximum) error distance over inputs with non-zero
/// probability.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn max_error_distance(
    g: &TruthTable,
    g_hat: &TruthTable,
    dist: &InputDistribution,
) -> Result<u32, BoolFnError> {
    check(g, g_hat, dist)?;
    Ok(g.iter()
        .zip(g_hat.values())
        .filter(|((x, _), _)| dist.prob(*x) > 0.0)
        .map(|((_, a), b)| a.abs_diff(*b))
        .max()
        .unwrap_or(0))
}

/// Probability that the approximation differs from the accurate output at
/// all (error rate).
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn error_rate(
    g: &TruthTable,
    g_hat: &TruthTable,
    dist: &InputDistribution,
) -> Result<f64, BoolFnError> {
    check(g, g_hat, dist)?;
    Ok(g.iter()
        .zip(g_hat.values())
        .filter(|((_, a), b)| a != *b)
        .map(|((x, _), _)| dist.prob(x))
        .sum())
}

/// Root-mean-square error distance, `sqrt(Σ p_X (Bin(G)−Bin(Ĝ))²)`.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn rms_error(
    g: &TruthTable,
    g_hat: &TruthTable,
    dist: &InputDistribution,
) -> Result<f64, BoolFnError> {
    check(g, g_hat, dist)?;
    let mut total = 0.0f64;
    for ((x, a), b) in g.iter().zip(g_hat.values()) {
        let d = f64::from(a.abs_diff(*b));
        total += dist.prob(x) * d * d;
    }
    Ok(total.sqrt())
}

/// Probability that output bit `bit` of the approximation is wrong.
///
/// # Errors
///
/// Returns an error on shape mismatch or if `bit >= m`.
pub fn bit_flip_rate(
    g: &TruthTable,
    g_hat: &TruthTable,
    dist: &InputDistribution,
    bit: usize,
) -> Result<f64, BoolFnError> {
    check(g, g_hat, dist)?;
    if bit >= g.outputs() {
        return Err(BoolFnError::DimensionMismatch(format!(
            "output bit {bit} out of range for {}-output function",
            g.outputs()
        )));
    }
    Ok(g.iter()
        .zip(g_hat.values())
        .filter(|((_, a), b)| (a ^ *b) >> bit & 1 == 1)
        .map(|((x, _), _)| dist.prob(x))
        .sum())
}

/// A bundle of all supported metrics, computed in one pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorReport {
    /// Mean error distance.
    pub med: f64,
    /// Maximum error distance.
    pub max_ed: u32,
    /// Probability of any output mismatch.
    pub error_rate: f64,
    /// Root-mean-square error distance.
    pub rms: f64,
}

/// Computes [`ErrorReport`] for `(g, g_hat)` under `dist`.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn error_report(
    g: &TruthTable,
    g_hat: &TruthTable,
    dist: &InputDistribution,
) -> Result<ErrorReport, BoolFnError> {
    check(g, g_hat, dist)?;
    let mut med = 0.0f64;
    let mut sq = 0.0f64;
    let mut er = 0.0f64;
    let mut max_ed = 0u32;
    for ((x, a), b) in g.iter().zip(g_hat.values()) {
        let p = dist.prob(x);
        let d = a.abs_diff(*b);
        if d > 0 {
            er += p;
            if p > 0.0 && d > max_ed {
                max_ed = d;
            }
        }
        let df = f64::from(d);
        med += p * df;
        sq += p * df * df;
    }
    Ok(ErrorReport {
        med,
        max_ed,
        error_rate: er,
        rms: sq.sqrt(),
    })
}

fn check(g: &TruthTable, g_hat: &TruthTable, dist: &InputDistribution) -> Result<(), BoolFnError> {
    g.check_same_shape(g_hat)?;
    if dist.inputs() != g.inputs() {
        return Err(BoolFnError::DimensionMismatch(format!(
            "distribution over {} bits, function over {}",
            dist.inputs(),
            g.inputs()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TruthTable, TruthTable, InputDistribution) {
        let g = TruthTable::from_fn(3, 4, |x| x + 2).unwrap();
        let h = TruthTable::from_fn(3, 4, |x| if x == 3 { 9 } else { x + 2 }).unwrap();
        let d = InputDistribution::uniform(3).unwrap();
        (g, h, d)
    }

    #[test]
    fn med_of_identical_tables_is_zero() {
        let (g, _, d) = setup();
        assert_eq!(med(&g, &g, &d).unwrap(), 0.0);
    }

    #[test]
    fn med_weights_single_error_by_probability() {
        let (g, h, d) = setup();
        // One input (x=3) errs by |5-9| = 4 with p = 1/8.
        assert!((med(&g, &h, &d).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_error_distance_finds_worst_case() {
        let (g, h, d) = setup();
        assert_eq!(max_error_distance(&g, &h, &d).unwrap(), 4);
    }

    #[test]
    fn max_error_distance_ignores_zero_probability_inputs() {
        let (g, h, _) = setup();
        let mut w = vec![1.0; 8];
        w[3] = 0.0;
        let d = InputDistribution::from_weights(w).unwrap();
        assert_eq!(max_error_distance(&g, &h, &d).unwrap(), 0);
    }

    #[test]
    fn error_rate_counts_probability_mass() {
        let (g, h, d) = setup();
        assert!((error_rate(&g, &h, &d).unwrap() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn rms_matches_hand_computation() {
        let (g, h, d) = setup();
        // sqrt(16/8) = sqrt(2)
        assert!((rms_error(&g, &h, &d).unwrap() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bit_flip_rate_isolates_bits() {
        let g = TruthTable::from_fn(2, 2, |_| 0b00).unwrap();
        let h = TruthTable::from_fn(2, 2, |x| if x == 0 { 0b10 } else { 0b00 }).unwrap();
        let d = InputDistribution::uniform(2).unwrap();
        assert!((bit_flip_rate(&g, &h, &d, 1).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(bit_flip_rate(&g, &h, &d, 0).unwrap(), 0.0);
    }

    #[test]
    fn bit_flip_rate_rejects_out_of_range_bit() {
        let g = TruthTable::from_fn(2, 2, |_| 0b00).unwrap();
        let d = InputDistribution::uniform(2).unwrap();
        assert!(matches!(
            bit_flip_rate(&g, &g, &d, 2),
            Err(BoolFnError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn error_report_agrees_with_individual_metrics() {
        let (g, h, d) = setup();
        let r = error_report(&g, &h, &d).unwrap();
        assert_eq!(r.med, med(&g, &h, &d).unwrap());
        assert_eq!(r.max_ed, max_error_distance(&g, &h, &d).unwrap());
        assert_eq!(r.error_rate, error_rate(&g, &h, &d).unwrap());
        assert_eq!(r.rms, rms_error(&g, &h, &d).unwrap());
    }

    #[test]
    fn metrics_reject_mismatched_shapes() {
        let g = TruthTable::from_fn(3, 4, |x| x).unwrap();
        let h = TruthTable::from_fn(3, 5, |x| x).unwrap();
        let d = InputDistribution::uniform(3).unwrap();
        assert!(med(&g, &h, &d).is_err());
        let d2 = InputDistribution::uniform(4).unwrap();
        assert!(med(&g, &g, &d2).is_err());
    }

    #[test]
    fn med_is_symmetric() {
        let (g, h, d) = setup();
        assert_eq!(med(&g, &h, &d).unwrap(), med(&h, &g, &d).unwrap());
    }
}
