//! Variable partitions `ω = (A, B)` and their neighbourhood structure.

use crate::bits::{bit_positions, ScatterTable};
use crate::error::BoolFnError;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A partition of the `n` input variables into a *free set* `A` (indexing
/// the rows of the 2-D truth table / the free-table address) and a *bound
/// set* `B` (indexing the columns / the bound-table address).
///
/// Stored as the bit mask of the bound set; variable `i` is input bit `i`.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::Partition;
///
/// // 4 variables; bound set B = {x0, x1} (mask 0b0011).
/// let p = Partition::new(4, 0b0011).unwrap();
/// assert_eq!(p.bound_size(), 2);
/// assert_eq!(p.free_mask(), 0b1100);
/// assert_eq!(p.row_of(0b0110), 0b01); // free bits (x2,x3) = (1,0)
/// assert_eq!(p.col_of(0b0110), 0b10); // bound bits (x0,x1) = (0,1)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Partition {
    n: u8,
    bound_mask: u32,
}

impl Partition {
    /// Creates a partition of `n` variables with the given bound-set mask.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is out of range, the mask selects bits at or
    /// above `n`, or the bound set is empty or equal to the full set.
    pub fn new(n: usize, bound_mask: u32) -> Result<Self, BoolFnError> {
        if n == 0 || n > crate::truth_table::MAX_INPUTS {
            return Err(BoolFnError::InputWidth(n));
        }
        let full = full_mask(n);
        if bound_mask & !full != 0 {
            return Err(BoolFnError::DimensionMismatch(format!(
                "bound mask {bound_mask:#b} selects variables beyond n={n}"
            )));
        }
        if bound_mask == 0 || bound_mask == full {
            return Err(BoolFnError::DimensionMismatch(
                "bound set must be a proper non-empty subset".into(),
            ));
        }
        Ok(Self {
            n: n as u8,
            bound_mask,
        })
    }

    /// Draws a uniformly random partition with bound-set size `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` or `b >= n`.
    pub fn random(n: usize, b: usize, rng: &mut impl Rng) -> Self {
        assert!(b > 0 && b < n, "bound size must satisfy 0 < b < n");
        let mut vars: Vec<u32> = (0..n as u32).collect();
        vars.shuffle(rng);
        let mask = vars[..b].iter().fold(0u32, |m, &v| m | (1 << v));
        Self {
            n: n as u8,
            bound_mask: mask,
        }
    }

    /// Number of variables `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Bound-set mask (set bits are members of `B`).
    #[inline]
    pub fn bound_mask(&self) -> u32 {
        self.bound_mask
    }

    /// Free-set mask (set bits are members of `A`).
    #[inline]
    pub fn free_mask(&self) -> u32 {
        full_mask(self.n as usize) & !self.bound_mask
    }

    /// Size of the bound set `b = |B|`.
    #[inline]
    pub fn bound_size(&self) -> usize {
        self.bound_mask.count_ones() as usize
    }

    /// Size of the free set `|A| = n - b`.
    #[inline]
    pub fn free_size(&self) -> usize {
        self.n as usize - self.bound_size()
    }

    /// Number of rows of the 2-D truth table, `2^|A|`.
    #[inline]
    pub fn rows(&self) -> usize {
        1usize << self.free_size()
    }

    /// Number of columns of the 2-D truth table, `2^|B|`.
    #[inline]
    pub fn cols(&self) -> usize {
        1usize << self.bound_size()
    }

    /// Row index (free-set projection) of flat input `x`.
    #[inline]
    pub fn row_of(&self, x: u32) -> u32 {
        crate::bits::extract_bits(x, self.free_mask())
    }

    /// Column index (bound-set projection) of flat input `x`.
    #[inline]
    pub fn col_of(&self, x: u32) -> u32 {
        crate::bits::extract_bits(x, self.bound_mask)
    }

    /// Precomputes the `(row, col) -> x` scatter table for this partition.
    pub fn scatter_table(&self) -> ScatterTable {
        ScatterTable::new(self.free_mask(), self.bound_mask)
    }

    /// Variable indices of the bound set, ascending.
    pub fn bound_vars(&self) -> Vec<u32> {
        bit_positions(self.bound_mask)
    }

    /// Variable indices of the free set, ascending.
    pub fn free_vars(&self) -> Vec<u32> {
        bit_positions(self.free_mask())
    }

    /// All *neighbour* partitions: those obtained by swapping one free
    /// variable with one bound variable, so the free set differs in exactly
    /// one element while `b` stays fixed (the hardware bound-table width).
    pub fn neighbors(&self) -> Vec<Partition> {
        let mut out = Vec::with_capacity(self.free_size() * self.bound_size());
        for a in self.free_vars() {
            for b in self.bound_vars() {
                let mask = (self.bound_mask & !(1 << b)) | (1 << a);
                out.push(Partition {
                    n: self.n,
                    bound_mask: mask,
                });
            }
        }
        out
    }

    /// Samples `count` distinct random neighbours (`GenNeib` in the paper).
    /// Returns all neighbours if `count` exceeds the neighbourhood size.
    pub fn random_neighbors(&self, count: usize, rng: &mut impl Rng) -> Vec<Partition> {
        let mut all = self.neighbors();
        all.shuffle(rng);
        all.truncate(count);
        all
    }

    /// True if `other` is a neighbour of `self`.
    pub fn is_neighbor(&self, other: &Partition) -> bool {
        self.n == other.n
            && self.bound_size() == other.bound_size()
            && (self.bound_mask ^ other.bound_mask).count_ones() == 2
    }
}

#[inline]
fn full_mask(n: usize) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_validates_mask() {
        assert!(Partition::new(4, 0b0011).is_ok());
        assert!(Partition::new(4, 0).is_err());
        assert!(Partition::new(4, 0b1111).is_err());
        assert!(Partition::new(4, 0b10000).is_err());
        assert!(Partition::new(0, 0b1).is_err());
    }

    #[test]
    fn masks_partition_the_variables() {
        let p = Partition::new(6, 0b010110).unwrap();
        assert_eq!(p.bound_mask() | p.free_mask(), 0b111111);
        assert_eq!(p.bound_mask() & p.free_mask(), 0);
        assert_eq!(p.bound_size() + p.free_size(), 6);
    }

    #[test]
    fn row_col_projections_cover_input() {
        let p = Partition::new(5, 0b00101).unwrap();
        let mut seen = std::collections::HashSet::new();
        for x in 0..32u32 {
            seen.insert((p.row_of(x), p.col_of(x)));
        }
        assert_eq!(seen.len(), 32);
        assert_eq!(p.rows() * p.cols(), 32);
    }

    #[test]
    fn random_respects_bound_size() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let p = Partition::random(10, 4, &mut rng);
            assert_eq!(p.bound_size(), 4);
            assert_eq!(p.n(), 10);
        }
    }

    #[test]
    fn neighbors_swap_exactly_one_pair() {
        let p = Partition::new(6, 0b000111).unwrap();
        let ns = p.neighbors();
        assert_eq!(ns.len(), 3 * 3);
        for nb in &ns {
            assert!(p.is_neighbor(nb), "{nb:?} not a neighbour of {p:?}");
            assert_eq!(nb.bound_size(), p.bound_size());
            assert_ne!(*nb, p);
        }
        // All distinct.
        let set: std::collections::HashSet<_> = ns.iter().collect();
        assert_eq!(set.len(), ns.len());
    }

    #[test]
    fn random_neighbors_are_distinct_subset() {
        let p = Partition::new(8, 0b0011_1100).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let sample = p.random_neighbors(5, &mut rng);
        assert_eq!(sample.len(), 5);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 5);
        for nb in &sample {
            assert!(p.is_neighbor(nb));
        }
        // Requesting more than exist returns all of them.
        let all = p.random_neighbors(usize::MAX, &mut rng);
        assert_eq!(all.len(), p.neighbors().len());
    }

    #[test]
    fn is_neighbor_rejects_same_partition_and_far_partitions() {
        let p = Partition::new(6, 0b000111).unwrap();
        assert!(!p.is_neighbor(&p));
        let far = Partition::new(6, 0b111000).unwrap();
        assert!(!p.is_neighbor(&far));
    }

    #[test]
    fn scatter_table_matches_projections() {
        let p = Partition::new(6, 0b011010).unwrap();
        let st = p.scatter_table();
        for x in 0..64u32 {
            let r = p.row_of(x) as usize;
            let c = p.col_of(x) as usize;
            assert_eq!(st.flat_index(r, c), x as usize);
        }
    }
}
