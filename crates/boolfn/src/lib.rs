//! # dalut-boolfn
//!
//! Multi-output Boolean-function substrate for the DALUT project — a Rust
//! reproduction of *"High-accuracy Low-power Reconfigurable Architectures
//! for Decomposition-based Approximate Lookup Table"* (DATE 2023).
//!
//! This crate provides the data model everything else is built on:
//!
//! * [`TruthTable`] — dense `n`-input / `m`-output Boolean functions
//!   (`n ≤ 16`), with per-bit access and splicing of approximate component
//!   functions;
//! * [`Partition`] — variable partitions `ω = (A, B)` into free and bound
//!   sets, including the swap-neighbourhood used by simulated annealing;
//! * [`InputDistribution`] — input occurrence probabilities `p_X`,
//!   including the bit-conditioning needed by non-disjoint decomposition;
//! * [`view2d::TwoDimTable`] — Ashenhurst 2-D truth-table charts;
//! * [`metrics`] — mean error distance (MED) and related error metrics;
//! * [`builder`] — quantised real-function and random-table builders;
//! * [`bits`] — portable PEXT/PDEP-style bit projection utilities.
//!
//! ## Example
//!
//! ```
//! use dalut_boolfn::{builder::QuantizedFn, InputDistribution, Partition, TruthTable, metrics};
//!
//! // An 8-bit quantised cosine and a crude approximation of it.
//! let q = QuantizedFn::new(8, 8, 0.0, std::f64::consts::FRAC_PI_2, 0.0, 1.0);
//! let cos = q.build(f64::cos).unwrap();
//! let flat = TruthTable::from_fn(8, 8, |_| 128).unwrap();
//! let dist = InputDistribution::uniform(8).unwrap();
//! let med = metrics::med(&cos, &flat, &dist).unwrap();
//! assert!(med > 0.0);
//!
//! // Partition the 8 inputs into a 5-variable bound set and 3 free vars.
//! let part = Partition::new(8, 0b0001_1111).unwrap();
//! assert_eq!(part.rows(), 8);
//! assert_eq!(part.cols(), 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bits;
pub mod builder;
pub mod distribution;
pub mod error;
pub mod metrics;
pub mod partition;
pub mod truth_table;
pub mod view2d;

pub use distribution::InputDistribution;
pub use error::BoolFnError;
pub use partition::Partition;
pub use truth_table::TruthTable;
pub use view2d::{Grid, TwoDimTable};
