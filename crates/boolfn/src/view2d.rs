//! 2-D truth-table views (Ashenhurst decomposition charts).

use crate::error::BoolFnError;
use crate::partition::Partition;
use crate::truth_table::TruthTable;

/// A small dense row-major grid, used for 2-D truth tables and for the
/// per-cell cost matrices of the approximate decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T> Grid<T> {
    /// Creates a grid from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "grid data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "grid index out of range"
        );
        &self.data[row * self.cols + col]
    }

    /// Mutable element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "grid index out of range"
        );
        &mut self.data[row * self.cols + col]
    }

    /// Row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "grid row out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl Grid<f64> {
    /// A zero-filled grid.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::from_vec(rows, cols, vec![0.0; rows * cols])
    }
}

/// The 2-D truth table of a *single-output* function under a partition:
/// rows indexed by the free-set assignment, columns by the bound-set
/// assignment (paper Fig. 1(a)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoDimTable {
    grid: Grid<bool>,
    partition: Partition,
}

impl TwoDimTable {
    /// Builds the 2-D view of single-output `f` under `partition`.
    ///
    /// # Errors
    ///
    /// Returns an error if `f` is not single-output or widths disagree.
    pub fn new(f: &TruthTable, partition: Partition) -> Result<Self, BoolFnError> {
        if f.outputs() != 1 {
            return Err(BoolFnError::DimensionMismatch(format!(
                "2-D view requires a single-output function, got {} outputs",
                f.outputs()
            )));
        }
        if f.inputs() != partition.n() {
            return Err(BoolFnError::DimensionMismatch(format!(
                "function over {} inputs, partition over {}",
                f.inputs(),
                partition.n()
            )));
        }
        let st = partition.scatter_table();
        let mut data = Vec::with_capacity(st.rows() * st.cols());
        for r in 0..st.rows() {
            for c in 0..st.cols() {
                data.push(f.eval(st.flat_index(r, c) as u32) == 1);
            }
        }
        Ok(Self {
            grid: Grid::from_vec(st.rows(), st.cols(), data),
            partition,
        })
    }

    /// The underlying grid of cell values.
    #[inline]
    pub fn grid(&self) -> &Grid<bool> {
        &self.grid
    }

    /// The partition defining this view.
    #[inline]
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Cell value at `(row, col)`.
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> bool {
        *self.grid.get(row, col)
    }

    /// Row `row` as a pattern of bits.
    #[inline]
    pub fn row_pattern(&self, row: usize) -> &[bool] {
        self.grid.row(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_indexing_is_row_major() {
        let g = Grid::from_vec(2, 3, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(*g.get(0, 2), 2);
        assert_eq!(*g.get(1, 0), 3);
        assert_eq!(g.row(1), &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn grid_rejects_bad_length() {
        let _ = Grid::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn two_dim_table_matches_direct_eval() {
        // f(x) = parity of x, 4 inputs; any partition view must agree with
        // direct evaluation through the scatter mapping.
        let f = TruthTable::from_fn(4, 1, |x| u32::from(x.count_ones() % 2 == 1)).unwrap();
        let p = Partition::new(4, 0b0101).unwrap();
        let t = TwoDimTable::new(&f, p).unwrap();
        let st = p.scatter_table();
        for r in 0..t.grid().rows() {
            for c in 0..t.grid().cols() {
                let x = st.flat_index(r, c) as u32;
                assert_eq!(t.cell(r, c), f.eval(x) == 1);
            }
        }
    }

    #[test]
    fn paper_example_1_table_layout() {
        // Fig. 1(a): A = {x1, x2} (rows), B = {x3, x4} (cols).
        // Our variables are 0-based: A = {x0, x1}, B = {x2, x3}.
        // Row patterns: row00 = 0110, row01 = 1001, row10 = 1111, row11 = 0000.
        let rows: [[u32; 4]; 4] = [[0, 1, 1, 0], [1, 0, 0, 1], [1, 1, 1, 1], [0, 0, 0, 0]];
        let f = TruthTable::from_fn(4, 1, |x| {
            let a = (x & 0b0011) as usize;
            let b = ((x >> 2) & 0b11) as usize;
            rows[a][b]
        })
        .unwrap();
        let p = Partition::new(4, 0b1100).unwrap();
        let t = TwoDimTable::new(&f, p).unwrap();
        assert_eq!(t.row_pattern(0), &[false, true, true, false]);
        assert_eq!(t.row_pattern(1), &[true, false, false, true]);
        assert_eq!(t.row_pattern(2), &[true, true, true, true]);
        assert_eq!(t.row_pattern(3), &[false, false, false, false]);
    }

    #[test]
    fn two_dim_table_rejects_multi_output() {
        let f = TruthTable::from_fn(4, 2, |x| x % 4).unwrap();
        let p = Partition::new(4, 0b0011).unwrap();
        assert!(TwoDimTable::new(&f, p).is_err());
    }

    #[test]
    fn two_dim_table_rejects_width_mismatch() {
        let f = TruthTable::from_fn(5, 1, |_| 0).unwrap();
        let p = Partition::new(4, 0b0011).unwrap();
        assert!(TwoDimTable::new(&f, p).is_err());
    }
}
