//! Error type for the Boolean-function substrate.

use std::fmt;

/// Errors produced when constructing or combining Boolean-function objects.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BoolFnError {
    /// Input width outside the supported `1..=16` range.
    InputWidth(usize),
    /// Output width outside the supported `1..=31` range.
    OutputWidth(usize),
    /// A value table had the wrong length for the declared input width.
    ValueLength {
        /// Expected number of entries (`2^n`).
        expected: usize,
        /// Number of entries actually supplied.
        actual: usize,
    },
    /// An output value does not fit in the declared output width.
    ValueRange {
        /// Flat input index of the offending entry.
        index: usize,
        /// The offending value.
        value: u32,
        /// Declared output width in bits.
        output_bits: usize,
    },
    /// A probability table was invalid (negative entry or zero total mass).
    InvalidDistribution(String),
    /// Two objects that must share a dimension disagree.
    DimensionMismatch(String),
}

impl fmt::Display for BoolFnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InputWidth(n) => {
                write!(f, "input width {n} outside supported range 1..=16")
            }
            Self::OutputWidth(m) => {
                write!(f, "output width {m} outside supported range 1..=31")
            }
            Self::ValueLength { expected, actual } => {
                write!(f, "value table has {actual} entries, expected {expected}")
            }
            Self::ValueRange {
                index,
                value,
                output_bits,
            } => write!(
                f,
                "value {value:#x} at index {index} does not fit in {output_bits} output bits"
            ),
            Self::InvalidDistribution(msg) => {
                write!(f, "invalid input distribution: {msg}")
            }
            Self::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
        }
    }
}

impl std::error::Error for BoolFnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        let e = BoolFnError::ValueLength {
            expected: 16,
            actual: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("16") && msg.contains('4'));
        assert!(BoolFnError::InputWidth(40).to_string().contains("40"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(BoolFnError::OutputWidth(0));
    }
}
