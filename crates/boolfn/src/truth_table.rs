//! Dense truth-table representation of a multi-output Boolean function.

use crate::error::BoolFnError;
use serde::{Deserialize, Serialize};

/// Maximum supported number of input bits.
pub const MAX_INPUTS: usize = 16;
/// Maximum supported number of output bits.
pub const MAX_OUTPUTS: usize = 31;

/// A completely specified `n`-input, `m`-output Boolean function
/// `Y = G(X)`, stored as a dense table of `2^n` output words.
///
/// Output bit `k` (0-based) carries binary weight `2^k`; the paper's
/// 1-based "k-th output bit" with weight `2^(k-1)` corresponds to our bit
/// `k - 1`. The value `Bin(Y)` from the paper is exactly the stored `u32`
/// word.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::TruthTable;
///
/// // A 4-input, 5-output function: Y = X + 3.
/// let g = TruthTable::from_fn(4, 5, |x| x + 3).unwrap();
/// assert_eq!(g.eval(2), 5);
/// assert!(g.output_bit(0, 2)); // 5 = 0b101
/// assert!(!g.output_bit(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthTable {
    inputs: u8,
    outputs: u8,
    values: Vec<u32>,
}

impl TruthTable {
    /// Creates a truth table by evaluating `f` on every input.
    ///
    /// # Errors
    ///
    /// Returns an error if a width is out of range or `f` produces a value
    /// that does not fit in `outputs` bits.
    pub fn from_fn(
        inputs: usize,
        outputs: usize,
        mut f: impl FnMut(u32) -> u32,
    ) -> Result<Self, BoolFnError> {
        check_widths(inputs, outputs)?;
        let size = 1usize << inputs;
        let mut values = Vec::with_capacity(size);
        let mask = out_mask(outputs);
        for x in 0..size as u32 {
            let y = f(x);
            if y & !mask != 0 {
                return Err(BoolFnError::ValueRange {
                    index: x as usize,
                    value: y,
                    output_bits: outputs,
                });
            }
            values.push(y);
        }
        Ok(Self {
            inputs: inputs as u8,
            outputs: outputs as u8,
            values,
        })
    }

    /// Creates a truth table from an explicit value vector of length `2^n`.
    ///
    /// # Errors
    ///
    /// Returns an error on width/length mismatch or out-of-range values.
    pub fn from_values(
        inputs: usize,
        outputs: usize,
        values: Vec<u32>,
    ) -> Result<Self, BoolFnError> {
        check_widths(inputs, outputs)?;
        let expected = 1usize << inputs;
        if values.len() != expected {
            return Err(BoolFnError::ValueLength {
                expected,
                actual: values.len(),
            });
        }
        let mask = out_mask(outputs);
        for (i, &v) in values.iter().enumerate() {
            if v & !mask != 0 {
                return Err(BoolFnError::ValueRange {
                    index: i,
                    value: v,
                    output_bits: outputs,
                });
            }
        }
        Ok(Self {
            inputs: inputs as u8,
            outputs: outputs as u8,
            values,
        })
    }

    /// Creates a single-output truth table from a slice of bits.
    ///
    /// # Errors
    ///
    /// Returns an error if `bits.len() != 2^inputs`.
    pub fn from_bits(inputs: usize, bits: &[bool]) -> Result<Self, BoolFnError> {
        Self::from_values(inputs, 1, bits.iter().map(|&b| u32::from(b)).collect())
    }

    /// Number of input bits `n`.
    #[inline]
    pub fn inputs(&self) -> usize {
        self.inputs as usize
    }

    /// Number of output bits `m`.
    #[inline]
    pub fn outputs(&self) -> usize {
        self.outputs as usize
    }

    /// Number of table entries, `2^n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false`: a truth table has at least two entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates the function on input `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= 2^n`.
    #[inline]
    pub fn eval(&self, x: u32) -> u32 {
        self.values[x as usize]
    }

    /// The output word table, indexed by flat input.
    #[inline]
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Value of output bit `bit` (0-based, weight `2^bit`) on input `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= 2^n` or `bit >= m`.
    #[inline]
    pub fn output_bit(&self, bit: usize, x: u32) -> bool {
        assert!(bit < self.outputs as usize, "output bit out of range");
        (self.values[x as usize] >> bit) & 1 == 1
    }

    /// Extracts output bit `bit` as a single-output truth table.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= m`.
    pub fn component(&self, bit: usize) -> TruthTable {
        assert!(bit < self.outputs as usize, "output bit out of range");
        TruthTable {
            inputs: self.inputs,
            outputs: 1,
            values: self.values.iter().map(|&v| (v >> bit) & 1).collect(),
        }
    }

    /// Returns a copy with output bit `bit` replaced by `new_bit(x)`.
    ///
    /// This is how an approximate component function `ĝ_k` is spliced into
    /// the running approximation `Ĝ`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= m`.
    pub fn with_bit_replaced(&self, bit: usize, mut new_bit: impl FnMut(u32) -> bool) -> Self {
        assert!(bit < self.outputs as usize, "output bit out of range");
        let mask = 1u32 << bit;
        let values = self
            .values
            .iter()
            .enumerate()
            .map(|(x, &v)| {
                if new_bit(x as u32) {
                    v | mask
                } else {
                    v & !mask
                }
            })
            .collect();
        Self {
            inputs: self.inputs,
            outputs: self.outputs,
            values,
        }
    }

    /// Replaces output bit `bit` in place using a bit table of length `2^n`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= m` or `bits.len() != 2^n`.
    pub fn set_bit_column(&mut self, bit: usize, bits: &[bool]) {
        assert!(bit < self.outputs as usize, "output bit out of range");
        assert_eq!(bits.len(), self.values.len(), "bit column length mismatch");
        let mask = 1u32 << bit;
        for (v, &b) in self.values.iter_mut().zip(bits) {
            if b {
                *v |= mask;
            } else {
                *v &= !mask;
            }
        }
    }

    /// Iterator over `(x, G(x))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.values.iter().enumerate().map(|(x, &v)| (x as u32, v))
    }

    /// Counts inputs on which `self` and `other` differ (Hamming distance
    /// of the value tables as words).
    ///
    /// # Errors
    ///
    /// Returns an error if dimensions disagree.
    pub fn diff_count(&self, other: &TruthTable) -> Result<usize, BoolFnError> {
        self.check_same_shape(other)?;
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a != b)
            .count())
    }

    /// Verifies that `other` has the same input and output widths.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::DimensionMismatch`] when shapes differ.
    pub fn check_same_shape(&self, other: &TruthTable) -> Result<(), BoolFnError> {
        if self.inputs != other.inputs || self.outputs != other.outputs {
            return Err(BoolFnError::DimensionMismatch(format!(
                "({}-in,{}-out) vs ({}-in,{}-out)",
                self.inputs, self.outputs, other.inputs, other.outputs
            )));
        }
        Ok(())
    }
}

fn check_widths(inputs: usize, outputs: usize) -> Result<(), BoolFnError> {
    if inputs == 0 || inputs > MAX_INPUTS {
        return Err(BoolFnError::InputWidth(inputs));
    }
    if outputs == 0 || outputs > MAX_OUTPUTS {
        return Err(BoolFnError::OutputWidth(outputs));
    }
    Ok(())
}

#[inline]
fn out_mask(outputs: usize) -> u32 {
    if outputs >= 32 {
        u32::MAX
    } else {
        (1u32 << outputs) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_builds_identity() {
        let t = TruthTable::from_fn(4, 4, |x| x).unwrap();
        assert_eq!(t.inputs(), 4);
        assert_eq!(t.outputs(), 4);
        assert_eq!(t.len(), 16);
        for x in 0..16 {
            assert_eq!(t.eval(x), x);
        }
    }

    #[test]
    fn from_fn_rejects_out_of_range_values() {
        let err = TruthTable::from_fn(2, 2, |x| x + 2).unwrap_err();
        assert!(matches!(err, BoolFnError::ValueRange { .. }));
    }

    #[test]
    fn from_fn_rejects_bad_widths() {
        assert!(matches!(
            TruthTable::from_fn(0, 1, |_| 0),
            Err(BoolFnError::InputWidth(0))
        ));
        assert!(matches!(
            TruthTable::from_fn(17, 1, |_| 0),
            Err(BoolFnError::InputWidth(17))
        ));
        assert!(matches!(
            TruthTable::from_fn(4, 0, |_| 0),
            Err(BoolFnError::OutputWidth(0))
        ));
        assert!(matches!(
            TruthTable::from_fn(4, 32, |_| 0),
            Err(BoolFnError::OutputWidth(32))
        ));
    }

    #[test]
    fn from_values_checks_length() {
        let err = TruthTable::from_values(3, 1, vec![0; 7]).unwrap_err();
        assert_eq!(
            err,
            BoolFnError::ValueLength {
                expected: 8,
                actual: 7
            }
        );
    }

    #[test]
    fn output_bit_matches_eval() {
        let t = TruthTable::from_fn(5, 6, |x| (x * 2) % 64).unwrap();
        for x in 0..32 {
            let y = t.eval(x);
            for k in 0..6 {
                assert_eq!(t.output_bit(k, x), (y >> k) & 1 == 1);
            }
        }
    }

    #[test]
    fn component_extracts_single_bit() {
        let t = TruthTable::from_fn(3, 3, |x| x ^ 0b101).unwrap();
        let c = t.component(2);
        assert_eq!(c.outputs(), 1);
        for x in 0..8 {
            assert_eq!(c.eval(x) == 1, t.output_bit(2, x));
        }
    }

    #[test]
    fn with_bit_replaced_only_touches_target_bit() {
        let t = TruthTable::from_fn(3, 3, |x| x).unwrap();
        let r = t.with_bit_replaced(1, |_| true);
        for x in 0..8u32 {
            assert_eq!(r.eval(x), t.eval(x) | 0b010);
        }
    }

    #[test]
    fn set_bit_column_round_trips() {
        let mut t = TruthTable::from_fn(3, 2, |x| x % 4).unwrap();
        let orig = t.clone();
        let col: Vec<bool> = (0..8).map(|x| orig.output_bit(0, x)).collect();
        t.set_bit_column(0, &col);
        assert_eq!(t, orig);
    }

    #[test]
    fn diff_count_counts_word_mismatches() {
        let a = TruthTable::from_fn(3, 2, |x| x % 4).unwrap();
        let b = a.with_bit_replaced(0, |x| x % 2 == 0);
        // Bit 0 of x%4 is x%2==1; the replacement inverts it everywhere.
        assert_eq!(a.diff_count(&b).unwrap(), 8);
        assert_eq!(a.diff_count(&a).unwrap(), 0);
    }

    #[test]
    fn diff_count_rejects_shape_mismatch() {
        let a = TruthTable::from_fn(3, 2, |_| 0).unwrap();
        let b = TruthTable::from_fn(4, 2, |_| 0).unwrap();
        assert!(a.diff_count(&b).is_err());
    }

    #[test]
    fn from_bits_builds_single_output() {
        let bits = [true, false, false, true];
        let t = TruthTable::from_bits(2, &bits).unwrap();
        assert_eq!(t.outputs(), 1);
        assert_eq!(t.values(), &[1, 0, 0, 1]);
    }

    #[test]
    fn serde_round_trip_preserves_table() {
        let t = TruthTable::from_fn(4, 3, |x| x % 8).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: TruthTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
