//! Bit-manipulation primitives used throughout the crate.
//!
//! The decomposition algorithms constantly move between a "flat" input index
//! `x` (an `n`-bit integer) and its projection onto a variable subset (the
//! free or bound set of a partition). These projections are the classic
//! parallel bit *extract* / *deposit* operations, implemented here portably
//! so the crate has no dependency on BMI2 intrinsics.

/// Extracts the bits of `value` selected by `mask` and packs them
/// contiguously into the low bits of the result (software PEXT).
///
/// Bits are taken in ascending bit-position order: the lowest set bit of
/// `mask` selects the bit that lands at position 0 of the result.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::bits::extract_bits;
/// // mask selects bits 1 and 3; value has bit3=1, bit1=0 -> packed 0b10.
/// assert_eq!(extract_bits(0b1000, 0b1010), 0b10);
/// assert_eq!(extract_bits(0b1111, 0b1010), 0b11);
/// ```
#[inline]
pub fn extract_bits(value: u32, mask: u32) -> u32 {
    let mut result = 0u32;
    let mut out_pos = 0u32;
    let mut m = mask;
    while m != 0 {
        let bit = m & m.wrapping_neg();
        if value & bit != 0 {
            result |= 1 << out_pos;
        }
        out_pos += 1;
        m &= m - 1;
    }
    result
}

/// Deposits the low bits of `value` into the bit positions selected by
/// `mask` (software PDEP). Inverse of [`extract_bits`] on the masked bits.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::bits::{deposit_bits, extract_bits};
/// assert_eq!(deposit_bits(0b10, 0b1010), 0b1000);
/// let (v, m) = (0xBEEF, 0x0FF0);
/// assert_eq!(deposit_bits(extract_bits(v, m), m), v & m);
/// ```
#[inline]
pub fn deposit_bits(value: u32, mask: u32) -> u32 {
    let mut result = 0u32;
    let mut in_pos = 0u32;
    let mut m = mask;
    while m != 0 {
        let bit = m & m.wrapping_neg();
        if value & (1 << in_pos) != 0 {
            result |= bit;
        }
        in_pos += 1;
        m &= m - 1;
    }
    result
}

/// Returns the positions (ascending) of the set bits of `mask`.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::bits::bit_positions;
/// assert_eq!(bit_positions(0b1010), vec![1, 3]);
/// ```
pub fn bit_positions(mask: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        out.push(m.trailing_zeros());
        m &= m - 1;
    }
    out
}

/// A precomputed scatter table mapping `(row, col)` coordinates of a 2-D
/// truth table back to flat input indices.
///
/// For a partition with free mask `F` (rows) and bound mask `B` (columns),
/// the flat index of cell `(r, c)` is `deposit(r, F) | deposit(c, B)`.
/// Recomputing the deposit per cell costs a bit-loop; this table amortises
/// it into two linear passes so the 2-D remap used by `OptForPart` is a
/// pair of indexed lookups per cell.
#[derive(Debug, Clone)]
pub struct ScatterTable {
    row_part: Vec<u32>,
    col_part: Vec<u32>,
}

impl ScatterTable {
    /// Builds the scatter table for `rows = 2^popcount(free_mask)` and
    /// `cols = 2^popcount(bound_mask)`.
    ///
    /// # Panics
    ///
    /// Panics if the masks overlap.
    pub fn new(free_mask: u32, bound_mask: u32) -> Self {
        assert_eq!(
            free_mask & bound_mask,
            0,
            "free and bound masks must be disjoint"
        );
        let rows = 1usize << free_mask.count_ones();
        let cols = 1usize << bound_mask.count_ones();
        let row_part = (0..rows as u32)
            .map(|r| deposit_bits(r, free_mask))
            .collect();
        let col_part = (0..cols as u32)
            .map(|c| deposit_bits(c, bound_mask))
            .collect();
        Self { row_part, col_part }
    }

    /// Number of rows (free-set assignments).
    #[inline]
    pub fn rows(&self) -> usize {
        self.row_part.len()
    }

    /// Number of columns (bound-set assignments).
    #[inline]
    pub fn cols(&self) -> usize {
        self.col_part.len()
    }

    /// Flat input index of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn flat_index(&self, row: usize, col: usize) -> usize {
        (self.row_part[row] | self.col_part[col]) as usize
    }

    /// The flat-index contribution of a row (all column bits zero).
    #[inline]
    pub fn row_bits(&self, row: usize) -> u32 {
        self.row_part[row]
    }

    /// The flat-index contribution of a column (all row bits zero).
    #[inline]
    pub fn col_bits(&self, col: usize) -> u32 {
        self.col_part[col]
    }

    /// All row contributions as a slice (index `r` is [`row_bits`](Self::row_bits)` (r)`).
    ///
    /// Lets hot kernels iterate the gather table directly instead of
    /// calling the per-cell accessors in a 2-D loop.
    #[inline]
    pub fn row_parts(&self) -> &[u32] {
        &self.row_part
    }

    /// All column contributions as a slice (index `c` is [`col_bits`](Self::col_bits)` (c)`).
    #[inline]
    pub fn col_parts(&self) -> &[u32] {
        &self.col_part
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_empty_mask_is_zero() {
        assert_eq!(extract_bits(0xFFFF_FFFF, 0), 0);
    }

    #[test]
    fn extract_full_mask_is_identity() {
        for v in [0u32, 1, 0xABCD, 0xFFFF] {
            assert_eq!(extract_bits(v, 0xFFFF), v & 0xFFFF);
        }
    }

    #[test]
    fn deposit_then_extract_roundtrips() {
        let mask: u32 = 0b1011_0101;
        for v in 0..(1u32 << mask.count_ones()) {
            assert_eq!(extract_bits(deposit_bits(v, mask), mask), v);
        }
    }

    #[test]
    fn extract_then_deposit_recovers_masked_bits() {
        let mask = 0x0F0F;
        for v in [0u32, 0x1234, 0xFFFF, 0xDEAD] {
            assert_eq!(deposit_bits(extract_bits(v, mask), mask), v & mask);
        }
    }

    #[test]
    fn bit_positions_enumerates_ascending() {
        assert_eq!(bit_positions(0), Vec::<u32>::new());
        assert_eq!(bit_positions(0b1), vec![0]);
        assert_eq!(bit_positions(0b1000_0001), vec![0, 7]);
        assert_eq!(bit_positions(u32::MAX), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_table_covers_all_inputs_exactly_once() {
        let free = 0b0011u32;
        let bound = 0b1100u32;
        let table = ScatterTable::new(free, bound);
        let mut seen = [false; 16];
        for r in 0..table.rows() {
            for c in 0..table.cols() {
                let x = table.flat_index(r, c);
                assert!(!seen[x], "index {x} hit twice");
                seen[x] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scatter_table_agrees_with_extract() {
        let free = 0b1010_1010u32;
        let bound = 0b0101_0101u32;
        let table = ScatterTable::new(free, bound);
        for x in 0..256usize {
            let r = extract_bits(x as u32, free) as usize;
            let c = extract_bits(x as u32, bound) as usize;
            assert_eq!(table.flat_index(r, c), x);
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn scatter_table_rejects_overlapping_masks() {
        let _ = ScatterTable::new(0b11, 0b10);
    }
}
