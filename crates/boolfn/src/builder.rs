//! Builders for truth tables from real-valued functions and random sources.

use crate::error::BoolFnError;
use crate::truth_table::TruthTable;
use rand::Rng;

/// Quantisation recipe for turning a real-valued function `f : [lo, hi] →
/// [out_lo, out_hi]` into an `n`-bit-in / `m`-bit-out truth table, the way
/// the paper prepares its six continuous benchmarks (16-bit in / 16-bit
/// out).
///
/// Input code `i` maps to `x = lo + (hi − lo) · i / (2^n − 1)`; the output
/// is affinely scaled to `[0, 2^m − 1]` and rounded to nearest (clamped).
///
/// # Examples
///
/// ```
/// use dalut_boolfn::builder::QuantizedFn;
///
/// let q = QuantizedFn::new(4, 4, 0.0, 1.0, 0.0, 1.0);
/// let t = q.build(|x| x).unwrap(); // identity ramp
/// assert_eq!(t.eval(0), 0);
/// assert_eq!(t.eval(15), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizedFn {
    inputs: usize,
    outputs: usize,
    in_lo: f64,
    in_hi: f64,
    out_lo: f64,
    out_hi: f64,
}

impl QuantizedFn {
    /// Creates a quantisation recipe.
    ///
    /// # Panics
    ///
    /// Panics if `in_hi <= in_lo` or `out_hi <= out_lo`.
    pub fn new(
        inputs: usize,
        outputs: usize,
        in_lo: f64,
        in_hi: f64,
        out_lo: f64,
        out_hi: f64,
    ) -> Self {
        assert!(in_hi > in_lo, "empty input domain");
        assert!(out_hi > out_lo, "empty output range");
        Self {
            inputs,
            outputs,
            in_lo,
            in_hi,
            out_lo,
            out_hi,
        }
    }

    /// The real input value represented by input code `i`.
    #[inline]
    pub fn input_value(&self, i: u32) -> f64 {
        let steps = ((1u64 << self.inputs) - 1) as f64;
        self.in_lo + (self.in_hi - self.in_lo) * (i as f64) / steps
    }

    /// The output code representing real value `y` (clamped to range).
    #[inline]
    pub fn output_code(&self, y: f64) -> u32 {
        let max_code = ((1u64 << self.outputs) - 1) as f64;
        let scaled = (y - self.out_lo) / (self.out_hi - self.out_lo) * max_code;
        scaled.round().clamp(0.0, max_code) as u32
    }

    /// The real value represented by output code `c` (inverse of
    /// [`Self::output_code`] up to quantisation).
    #[inline]
    pub fn output_value(&self, c: u32) -> f64 {
        let max_code = ((1u64 << self.outputs) - 1) as f64;
        self.out_lo + (self.out_hi - self.out_lo) * (c as f64) / max_code
    }

    /// Builds the quantised truth table of `f`.
    ///
    /// # Errors
    ///
    /// Returns an error if the widths are out of range.
    pub fn build(&self, mut f: impl FnMut(f64) -> f64) -> Result<TruthTable, BoolFnError> {
        TruthTable::from_fn(self.inputs, self.outputs, |i| {
            self.output_code(f(self.input_value(i)))
        })
    }
}

/// Builds a uniformly random `n`-in / `m`-out truth table (useful for
/// tests and fuzzing).
///
/// # Errors
///
/// Returns an error if widths are out of range.
pub fn random_table(
    inputs: usize,
    outputs: usize,
    rng: &mut impl Rng,
) -> Result<TruthTable, BoolFnError> {
    let mask = if outputs >= 32 {
        u32::MAX
    } else {
        (1u32 << outputs) - 1
    };
    TruthTable::from_fn(inputs, outputs, |_| rng.random::<u32>() & mask)
}

/// Builds a function that is *exactly* disjoint-decomposable under the
/// given bound mask: `f(X) = F(φ(B), A)` for random `φ` and `F`. Used as a
/// positive oracle for decomposition tests.
///
/// # Errors
///
/// Returns an error if widths are out of range.
pub fn random_decomposable(
    inputs: usize,
    bound_mask: u32,
    rng: &mut impl Rng,
) -> Result<TruthTable, BoolFnError> {
    let free_mask = ((1u32 << inputs) - 1) & !bound_mask;
    let b = bound_mask.count_ones() as usize;
    let a = inputs - b;
    let phi: Vec<bool> = (0..1usize << b).map(|_| rng.random()).collect();
    let big_f: Vec<bool> = (0..1usize << (a + 1)).map(|_| rng.random()).collect();
    TruthTable::from_fn(inputs, 1, |x| {
        let col = crate::bits::extract_bits(x, bound_mask) as usize;
        let row = crate::bits::extract_bits(x, free_mask) as usize;
        let phi_out = usize::from(phi[col]);
        u32::from(big_f[(row << 1) | phi_out])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantized_identity_hits_endpoints() {
        let q = QuantizedFn::new(8, 8, 0.0, 1.0, 0.0, 1.0);
        let t = q.build(|x| x).unwrap();
        assert_eq!(t.eval(0), 0);
        assert_eq!(t.eval(255), 255);
        // Monotone function stays monotone after quantisation.
        for i in 1..256u32 {
            assert!(t.eval(i) >= t.eval(i - 1));
        }
    }

    #[test]
    fn output_code_clamps_out_of_range() {
        let q = QuantizedFn::new(4, 4, 0.0, 1.0, 0.0, 1.0);
        assert_eq!(q.output_code(-0.5), 0);
        assert_eq!(q.output_code(2.0), 15);
    }

    #[test]
    fn output_value_inverts_code_on_grid() {
        let q = QuantizedFn::new(4, 6, 0.0, 1.0, -1.0, 3.0);
        for c in 0..64u32 {
            assert_eq!(q.output_code(q.output_value(c)), c);
        }
    }

    #[test]
    fn input_value_spans_domain() {
        let q = QuantizedFn::new(4, 4, 2.0, 10.0, 0.0, 1.0);
        assert!((q.input_value(0) - 2.0).abs() < 1e-12);
        assert!((q.input_value(15) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty input domain")]
    fn rejects_empty_domain() {
        let _ = QuantizedFn::new(4, 4, 1.0, 1.0, 0.0, 1.0);
    }

    #[test]
    fn random_table_respects_width() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = random_table(6, 5, &mut rng).unwrap();
        for (_, y) in t.iter() {
            assert!(y < 32);
        }
    }

    #[test]
    fn random_decomposable_has_ashenhurst_structure() {
        // Every row of the 2-D table must be one of: all-0, all-1, V, ~V.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let f = random_decomposable(6, 0b001101, &mut rng).unwrap();
            let p = crate::partition::Partition::new(6, 0b001101).unwrap();
            let t = crate::view2d::TwoDimTable::new(&f, p).unwrap();
            // Collect distinct non-constant row patterns.
            let mut patterns: Vec<Vec<bool>> = Vec::new();
            for r in 0..t.grid().rows() {
                let row = t.row_pattern(r).to_vec();
                if row.iter().all(|&v| !v) || row.iter().all(|&v| v) {
                    continue;
                }
                if !patterns.contains(&row) {
                    patterns.push(row);
                }
            }
            // At most V and its complement.
            assert!(patterns.len() <= 2);
            if patterns.len() == 2 {
                let complement: Vec<bool> = patterns[0].iter().map(|&v| !v).collect();
                assert_eq!(patterns[1], complement);
            }
        }
    }
}
