//! Durability properties of the crash-safe checkpoint layer: snapshots
//! round-trip bit-exactly through the store, truncating or bit-flipping
//! the newest slot at *any* position is detected, and recovery always
//! lands on the last good generation (or a clean "no checkpoint", never
//! a torn result).

use dalut_core::checkpoint::{
    crc32, CheckpointStore, Degradation, SweepSnapshot, WorkKey, WorkRecord,
};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh directory per test case: proptest runs many cases per test,
/// so a per-process name is not enough.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dalut_durable_{tag}_{}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Result payload shaped like what real sweeps persist.
type Payload = Vec<u64>;

fn arb_snapshot() -> impl Strategy<Value = SweepSnapshot<Payload>> {
    (
        any::<u64>(),
        proptest::collection::vec(
            (
                any::<u64>(),
                0u8..3,
                proptest::collection::vec(any::<u64>(), 0..4),
            ),
            0..6,
        ),
        proptest::collection::vec(any::<u64>(), 0..3),
    )
        .prop_map(|(fp, records, in_flight)| {
            let mut snap = SweepSnapshot::new(fp);
            for (i, (seed, kind, data)) in records.into_iter().enumerate() {
                let key = WorkKey::new(format!("bench{i}"), "arch", seed, "reduced-8", &data);
                let (degradation, result) = match kind {
                    0 => (Degradation::None, Some(data)),
                    1 => (
                        Degradation::Degraded {
                            strategy: "fallback".into(),
                        },
                        Some(data),
                    ),
                    _ => (Degradation::Failed, None),
                };
                snap.completed.push(WorkRecord {
                    key,
                    degradation,
                    attempts: u32::from(kind) + 1,
                    result,
                });
            }
            for (i, seed) in in_flight.into_iter().enumerate() {
                snap.in_flight.push(WorkKey::new(
                    format!("fly{i}"),
                    "arch",
                    seed,
                    "reduced-8",
                    &i,
                ));
            }
            snap
        })
}

/// Saves two distinguishable generations and returns the store plus the
/// newest slot's path (generation 2 lives in slot B, index 1).
fn two_generations(dir: &PathBuf) -> (CheckpointStore, PathBuf) {
    let store = CheckpointStore::open(dir).unwrap();
    let mut snap = SweepSnapshot::<Payload>::new(77);
    store.save(&snap).unwrap();
    snap.completed.push(WorkRecord {
        key: WorkKey::new("cos", "bs-sa", 3, "reduced-8", &"p"),
        degradation: Degradation::None,
        attempts: 1,
        result: Some(vec![1, 2, 3]),
    });
    store.save(&snap).unwrap();
    let newest = store.slot_paths()[1].to_path_buf();
    (store, newest)
}

fn load_gen(dir: &PathBuf) -> Option<u64> {
    CheckpointStore::open(dir)
        .unwrap()
        .load::<SweepSnapshot<Payload>>()
        .unwrap()
        .map(|l| l.generation)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// save → load returns exactly the snapshot that was saved, at the
    /// generation the save reported — for arbitrary record mixes.
    #[test]
    fn snapshots_round_trip_bit_exactly(snap in arb_snapshot()) {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        let generation = store.save(&snap).unwrap();
        let loaded = store.load::<SweepSnapshot<Payload>>().unwrap().unwrap();
        prop_assert_eq!(loaded.generation, generation);
        prop_assert_eq!(loaded.snapshot, snap);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Truncating the newest slot at ANY byte boundary falls back to the
    /// previous good generation.
    #[test]
    fn any_truncation_recovers_the_previous_generation(cut in 0.0f64..1.0) {
        let dir = temp_dir("truncate");
        let (_store, newest) = two_generations(&dir);
        let bytes = fs::read(&newest).unwrap();
        let keep = ((bytes.len() as f64) * cut) as usize;
        fs::write(&newest, &bytes[..keep.min(bytes.len().saturating_sub(1))]).unwrap();
        prop_assert_eq!(load_gen(&dir), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flipping ANY single bit in the newest slot is detected (CRC or
    /// structural validation) and recovery lands on the previous
    /// generation — or, if the flip leaves the envelope valid, the load
    /// still succeeds at generation 2 with intact CRC.
    #[test]
    fn any_bit_flip_is_detected_or_harmless(pos in 0.0f64..1.0, bit in 0u8..8) {
        let dir = temp_dir("bitflip");
        let (_store, newest) = two_generations(&dir);
        let mut bytes = fs::read(&newest).unwrap();
        let idx = (((bytes.len() - 1) as f64) * pos) as usize;
        bytes[idx] ^= 1 << bit;
        fs::write(&newest, &bytes).unwrap();
        // Either the corruption is caught (fall back to generation 1) or
        // the flipped byte did not change the decoded payload (e.g. a
        // flip inside the stored CRC digits caught as mismatch, counted
        // in the first case; or whitespace) — never a crash, never a
        // generation beyond 2.
        let generation = load_gen(&dir).unwrap();
        prop_assert!(generation == 1 || generation == 2);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn wrong_magic_is_rejected_even_with_a_valid_crc() {
    let dir = temp_dir("magic");
    let (store, newest) = two_generations(&dir);
    drop(store);
    // Rewrite the envelope with a foreign magic string but a correct CRC:
    // structural validation alone must reject it.
    let text = fs::read_to_string(&newest).unwrap();
    let forged = text.replace("dalut-checkpoint", "other-checkpoint!");
    assert_ne!(text, forged, "magic string not found in envelope");
    fs::write(&newest, forged).unwrap();
    assert_eq!(load_gen(&dir), Some(1));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn both_slots_corrupt_reads_as_no_checkpoint() {
    let dir = temp_dir("bothbad");
    let (store, _) = two_generations(&dir);
    for path in store.slot_paths() {
        fs::write(path, b"{ not json").unwrap();
    }
    assert_eq!(load_gen(&dir), None);
    // And the store stays usable: the next save starts a new history.
    let reopened = CheckpointStore::open(&dir).unwrap();
    assert_eq!(reopened.generation(), 0);
    reopened.save(&SweepSnapshot::<Payload>::new(5)).unwrap();
    assert_eq!(load_gen(&dir), Some(1));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crc_reference_vector_holds() {
    // IEEE 802.3 check value — guards against table or reflection bugs.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

#[test]
fn interleaved_saves_always_leave_a_loadable_previous_generation() {
    // Simulate a long sweep: after every save, corrupting the newest
    // slot must still leave generation - 1 loadable.
    let dir = temp_dir("history");
    let store = CheckpointStore::open(&dir).unwrap();
    let mut snap = SweepSnapshot::<Payload>::new(11);
    for generation in 1..=6u64 {
        snap.completed.push(WorkRecord {
            key: WorkKey::new("cos", "dalta", generation, "reduced-8", &generation),
            degradation: Degradation::None,
            attempts: 1,
            result: Some(vec![generation]),
        });
        assert_eq!(store.save(&snap).unwrap(), generation);
        if generation >= 2 {
            // Corrupt the slot just written, on a copy of the directory
            // state, and confirm fallback.
            let newest = store.slot_paths()[generation.is_multiple_of(2) as usize];
            let good = fs::read(newest).unwrap();
            fs::write(newest, b"torn").unwrap();
            assert_eq!(load_gen(&dir), Some(generation - 1));
            fs::write(newest, &good).unwrap();
            assert_eq!(load_gen(&dir), Some(generation));
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
