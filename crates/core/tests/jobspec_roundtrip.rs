//! Property tests for the [`JobSpec`] API contract:
//!
//! 1. `from_spec(to_spec(b))` configures the same search as `b` — at a
//!    fixed seed the two runs produce bit-identical [`SearchOutcome`]s.
//! 2. [`JobSpec::fingerprint`] is a *semantic* content address: two
//!    specs collide exactly when they are semantically equal, across
//!    every syntactic form (named benchmark vs. resolved table, weight
//!    vectors vs. the collapsed uniform), and every semantic field —
//!    including the input distribution and the estimator mode — feeds
//!    the hash, while pure execution knobs (`threads`) do not.

use dalut_boolfn::TruthTable;
use dalut_core::{
    Algorithm, ApproxLutBuilder, ArchPolicy, BsSaParams, BudgetSpec, DalutError, DistributionSpec,
    EstimatorMode, FunctionSource, JobSpec, NoResolver, SearchOutcome,
};
use proptest::prelude::*;

/// A deterministic pseudo-random truth table: `n` inputs, `n` outputs.
fn arb_table(n: usize) -> impl Strategy<Value = TruthTable> {
    proptest::collection::vec(0u32..(1 << n), 1 << n)
        .prop_map(move |values| TruthTable::from_values(n, n, values).expect("valid table"))
}

fn bssa(seed: u64) -> BsSaParams {
    let mut params = BsSaParams::fast();
    params.search.seed = seed;
    params
}

/// A canonical spec over an explicit table, parameterised on the knobs
/// the properties vary.
fn spec_of(table: &TruthTable, seed: u64, policy: ArchPolicy) -> JobSpec {
    JobSpec {
        function: FunctionSource::Table {
            table: table.clone(),
        },
        distribution: DistributionSpec::Uniform,
        algorithm: Algorithm::BsSa(bssa(seed)),
        policy,
        budget: BudgetSpec::unlimited(),
        estimator: EstimatorMode::Off,
    }
}

fn run(spec: &JobSpec) -> Result<SearchOutcome, DalutError> {
    ApproxLutBuilder::from_spec(spec)?.run()
}

/// A toy resolver for benchmark-form specs: `"tri"` maps to a triangle
/// wave, every other name is rejected.
fn tri_resolver() -> impl Fn(&str, usize) -> Result<TruthTable, DalutError> {
    |name, bits| {
        if name != "tri" {
            return Err(DalutError::Spec(format!("unknown benchmark {name:?}")));
        }
        let max = (1u32 << bits) - 1;
        let values = (0..1u32 << bits)
            .map(|x| max.min(2 * x.min(max - x.min(max))))
            .collect();
        TruthTable::from_values(bits, bits, values).map_err(DalutError::from)
    }
}

proptest! {
    // Each case runs multiple full searches; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Round-tripping a builder through its spec reproduces the outcome
    /// bit for bit, both starting from a builder (`to_spec`) and from a
    /// canonical spec (`to_spec(from_spec(s)) == s`-behaviour).
    #[test]
    fn from_spec_of_to_spec_is_bit_identical(
        table in arb_table(5),
        seed in 0u64..1000,
        normal_only in any::<bool>(),
    ) {
        let policy = if normal_only {
            ArchPolicy::NormalOnly
        } else {
            ArchPolicy::BtoNormal { delta: 0.01 }
        };
        let mut direct = ApproxLutBuilder::new(&table)
            .bs_sa(bssa(seed))
            .policy(policy)
            .run()
            .expect("direct run");
        let spec = ApproxLutBuilder::new(&table)
            .bs_sa(bssa(seed))
            .policy(policy)
            .to_spec();
        prop_assert!(spec.is_canonical());
        let mut via_spec = run(&spec).expect("spec run");
        // `elapsed` is wall clock, the one field that legitimately
        // differs between two identical runs; mask it out.
        direct.elapsed = std::time::Duration::ZERO;
        via_spec.elapsed = std::time::Duration::ZERO;
        prop_assert_eq!(&direct, &via_spec);
        // Bit-identical, not merely PartialEq-equal: the rendered debug
        // forms (which print every float) match exactly.
        prop_assert_eq!(format!("{direct:?}"), format!("{via_spec:?}"));

        // And the round trip is stable: from_spec's builder re-emits an
        // equal spec, so fingerprints agree.
        let re_emitted = ApproxLutBuilder::from_spec(&spec).expect("from_spec").to_spec();
        prop_assert_eq!(
            spec.fingerprint(&NoResolver).expect("fp"),
            re_emitted.fingerprint(&NoResolver).expect("fp")
        );
    }

    /// Fingerprints collide exactly for semantically equal specs: any
    /// change to the table, the seed or the policy separates them, and
    /// syntactically different but semantically equal forms (explicit
    /// uniform weights vs. `Uniform`, different `threads`) collide.
    #[test]
    fn fingerprint_separates_semantics(
        table in arb_table(4),
        seed in 0u64..1000,
    ) {
        let base = spec_of(&table, seed, ArchPolicy::NormalOnly);
        let fp = |s: &JobSpec| s.fingerprint(&NoResolver).expect("fingerprint");

        // Reflexive: a clone collides.
        prop_assert_eq!(fp(&base), fp(&base.clone()));

        // `threads` is an execution knob, not semantics.
        let mut threaded = base.clone();
        if let Algorithm::BsSa(p) = &mut threaded.algorithm { p.search.threads = 8; }
        prop_assert_eq!(fp(&base), fp(&threaded));

        // Explicit all-equal weights canonicalise back to Uniform.
        let mut weighted = base.clone();
        weighted.distribution = DistributionSpec::Weights {
            weights: vec![1.0; 1 << table.inputs()],
        };
        prop_assert_eq!(fp(&base), fp(&weighted));

        // Each semantic field separates.
        let mut reseeded = base.clone();
        if let Algorithm::BsSa(p) = &mut reseeded.algorithm { p.search.seed = seed + 1; }
        prop_assert!(fp(&base) != fp(&reseeded));

        let mut skewed = base.clone();
        skewed.distribution = DistributionSpec::Gaussian { mean_frac: 0.5, sigma_frac: 0.2 };
        prop_assert!(fp(&base) != fp(&skewed));

        let mut estimated = base.clone();
        estimated.estimator = EstimatorMode::Trust;
        prop_assert!(fp(&base) != fp(&estimated));

        let mut budgeted = base.clone();
        budgeted.budget = BudgetSpec { deadline_ms: Some(1000), ..base.budget };
        prop_assert!(fp(&base) != fp(&budgeted));

        let mut approx = base.clone();
        approx.policy = ArchPolicy::BtoNormal { delta: 0.01 };
        prop_assert!(fp(&base) != fp(&approx));
    }

    /// A mutated table value always changes the fingerprint.
    #[test]
    fn fingerprint_tracks_table_contents(
        table in arb_table(4),
        flip in 0usize..16,
    ) {
        let base = spec_of(&table, 7, ArchPolicy::NormalOnly);
        let mut values = table.values().to_vec();
        values[flip] ^= 1;
        let mutated_table =
            TruthTable::from_values(table.inputs(), table.outputs(), values).expect("valid table");
        let mutated = spec_of(&mutated_table, 7, ArchPolicy::NormalOnly);
        prop_assert!(base.fingerprint(&NoResolver).expect("fp") != mutated.fingerprint(&NoResolver).expect("fp"));
    }
}

/// A benchmark-form spec and its hand-resolved table form collide: the
/// fingerprint addresses the resolved function, not its spelling.
#[test]
fn benchmark_and_table_forms_collide() {
    let resolver = tri_resolver();
    let named = JobSpec {
        function: FunctionSource::Benchmark {
            name: "tri".to_string(),
            scale_bits: 5,
        },
        distribution: DistributionSpec::Uniform,
        algorithm: Algorithm::BsSa(bssa(3)),
        policy: ArchPolicy::NormalOnly,
        budget: BudgetSpec::unlimited(),
        estimator: EstimatorMode::Off,
    };
    let table = resolver("tri", 5).expect("resolve");
    let explicit = spec_of(&table, 3, ArchPolicy::NormalOnly);
    assert_eq!(
        named.fingerprint(&resolver).expect("fp"),
        explicit.fingerprint(&NoResolver).expect("fp"),
    );
    // And an unresolved benchmark without a resolver is a spec error.
    assert!(named.fingerprint(&NoResolver).is_err());
    assert!(ApproxLutBuilder::from_spec(&named).is_err());
}
