//! Behavioural tests of the robust execution layer: budgets, deadlines,
//! iteration caps and cooperative cancellation across the full search
//! stack (builder → beam/DALTA → SA).

use dalut_boolfn::builder::random_table;
use dalut_boolfn::{metrics, InputDistribution, TruthTable};
use dalut_core::{
    ApproxLutBuilder, ArchPolicy, BsSaParams, CancelToken, DaltaParams, DalutError, RunBudget,
    SearchOutcome, Termination,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn problem(seed: u64, n: usize, m: usize) -> (TruthTable, InputDistribution) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        random_table(n, m, &mut rng).unwrap(),
        InputDistribution::uniform(n).unwrap(),
    )
}

// Thin builder wrappers so the assertions below read like the old
// free-function call sites.
fn run_bs_sa(
    target: &TruthTable,
    dist: &InputDistribution,
    params: &BsSaParams,
    policy: ArchPolicy,
) -> Result<SearchOutcome, DalutError> {
    ApproxLutBuilder::new(target)
        .distribution(dist.clone())
        .bs_sa(*params)
        .policy(policy)
        .run()
}

fn run_bs_sa_budgeted(
    target: &TruthTable,
    dist: &InputDistribution,
    params: &BsSaParams,
    policy: ArchPolicy,
    budget: &RunBudget,
) -> Result<SearchOutcome, DalutError> {
    ApproxLutBuilder::new(target)
        .distribution(dist.clone())
        .bs_sa(*params)
        .policy(policy)
        .budget(budget.clone())
        .run()
}

fn run_dalta(
    target: &TruthTable,
    dist: &InputDistribution,
    params: &DaltaParams,
) -> Result<SearchOutcome, DalutError> {
    ApproxLutBuilder::new(target)
        .distribution(dist.clone())
        .dalta(*params)
        .run()
}

fn run_dalta_budgeted(
    target: &TruthTable,
    dist: &InputDistribution,
    params: &DaltaParams,
    budget: &RunBudget,
) -> Result<SearchOutcome, DalutError> {
    ApproxLutBuilder::new(target)
        .distribution(dist.clone())
        .dalta(*params)
        .budget(budget.clone())
        .run()
}

/// The returned config must decode everywhere and the reported MED must
/// be the exact MED of that config, however the run ended.
fn assert_outcome_is_truthful(
    out: &dalut_core::SearchOutcome,
    target: &TruthTable,
    dist: &InputDistribution,
) {
    let (n, m) = (target.inputs(), target.outputs());
    assert_eq!(out.config.outputs(), m);
    assert!(out.med.is_finite() && out.med >= 0.0);
    assert!(!out.round_meds.is_empty());
    let approx = TruthTable::from_fn(n, m, |x| out.config.eval(x)).unwrap();
    let true_med = metrics::med(target, &approx, dist).unwrap();
    assert!(
        (out.med - true_med).abs() < 1e-9,
        "reported MED {} != recomputed {}",
        out.med,
        true_med
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any iteration cap — including caps that trip mid-round-1 — yields
    /// a complete, truthful outcome no worse than the first filled
    /// configuration.
    #[test]
    fn capped_bs_sa_outcomes_are_valid(seed in 0u64..64, cap in 1u64..40) {
        let (g, d) = problem(seed, 6, 3);
        let mut p = BsSaParams::fast();
        p.search.seed = seed;
        let budget = RunBudget::unlimited().with_max_iterations(cap);
        let out = run_bs_sa_budgeted(&g, &d, &p, ArchPolicy::NormalOnly, &budget).unwrap();
        prop_assert_eq!(out.config.outputs(), 3);
        prop_assert!(out.med.is_finite() && out.med >= 0.0);
        prop_assert!(
            out.med <= out.round_meds[0] + 1e-9,
            "best-so-far {} worse than first round {}",
            out.med,
            out.round_meds[0]
        );
        let approx = TruthTable::from_fn(6, 3, |x| out.config.eval(x)).unwrap();
        let true_med = metrics::med(&g, &approx, &d).unwrap();
        prop_assert!((out.med - true_med).abs() < 1e-9);
    }

    /// Same property for the DALTA baseline.
    #[test]
    fn capped_dalta_outcomes_are_valid(seed in 0u64..64, cap in 1u64..30) {
        let (g, d) = problem(seed, 6, 3);
        let mut p = DaltaParams::fast();
        p.search.seed = seed;
        let budget = RunBudget::unlimited().with_max_iterations(cap);
        let out = run_dalta_budgeted(&g, &d, &p, &budget).unwrap();
        prop_assert_eq!(out.config.outputs(), 3);
        prop_assert!(out.med.is_finite() && out.med >= 0.0);
        let approx = TruthTable::from_fn(6, 3, |x| out.config.eval(x)).unwrap();
        let true_med = metrics::med(&g, &approx, &d).unwrap();
        prop_assert!((out.med - true_med).abs() < 1e-9);
    }
}

/// A run that finishes within a generous budget is identical to the same
/// run without one: budget checks live between iterations, so they never
/// touch the RNG streams.
#[test]
fn completed_budgeted_runs_match_unbudgeted_exactly() {
    let generous = RunBudget::unlimited()
        .with_deadline(Duration::from_secs(3600))
        .with_max_iterations(u64::MAX);
    for seed in 0..4u64 {
        let (g, d) = problem(seed, 7, 3);
        let mut bp = BsSaParams::fast();
        bp.search.seed = seed;
        let free = run_bs_sa(&g, &d, &bp, ArchPolicy::bto_normal_paper()).unwrap();
        let budgeted =
            run_bs_sa_budgeted(&g, &d, &bp, ArchPolicy::bto_normal_paper(), &generous).unwrap();
        assert_eq!(budgeted.termination, Termination::Completed);
        assert_eq!(free.med.to_bits(), budgeted.med.to_bits(), "seed {seed}");
        assert_eq!(free.config, budgeted.config, "seed {seed}");
        assert_eq!(free.round_meds, budgeted.round_meds, "seed {seed}");
        assert_eq!(free.mode_options, budgeted.mode_options, "seed {seed}");

        let mut dp = DaltaParams::fast();
        dp.search.seed = seed;
        let free = run_dalta(&g, &d, &dp).unwrap();
        let budgeted = run_dalta_budgeted(&g, &d, &dp, &generous).unwrap();
        assert_eq!(budgeted.termination, Termination::Completed);
        assert_eq!(free.med.to_bits(), budgeted.med.to_bits(), "seed {seed}");
        assert_eq!(free.config, budgeted.config, "seed {seed}");
        assert_eq!(free.round_meds, budgeted.round_meds, "seed {seed}");
    }
}

/// The paper's working point — n = 16 inputs, bound-set size 9 — with a
/// 5-second deadline: the search must come back within the deadline plus
/// a modest grace period (final fill + outcome assembly), tagged
/// `DeadlineExceeded`, with a complete truthful best-so-far config.
#[test]
fn deadline_is_honoured_at_the_paper_working_point() {
    let target = TruthTable::from_fn(16, 8, |x| {
        let t = f64::from(x) / 65536.0;
        (t * t * 255.0) as u32
    })
    .unwrap();
    let dist = InputDistribution::uniform(16).unwrap();
    // Fast per-step cost but a practically unbounded amount of SA work,
    // so the run cannot complete inside the deadline.
    let mut p = BsSaParams::fast();
    p.search.seed = 11;
    p.search.bound_size = 9;
    p.search.rounds = 50;
    p.partition_limit = 1_000_000;
    p.stall_limit = 1_000_000;
    let deadline = Duration::from_secs(5);
    let budget = RunBudget::unlimited().with_deadline(deadline);
    let start = Instant::now();
    let out = run_bs_sa_budgeted(&target, &dist, &p, ArchPolicy::NormalOnly, &budget).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(out.termination, Termination::DeadlineExceeded);
    assert!(
        elapsed <= deadline + Duration::from_millis(500),
        "overran the deadline: {elapsed:?}"
    );
    assert_outcome_is_truthful(&out, &target, &dist);
}

/// Cancelling from another thread stops a long run promptly with a
/// complete best-so-far outcome.
#[test]
fn cancellation_from_another_thread_stops_the_run() {
    let (g, d) = problem(2, 10, 4);
    let mut p = BsSaParams::fast();
    p.search.seed = 2;
    p.partition_limit = 1_000_000;
    p.stall_limit = 1_000_000;
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.cancel();
        })
    };
    let budget = RunBudget::unlimited().with_cancel(&token);
    let start = Instant::now();
    let out = run_bs_sa_budgeted(&g, &d, &p, ArchPolicy::NormalOnly, &budget).unwrap();
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    assert_eq!(out.termination, Termination::Cancelled);
    assert!(elapsed < Duration::from_secs(30), "took {elapsed:?}");
    assert_outcome_is_truthful(&out, &g, &d);
}

/// The builder surfaces budgets for both algorithms end to end.
#[test]
fn builder_budgets_cover_both_algorithms() {
    let (g, _) = problem(5, 6, 2);
    for algo_is_dalta in [false, true] {
        let mut b = ApproxLutBuilder::new(&g).budget(RunBudget::unlimited().with_max_iterations(2));
        b = if algo_is_dalta {
            b.dalta(DaltaParams::fast())
        } else {
            b.bs_sa(BsSaParams::fast())
        };
        let out = b.run().unwrap();
        assert_eq!(out.termination, Termination::DeadlineExceeded);
        assert_eq!(out.config.outputs(), 2);
        assert!(out.med.is_finite());
    }
}
