//! Behavioural tests of the observability layer: event-sequence
//! determinism, zero effect of instrumentation on search results, metrics
//! totals consistency and trace serialisation.

use dalut_boolfn::builder::random_table;
use dalut_boolfn::{InputDistribution, TruthTable};
use dalut_core::{
    ApproxLutBuilder, ArchPolicy, BsSaParams, DaltaParams, JsonlTraceWriter, MetricsRecorder,
    NoopObserver, Observer, RecordingObserver, SearchEvent, TraceRecord,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn problem(seed: u64, n: usize, m: usize) -> (TruthTable, InputDistribution) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        random_table(n, m, &mut rng).unwrap(),
        InputDistribution::uniform(n).unwrap(),
    )
}

/// Single-threaded params so event order is deterministic.
fn st_params(seed: u64) -> BsSaParams {
    let mut p = BsSaParams::fast();
    p.search.threads = 1;
    p.search.seed = seed;
    p
}

#[test]
fn fixed_seed_single_thread_event_sequence_is_deterministic() {
    let (g, d) = problem(11, 7, 3);
    let run = || {
        let rec = RecordingObserver::new();
        ApproxLutBuilder::new(&g)
            .distribution(d.clone())
            .bs_sa(st_params(5))
            .policy(ArchPolicy::bto_normal_paper())
            .observer(&rec)
            .run()
            .unwrap();
        rec.events()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    // Events carry no timestamps, so equality is exact.
    assert_eq!(a, b);
}

#[test]
fn dalta_event_sequence_is_deterministic_too() {
    let (g, d) = problem(12, 6, 2);
    let mut p = DaltaParams::fast();
    p.search.threads = 1;
    let run = || {
        let rec = RecordingObserver::new();
        ApproxLutBuilder::new(&g)
            .distribution(d.clone())
            .dalta(p)
            .observer(&rec)
            .run()
            .unwrap();
        rec.events()
    };
    assert_eq!(run(), run());
}

#[test]
fn instrumented_run_is_bit_identical_to_noop_run() {
    let (g, d) = problem(13, 7, 3);
    let rec = RecordingObserver::new();
    let observed = ApproxLutBuilder::new(&g)
        .distribution(d.clone())
        .bs_sa(st_params(9))
        .policy(ArchPolicy::bto_normal_nd_paper())
        .observer(&rec)
        .run()
        .unwrap();
    let plain = ApproxLutBuilder::new(&g)
        .distribution(d.clone())
        .bs_sa(st_params(9))
        .policy(ArchPolicy::bto_normal_nd_paper())
        .observer(&NoopObserver)
        .run()
        .unwrap();
    assert!(!rec.is_empty());
    // Everything except wall-clock `elapsed` must match exactly.
    assert_eq!(observed.config, plain.config);
    assert_eq!(observed.med, plain.med);
    assert_eq!(observed.round_meds, plain.round_meds);
    assert_eq!(observed.mode_options, plain.mode_options);
    assert_eq!(observed.termination, plain.termination);
    assert_eq!(observed.iterations, plain.iterations);
}

#[test]
fn metrics_totals_match_outcome_iteration_counts() {
    let (g, d) = problem(14, 7, 3);
    let metrics = MetricsRecorder::new();
    let out = ApproxLutBuilder::new(&g)
        .distribution(d.clone())
        .bs_sa(st_params(3))
        .observer(&metrics)
        .run()
        .unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.counters.searches_started, 1);
    assert_eq!(snap.counters.searches_finished, 1);
    // Every timer tick was observed as a BudgetTick.
    assert_eq!(snap.counters.budget_ticks, out.iterations);
    assert_eq!(snap.counters.rounds_finished as usize, out.round_meds.len());
    // The SA phase requested neighbours and the kernel ran.
    assert!(snap.counters.neighbour_batches > 0);
    assert!(snap.counters.kernel_calls > 0);
    assert!(snap.counters.neighbours_requested >= snap.counters.neighbour_cache_hits);
    assert!((0.0..=1.0).contains(&snap.cache_hit_rate));
    // Both search phases were tracked with effort attributed.
    let names: Vec<&str> = snap.phases.iter().map(|p| p.name.as_str()).collect();
    assert!(names.contains(&"beam"));
    assert!(names.contains(&"refine"));
    let total_phase_iters: u64 = snap.phases.iter().map(|p| p.iterations).sum();
    assert_eq!(total_phase_iters, out.iterations);
}

#[test]
fn metrics_totals_cover_dalta_task_batches() {
    let (g, d) = problem(15, 6, 2);
    let metrics = MetricsRecorder::new();
    let mut p = DaltaParams::fast();
    p.search.threads = 1;
    let out = ApproxLutBuilder::new(&g)
        .distribution(d.clone())
        .dalta(p)
        .observer(&metrics)
        .run()
        .unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.counters.budget_ticks, out.iterations);
    // One fan-out per (round, bit) step.
    assert_eq!(snap.counters.task_batches, out.iterations);
    assert!(snap.counters.kernel_calls > 0);
    assert_eq!(snap.phases.len(), 1);
    assert_eq!(snap.phases[0].name, "greedy");
}

#[test]
fn jsonl_trace_round_trips_through_serde() {
    let (g, d) = problem(16, 6, 2);
    let rec = RecordingObserver::new();
    let trace = JsonlTraceWriter::new(Vec::new());
    let multi = dalut_core::MultiObserver::new()
        .with(std::sync::Arc::new(rec))
        .with(std::sync::Arc::new(trace));
    ApproxLutBuilder::new(&g)
        .distribution(d)
        .bs_sa(st_params(1))
        .observer(&multi)
        .run()
        .unwrap();
    drop(multi);
    // Round-trip a representative sample of events through the same
    // envelope the JSONL writer emits.
    let events = vec![
        SearchEvent::SearchStarted {
            algorithm: "bs-sa".into(),
            inputs: 6,
            outputs: 2,
            rounds: 3,
            seed: 1,
        },
        SearchEvent::NeighbourBatch {
            requested: 5,
            cache_hits: 1,
            evaluated: 4,
            failed: 0,
            visited: 12,
        },
        SearchEvent::KernelInvocation {
            mode: dalut_core::DecompMode::NonDisjoint,
            calls: 8,
            restarts: 240,
            alternations: 1234,
        },
        SearchEvent::SearchFinished {
            med: 0.125,
            iterations: 42,
            termination: dalut_core::Termination::Completed,
        },
    ];
    for (seq, event) in events.into_iter().enumerate() {
        let record = TraceRecord {
            seq: seq as u64,
            t_us: 17 * seq as u64,
            event,
        };
        let line = serde_json::to_string(&record).unwrap();
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(record, back);
    }
}

#[test]
fn jsonl_writer_produces_one_valid_line_per_event() {
    let (g, d) = problem(17, 6, 2);
    let path = std::env::temp_dir().join(format!("dalut_trace_{}.jsonl", std::process::id()));
    {
        let trace = JsonlTraceWriter::create(&path).unwrap();
        ApproxLutBuilder::new(&g)
            .distribution(d)
            .bs_sa(st_params(2))
            .observer(&trace)
            .run()
            .unwrap();
        assert!(trace.lines() > 0);
        trace.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = 0u64;
        for line in text.lines() {
            let rec: TraceRecord = serde_json::from_str(line).unwrap();
            assert_eq!(rec.seq, lines);
            lines += 1;
        }
        assert_eq!(lines, trace.lines());
        // The stream starts and ends with the search lifecycle events.
        let first: TraceRecord = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert!(matches!(first.event, SearchEvent::SearchStarted { .. }));
        let last: TraceRecord = serde_json::from_str(text.lines().last().unwrap()).unwrap();
        assert!(matches!(last.event, SearchEvent::SearchFinished { .. }));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn noop_observer_is_disabled() {
    assert!(!NoopObserver.enabled());
    let rec = RecordingObserver::new();
    assert!(Observer::enabled(&rec));
}
