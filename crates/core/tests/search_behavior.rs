//! Behavioural tests of the search algorithms across module boundaries.

use dalut_boolfn::builder::random_table;
use dalut_boolfn::{InputDistribution, TruthTable};
use dalut_core::{
    find_best_settings, ApproxLutBuilder, ArchPolicy, BsSaParams, DaltaParams, DalutError,
    DecompMode, SearchOutcome,
};
use dalut_decomp::{bit_costs, LsbFill};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn problem(seed: u64, n: usize, m: usize) -> (TruthTable, InputDistribution) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        random_table(n, m, &mut rng).unwrap(),
        InputDistribution::uniform(n).unwrap(),
    )
}

// Thin builder wrappers so the assertions below read like the old
// free-function call sites.
fn run_bs_sa(
    target: &TruthTable,
    dist: &InputDistribution,
    params: &BsSaParams,
    policy: ArchPolicy,
) -> Result<SearchOutcome, DalutError> {
    ApproxLutBuilder::new(target)
        .distribution(dist.clone())
        .bs_sa(*params)
        .policy(policy)
        .run()
}

fn run_dalta(
    target: &TruthTable,
    dist: &InputDistribution,
    params: &DaltaParams,
) -> Result<SearchOutcome, DalutError> {
    ApproxLutBuilder::new(target)
        .distribution(dist.clone())
        .dalta(*params)
        .run()
}

/// With the incumbent-seeded refinement, each later round of BS-SA can
/// only improve (or keep) the true MED when no mode trade-off is in play:
/// every per-bit replacement minimises the exact FromApprox cost, which
/// *is* the global MED with that bit swapped.
#[test]
fn bssa_later_rounds_are_monotone_under_normal_policy() {
    for seed in 0..6u64 {
        let (g, d) = problem(seed, 7, 4);
        let mut params = BsSaParams::fast();
        params.search.seed = seed;
        params.search.rounds = 4;
        let out = run_bs_sa(&g, &d, &params, ArchPolicy::NormalOnly).unwrap();
        for w in out.round_meds.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "seed {seed}: round MED increased {} -> {}",
                w[0],
                w[1]
            );
        }
    }
}

/// DALTA's rounds (which lack the incumbent guard, as in the original
/// heuristic) still converge on these instances: the final MED is the
/// best or near-best of all rounds.
#[test]
fn dalta_round_trajectory_is_recorded() {
    let (g, d) = problem(3, 7, 4);
    let out = run_dalta(&g, &d, &DaltaParams::fast()).unwrap();
    assert_eq!(out.round_meds.len(), DaltaParams::fast().search.rounds);
    assert!((out.med - out.round_meds.last().unwrap()).abs() < 1e-12);
}

/// More SA chains sharing one visited set never hurt the best found
/// setting on a fixed budget (they only diversify the walk).
#[test]
fn extra_sa_chains_do_not_hurt() {
    let (g, d) = problem(5, 8, 3);
    let costs = bit_costs(&g, &g, 2, &d, LsbFill::Accurate).unwrap();
    let mut single = BsSaParams::fast();
    single.search.bound_size = 4;
    single.partition_limit = 30;
    single.sa_processes = 1;
    let mut multi = single;
    multi.sa_processes = 4;
    let e1 = find_best_settings(&costs, 8, DecompMode::Normal, &single, 1, 42, None)[0].error;
    let e4 = find_best_settings(&costs, 8, DecompMode::Normal, &multi, 1, 42, None)[0].error;
    // Not a theorem per-seed, but stable across this fixture; the real
    // assertion is that both produce valid results within the budget.
    assert!(e1.is_finite() && e4.is_finite());
    assert!(e4 <= e1 * 1.5 + 1e-9, "multi-chain exploded: {e4} vs {e1}");
}

/// Seeding the SA with a start partition makes that partition's optimum
/// an upper bound on the returned error.
#[test]
fn start_partition_bounds_result() {
    use dalut_boolfn::Partition;
    use dalut_decomp::opt_for_part;
    let (g, d) = problem(7, 8, 3);
    let costs = bit_costs(&g, &g, 1, &d, LsbFill::Accurate).unwrap();
    let start = Partition::new(8, 0b0011_0110).unwrap();
    let mut params = BsSaParams::fast();
    params.search.bound_size = 4;
    let mut rng = StdRng::seed_from_u64(9);
    let (start_err, _) = opt_for_part(&costs, start, params.search.opt_params(), &mut rng).unwrap();
    let best =
        find_best_settings(&costs, 8, DecompMode::Normal, &params, 1, 11, Some(start))[0].error;
    assert!(best <= start_err + 1e-9);
}

/// The three output-bit orders of magnitude: approximating the MSB
/// matters most. Check that BS-SA's per-bit expected errors decrease
/// with bit significance on a smooth function (a sanity property of the
/// MED objective, not of the search).
#[test]
fn msb_errors_dominate_on_smooth_functions() {
    let g = dalut_benchfns_stub();
    let d = InputDistribution::uniform(8).unwrap();
    let mut params = BsSaParams::fast();
    params.search.bound_size = 5;
    let out = run_bs_sa(&g, &d, &params, ArchPolicy::NormalOnly).unwrap();
    // Aggregate check: the total MED is far below the worst single-bit
    // weight (2^(m-1)), i.e. the MSB was approximated well.
    assert!(out.med < f64::from(1u32 << (g.outputs() - 1)) / 4.0);
}

/// A small smooth fixture (quadratic ramp) without depending on
/// dalut-benchfns from this crate's tests.
fn dalut_benchfns_stub() -> TruthTable {
    TruthTable::from_fn(8, 8, |x| ((u64::from(x) * u64::from(x)) >> 8) as u32 & 0xFF).unwrap()
}
