//! Accuracy–energy trade-off sweeps over per-bit operating modes
//! (paper §V-C, Fig. 6).
//!
//! Given the per-bit mode alternatives recorded by the final BS-SA round,
//! enumerates a frontier of configurations from "every bit in BTO mode"
//! (cheapest) to "every bit in its most accurate mode", upgrading one bit
//! at a time by the best expected error reduction per activated free
//! table.

use crate::config::{ApproxLutConfig, BitConfig, BitMode};
use crate::outcome::BitModeOptions;
use dalut_boolfn::{BoolFnError, InputDistribution, TruthTable};
use dalut_decomp::Setting;
use serde::{Deserialize, Serialize};

/// One point of the accuracy–energy sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// The configuration at this point.
    pub config: ApproxLutConfig,
    /// True MED of the configuration against the target.
    pub med: f64,
    /// `(#BTO, #Normal, #ND)` mode counts (the paper's Fig. 6 labels).
    pub mode_counts: (usize, usize, usize),
    /// Total active free tables (0 per BTO bit, 1 per normal bit, 2 per
    /// ND bit) — the dominant dynamic-energy driver.
    pub active_free_tables: usize,
}

/// The per-bit energy weight of a mode: the number of free tables that
/// stay clocked.
fn weight(mode: BitMode) -> usize {
    match mode {
        BitMode::Bto => 0,
        BitMode::Normal => 1,
        BitMode::NonDisjoint => 2,
    }
}

fn setting_for(options: &BitModeOptions, mode: BitMode) -> Option<&Setting> {
    match mode {
        BitMode::Bto => options.bto.as_ref(),
        BitMode::Normal => Some(&options.normal),
        BitMode::NonDisjoint => options.nd.as_ref(),
    }
}

/// Enumerates the mode-assignment frontier.
///
/// Starts with every bit in its cheapest available mode and repeatedly
/// applies the single mode upgrade (BTO→Normal, Normal→ND) with the
/// largest expected error reduction per added free table, emitting a
/// [`TradeoffPoint`] (with the *true* MED, measured against `target`)
/// after every step.
///
/// # Errors
///
/// Returns an error if the options do not cover every output bit of
/// `target` or shapes disagree.
pub fn mode_sweep(
    target: &TruthTable,
    dist: &InputDistribution,
    options: &[BitModeOptions],
) -> Result<Vec<TradeoffPoint>, BoolFnError> {
    let m = target.outputs();
    if options.len() != m || options.iter().enumerate().any(|(i, o)| o.bit != i) {
        return Err(BoolFnError::DimensionMismatch(format!(
            "need options for bits 0..{m} in order"
        )));
    }

    // Current mode per bit: cheapest available.
    let mut modes: Vec<BitMode> = options
        .iter()
        .map(|o| {
            if o.bto.is_some() {
                BitMode::Bto
            } else {
                BitMode::Normal
            }
        })
        .collect();

    let emit = |modes: &[BitMode]| -> Result<TradeoffPoint, BoolFnError> {
        let bits: Vec<BitConfig> = options
            .iter()
            .zip(modes)
            .map(|(o, &mode)| {
                let s = setting_for(o, mode).expect("mode only assigned when available");
                BitConfig::from_setting(o.bit, s.clone())
            })
            .collect();
        let config = ApproxLutConfig::new(target.inputs(), m, bits)?;
        let med = config.med(target, dist)?;
        let mode_counts = config.mode_counts();
        let active = modes.iter().map(|&md| weight(md)).sum();
        Ok(TradeoffPoint {
            config,
            med,
            mode_counts,
            active_free_tables: active,
        })
    };

    let mut points = vec![emit(&modes)?];
    loop {
        // Candidate single-step upgrades with their expected error delta.
        let mut best: Option<(usize, BitMode, f64)> = None;
        for (i, o) in options.iter().enumerate() {
            let next = match modes[i] {
                BitMode::Bto => BitMode::Normal,
                BitMode::Normal if o.nd.is_some() => BitMode::NonDisjoint,
                _ => continue,
            };
            let cur_err = setting_for(o, modes[i])
                .expect("current mode available")
                .error;
            let next_err = match setting_for(o, next) {
                Some(s) => s.error,
                None => continue,
            };
            let gain = cur_err - next_err; // expected error reduction
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((i, next, gain));
            }
        }
        let Some((i, next, _)) = best else { break };
        modes[i] = next;
        points.push(emit(&modes)?);
    }
    Ok(points)
}

/// Filters a sweep down to its Pareto front: points not dominated by any
/// other point in (MED, active free tables). Ties on both axes keep the
/// first occurrence.
pub fn pareto_front(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    let mut front: Vec<TradeoffPoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.med < p.med && q.active_free_tables <= p.active_free_tables)
                || (q.med <= p.med && q.active_free_tables < p.active_free_tables)
        });
        if !dominated {
            front.push(p.clone());
        }
    }
    front.sort_by_key(|a| a.active_free_tables);
    front.dedup_by(|a, b| a.med == b.med && a.active_free_tables == b.active_free_tables);
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ArchPolicy, BsSaParams};
    use dalut_boolfn::builder::random_table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sweep_fixture() -> (TruthTable, InputDistribution, Vec<BitModeOptions>) {
        let mut rng = StdRng::seed_from_u64(8);
        let g = random_table(6, 3, &mut rng).unwrap();
        let d = InputDistribution::uniform(6).unwrap();
        let out = crate::pipeline::ApproxLutBuilder::new(&g)
            .distribution(d.clone())
            .bs_sa(BsSaParams::fast())
            .policy(ArchPolicy::bto_normal_nd_paper())
            .run()
            .unwrap();
        (g, d, out.mode_options.unwrap())
    }

    #[test]
    fn sweep_covers_full_mode_range() {
        let (g, d, opts) = sweep_fixture();
        let points = mode_sweep(&g, &d, &opts).unwrap();
        // First point: all BTO (0 free tables). Last: all ND (2 per bit).
        assert_eq!(points.first().unwrap().active_free_tables, 0);
        assert_eq!(points.last().unwrap().active_free_tables, 2 * 3);
        // One upgrade per step.
        for w in points.windows(2) {
            assert_eq!(w[1].active_free_tables, w[0].active_free_tables + 1);
        }
        // Mode counts always total m.
        for p in &points {
            let (a, b, c) = p.mode_counts;
            assert_eq!(a + b + c, 3);
        }
    }

    #[test]
    fn sweep_extremes_have_expected_modes() {
        let (g, d, opts) = sweep_fixture();
        let points = mode_sweep(&g, &d, &opts).unwrap();
        assert_eq!(points.first().unwrap().mode_counts, (3, 0, 0));
        assert_eq!(points.last().unwrap().mode_counts, (0, 0, 3));
    }

    #[test]
    fn most_accurate_point_not_worse_than_cheapest() {
        let (g, d, opts) = sweep_fixture();
        let points = mode_sweep(&g, &d, &opts).unwrap();
        let first = points.first().unwrap().med;
        let last = points.last().unwrap().med;
        assert!(
            last <= first + 1e-9,
            "all-ND med {last} worse than all-BTO {first}"
        );
    }

    #[test]
    fn pareto_front_removes_dominated_points() {
        let (g, d, opts) = sweep_fixture();
        let points = mode_sweep(&g, &d, &opts).unwrap();
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        assert!(front.len() <= points.len());
        // No front point dominates another front point.
        for a in &front {
            for b in &front {
                if a == b {
                    continue;
                }
                let dominates = (a.med < b.med && a.active_free_tables <= b.active_free_tables)
                    || (a.med <= b.med && a.active_free_tables < b.active_free_tables);
                assert!(!dominates, "front contains dominated point");
            }
        }
        // Front is sorted by energy proxy and strictly improving in MED.
        for w in front.windows(2) {
            assert!(w[0].active_free_tables < w[1].active_free_tables);
            assert!(w[1].med < w[0].med);
        }
    }

    #[test]
    fn sweep_rejects_incomplete_options() {
        let (g, d, opts) = sweep_fixture();
        assert!(mode_sweep(&g, &d, &opts[..2]).is_err());
    }
}
