//! High-level builder API over the two search algorithms.

use std::fmt;

use crate::beam::bs_sa_engine;
use crate::budget::RunBudget;
use crate::dalta::dalta_engine;
use crate::error::DalutError;
use crate::observe::{Observer, NOOP};
use crate::outcome::SearchOutcome;
use crate::params::{ArchPolicy, BsSaParams, DaltaParams};
use dalut_boolfn::{InputDistribution, TruthTable};

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// The DALTA baseline (greedy, random partitions).
    Dalta(DaltaParams),
    /// The proposed beam-search + simulated-annealing search.
    BsSa(BsSaParams),
}

/// Everything that shapes a search run, grouped so entry points stop
/// growing positional parameters: the algorithm (with its parameters),
/// the architecture policy, and the execution budget.
///
/// [`ApproxLutBuilder`]'s individual setters (`.dalta`, `.bs_sa`,
/// `.policy`, `.budget`) are thin forwards into this struct; build one
/// directly and pass it to [`ApproxLutBuilder::config`] to carry a whole
/// run configuration around as one value.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The search algorithm and its parameters.
    pub algorithm: Algorithm,
    /// The architecture policy (ignored by the DALTA baseline, which has
    /// a fixed architecture).
    pub policy: ArchPolicy,
    /// The execution budget.
    pub budget: RunBudget,
}

impl Default for SearchConfig {
    /// BS-SA fast parameters, normal-only policy, unlimited budget.
    fn default() -> Self {
        Self {
            algorithm: Algorithm::BsSa(BsSaParams::fast()),
            policy: ArchPolicy::NormalOnly,
            budget: RunBudget::unlimited(),
        }
    }
}

/// Fluent builder for approximating a function with a decomposition-based
/// LUT. This is the single entrypoint to both search algorithms; wire- or
/// disk-borne work arrives as a [`JobSpec`](crate::JobSpec) and enters
/// through [`from_spec`](Self::from_spec).
///
/// # Examples
///
/// ```
/// use dalut_boolfn::TruthTable;
/// use dalut_core::{ApproxLutBuilder, ArchPolicy, BsSaParams};
///
/// let target = TruthTable::from_fn(8, 4, |x| (x * x >> 8) & 0xF).unwrap();
/// let outcome = ApproxLutBuilder::new(&target)
///     .bs_sa(BsSaParams::fast())
///     .policy(ArchPolicy::bto_normal_paper())
///     .run()
///     .unwrap();
/// assert!(outcome.med.is_finite());
/// assert_eq!(outcome.config.outputs(), 4);
/// ```
///
/// Attaching an observer:
///
/// ```
/// use dalut_boolfn::TruthTable;
/// use dalut_core::{ApproxLutBuilder, MetricsRecorder};
///
/// let target = TruthTable::from_fn(6, 2, |x| x % 4).unwrap();
/// let metrics = MetricsRecorder::new();
/// let outcome = ApproxLutBuilder::new(&target)
///     .observer(&metrics)
///     .run()
///     .unwrap();
/// let snap = metrics.snapshot();
/// assert_eq!(snap.counters.budget_ticks, outcome.iterations);
/// ```
pub struct ApproxLutBuilder<'a> {
    target: &'a TruthTable,
    dist: Option<InputDistribution>,
    config: SearchConfig,
    observer: &'a dyn Observer,
}

impl fmt::Debug for ApproxLutBuilder<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ApproxLutBuilder")
            .field("target", &self.target)
            .field("dist", &self.dist)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a> ApproxLutBuilder<'a> {
    /// Starts a builder for `target` with BS-SA fast parameters, uniform
    /// inputs, the normal-only policy, no budget and no observer.
    pub fn new(target: &'a TruthTable) -> Self {
        Self {
            target,
            dist: None,
            config: SearchConfig::default(),
            observer: &NOOP,
        }
    }

    /// Starts a builder from a canonical [`JobSpec`](crate::JobSpec),
    /// borrowing its truth table: the distribution is realised and the
    /// algorithm, policy and budget are taken from the spec (its
    /// estimator mode is ignored — the in-process builder never
    /// estimates). The same spec always configures the same search, so
    /// `from_spec(&b.to_spec())` reproduces `b`'s outcome bit-for-bit at
    /// a fixed seed.
    ///
    /// # Errors
    ///
    /// Returns [`DalutError::Spec`] if the spec's function source is an
    /// unresolved benchmark name (canonicalize it first with
    /// [`JobSpec::canonicalize`](crate::JobSpec::canonicalize)), or a
    /// realisation error for an invalid distribution.
    pub fn from_spec(spec: &'a crate::spec::JobSpec) -> Result<Self, DalutError> {
        let crate::spec::FunctionSource::Table { table } = &spec.function else {
            return Err(DalutError::Spec(
                "function source is an unresolved benchmark; canonicalize the spec \
                 with a FunctionResolver first"
                    .into(),
            ));
        };
        let dist = spec.distribution.realize(table.inputs())?;
        Ok(Self {
            target: table,
            dist: Some(dist),
            config: spec.search_config(),
            observer: &NOOP,
        })
    }

    /// The canonical [`JobSpec`](crate::JobSpec) describing this
    /// builder's configured search: explicit truth table, the realised
    /// distribution, and the algorithm/policy/budget as set. Any
    /// cancellation token on the budget is dropped (it cannot cross the
    /// wire), and the estimator mode is
    /// [`EstimatorMode::Off`](crate::EstimatorMode::Off) — the builder
    /// never estimates.
    #[must_use]
    pub fn to_spec(&self) -> crate::spec::JobSpec {
        crate::spec::JobSpec {
            function: crate::spec::FunctionSource::Table {
                table: self.target.clone(),
            },
            distribution: self
                .dist
                .as_ref()
                .map_or(crate::spec::DistributionSpec::Uniform, |d| {
                    crate::spec::DistributionSpec::from_distribution(d)
                }),
            algorithm: self.config.algorithm,
            policy: self.config.policy,
            budget: crate::spec::BudgetSpec::from_budget(&self.config.budget),
            estimator: crate::estimate::EstimatorMode::Off,
        }
    }

    /// Sets the input distribution (default: uniform).
    #[must_use]
    pub fn distribution(mut self, dist: InputDistribution) -> Self {
        self.dist = Some(dist);
        self
    }

    /// Replaces the whole run configuration (algorithm + policy +
    /// budget) at once.
    #[must_use]
    pub fn config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Uses the DALTA baseline with the given parameters.
    #[must_use]
    pub fn dalta(mut self, params: DaltaParams) -> Self {
        self.config.algorithm = Algorithm::Dalta(params);
        self
    }

    /// Uses BS-SA with the given parameters.
    #[must_use]
    pub fn bs_sa(mut self, params: BsSaParams) -> Self {
        self.config.algorithm = Algorithm::BsSa(params);
        self
    }

    /// Sets the architecture policy (default: normal-only). Ignored by
    /// the DALTA baseline, which has a fixed architecture.
    #[must_use]
    pub fn policy(mut self, policy: ArchPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Bounds the run with an execution budget (default: unlimited). A
    /// tripped budget returns the best solution found so far, with
    /// [`SearchOutcome::termination`] saying why the run stopped.
    ///
    /// # Examples
    ///
    /// ```
    /// use dalut_boolfn::TruthTable;
    /// use dalut_core::{ApproxLutBuilder, RunBudget, Termination};
    /// use std::time::Duration;
    ///
    /// let target = TruthTable::from_fn(8, 4, |x| (x * 3 >> 4) & 0xF).unwrap();
    /// let outcome = ApproxLutBuilder::new(&target)
    ///     .budget(RunBudget::unlimited().with_deadline(Duration::from_secs(5)))
    ///     .run()
    ///     .unwrap();
    /// // Complete either way: every output bit has a configuration.
    /// assert_eq!(outcome.config.outputs(), 4);
    /// ```
    #[must_use]
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Attaches an [`Observer`] that receives
    /// [`SearchEvent`](crate::observe::SearchEvent)s as the search runs
    /// (default: the free [`NoopObserver`](crate::observe::NoopObserver)).
    /// The observer must outlive the builder; events never change the
    /// search result.
    #[must_use]
    pub fn observer(mut self, observer: &'a dyn Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Runs the configured search.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatches or invalid parameters.
    pub fn run(self) -> Result<SearchOutcome, DalutError> {
        let dist = match self.dist {
            Some(d) => d,
            None => InputDistribution::uniform(self.target.inputs())?,
        };
        match self.config.algorithm {
            Algorithm::Dalta(p) => {
                dalta_engine(self.target, &dist, &p, &self.config.budget, self.observer)
            }
            Algorithm::BsSa(p) => bs_sa_engine(
                self.target,
                &dist,
                &p,
                self.config.policy,
                &self.config.budget,
                self.observer,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SearchParams;

    #[test]
    fn builder_runs_dalta() {
        let target = TruthTable::from_fn(6, 2, |x| x % 4).unwrap();
        let out = ApproxLutBuilder::new(&target)
            .dalta(DaltaParams::fast())
            .run()
            .unwrap();
        assert_eq!(out.config.outputs(), 2);
    }

    #[test]
    fn builder_respects_distribution() {
        let target = TruthTable::from_fn(6, 2, |x| x % 4).unwrap();
        // All mass on x = 0: a good approximation gets that input right.
        let mut w = vec![0.0; 64];
        w[0] = 1.0;
        let dist = InputDistribution::from_weights(w).unwrap();
        let out = ApproxLutBuilder::new(&target)
            .distribution(dist)
            .bs_sa(BsSaParams::fast())
            .run()
            .unwrap();
        // With all probability on one input, zero error is achievable.
        assert!(out.med < 1e-9, "med = {}", out.med);
    }

    #[test]
    fn builder_budget_flows_through() {
        use crate::budget::{CancelToken, Termination};
        let target = TruthTable::from_fn(6, 2, |x| x % 4).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let out = ApproxLutBuilder::new(&target)
            .budget(RunBudget::unlimited().with_cancel(&token))
            .run()
            .unwrap();
        assert_eq!(out.termination, Termination::Cancelled);
        assert_eq!(out.config.outputs(), 2);
    }

    #[test]
    fn builder_policy_flows_through() {
        let target = TruthTable::from_fn(6, 2, |x| (x * 5) % 4).unwrap();
        let mut p = BsSaParams::fast();
        p.search = SearchParams::fast().with_seed(3);
        let out = ApproxLutBuilder::new(&target)
            .bs_sa(p)
            .policy(ArchPolicy::bto_normal_nd_paper())
            .run()
            .unwrap();
        assert!(out.mode_options.is_some());
    }

    #[test]
    fn search_config_round_trips_through_builder() {
        let target = TruthTable::from_fn(6, 2, |x| x % 4).unwrap();
        let cfg = SearchConfig {
            algorithm: Algorithm::Dalta(DaltaParams::fast()),
            policy: ArchPolicy::NormalOnly,
            budget: RunBudget::unlimited().with_max_iterations(1_000_000),
        };
        let out = ApproxLutBuilder::new(&target).config(cfg).run().unwrap();
        assert_eq!(out.config.outputs(), 2);
        // Individual setters override a previously supplied config.
        let out2 = ApproxLutBuilder::new(&target)
            .config(SearchConfig::default())
            .dalta(DaltaParams::fast())
            .run()
            .unwrap();
        assert_eq!(out.config, out2.config);
    }

    #[test]
    fn spec_round_trip_reproduces_the_builder_run() {
        let target = TruthTable::from_fn(6, 2, |x| (x * 7) % 4).unwrap();
        let builder = ApproxLutBuilder::new(&target).bs_sa(BsSaParams::fast());
        let spec = builder.to_spec();
        let direct = builder.run().unwrap();
        let via_spec = ApproxLutBuilder::from_spec(&spec).unwrap().run().unwrap();
        assert_eq!(direct.config, via_spec.config);
        assert_eq!(direct.med.to_bits(), via_spec.med.to_bits());
        assert_eq!(direct.iterations, via_spec.iterations);
    }

    #[test]
    fn from_spec_rejects_unresolved_benchmarks() {
        let spec = crate::spec::JobSpec {
            function: crate::spec::FunctionSource::Benchmark {
                name: "cos".into(),
                scale_bits: 6,
            },
            distribution: crate::spec::DistributionSpec::Uniform,
            algorithm: Algorithm::BsSa(BsSaParams::fast()),
            policy: ArchPolicy::NormalOnly,
            budget: crate::spec::BudgetSpec::unlimited(),
            estimator: crate::estimate::EstimatorMode::Off,
        };
        assert!(matches!(
            ApproxLutBuilder::from_spec(&spec),
            Err(DalutError::Spec(_))
        ));
    }
}
