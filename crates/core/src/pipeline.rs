//! High-level builder API over the two search algorithms.

use crate::beam::run_bs_sa_budgeted;
use crate::budget::RunBudget;
use crate::dalta::run_dalta_budgeted;
use crate::error::DalutError;
use crate::outcome::SearchOutcome;
use crate::params::{ArchPolicy, BsSaParams, DaltaParams};
use dalut_boolfn::{InputDistribution, TruthTable};

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// The DALTA baseline (greedy, random partitions).
    Dalta(DaltaParams),
    /// The proposed beam-search + simulated-annealing search.
    BsSa(BsSaParams),
}

/// Fluent builder for approximating a function with a decomposition-based
/// LUT.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::TruthTable;
/// use dalut_core::{ApproxLutBuilder, ArchPolicy, BsSaParams};
///
/// let target = TruthTable::from_fn(8, 4, |x| (x * x >> 8) & 0xF).unwrap();
/// let outcome = ApproxLutBuilder::new(&target)
///     .bs_sa(BsSaParams::fast())
///     .policy(ArchPolicy::bto_normal_paper())
///     .run()
///     .unwrap();
/// assert!(outcome.med.is_finite());
/// assert_eq!(outcome.config.outputs(), 4);
/// ```
#[derive(Debug)]
pub struct ApproxLutBuilder<'a> {
    target: &'a TruthTable,
    dist: Option<InputDistribution>,
    algorithm: Algorithm,
    policy: ArchPolicy,
    budget: RunBudget,
}

impl<'a> ApproxLutBuilder<'a> {
    /// Starts a builder for `target` with BS-SA fast parameters, uniform
    /// inputs and the normal-only policy.
    pub fn new(target: &'a TruthTable) -> Self {
        Self {
            target,
            dist: None,
            algorithm: Algorithm::BsSa(BsSaParams::fast()),
            policy: ArchPolicy::NormalOnly,
            budget: RunBudget::unlimited(),
        }
    }

    /// Sets the input distribution (default: uniform).
    #[must_use]
    pub fn distribution(mut self, dist: InputDistribution) -> Self {
        self.dist = Some(dist);
        self
    }

    /// Uses the DALTA baseline with the given parameters.
    #[must_use]
    pub fn dalta(mut self, params: DaltaParams) -> Self {
        self.algorithm = Algorithm::Dalta(params);
        self
    }

    /// Uses BS-SA with the given parameters.
    #[must_use]
    pub fn bs_sa(mut self, params: BsSaParams) -> Self {
        self.algorithm = Algorithm::BsSa(params);
        self
    }

    /// Sets the architecture policy (default: normal-only). Ignored by
    /// the DALTA baseline, which has a fixed architecture.
    #[must_use]
    pub fn policy(mut self, policy: ArchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Bounds the run with an execution budget (default: unlimited). A
    /// tripped budget returns the best solution found so far, with
    /// [`SearchOutcome::termination`] saying why the run stopped.
    ///
    /// # Examples
    ///
    /// ```
    /// use dalut_boolfn::TruthTable;
    /// use dalut_core::{ApproxLutBuilder, RunBudget, Termination};
    /// use std::time::Duration;
    ///
    /// let target = TruthTable::from_fn(8, 4, |x| (x * 3 >> 4) & 0xF).unwrap();
    /// let outcome = ApproxLutBuilder::new(&target)
    ///     .budget(RunBudget::unlimited().with_deadline(Duration::from_secs(5)))
    ///     .run()
    ///     .unwrap();
    /// // Complete either way: every output bit has a configuration.
    /// assert_eq!(outcome.config.outputs(), 4);
    /// ```
    #[must_use]
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs the configured search.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatches or invalid parameters.
    pub fn run(self) -> Result<SearchOutcome, DalutError> {
        let dist = match self.dist {
            Some(d) => d,
            None => InputDistribution::uniform(self.target.inputs())?,
        };
        match self.algorithm {
            Algorithm::Dalta(p) => run_dalta_budgeted(self.target, &dist, &p, &self.budget),
            Algorithm::BsSa(p) => {
                run_bs_sa_budgeted(self.target, &dist, &p, self.policy, &self.budget)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SearchParams;

    #[test]
    fn builder_runs_dalta() {
        let target = TruthTable::from_fn(6, 2, |x| x % 4).unwrap();
        let out = ApproxLutBuilder::new(&target)
            .dalta(DaltaParams::fast())
            .run()
            .unwrap();
        assert_eq!(out.config.outputs(), 2);
    }

    #[test]
    fn builder_respects_distribution() {
        let target = TruthTable::from_fn(6, 2, |x| x % 4).unwrap();
        // All mass on x = 0: a good approximation gets that input right.
        let mut w = vec![0.0; 64];
        w[0] = 1.0;
        let dist = InputDistribution::from_weights(w).unwrap();
        let out = ApproxLutBuilder::new(&target)
            .distribution(dist)
            .bs_sa(BsSaParams::fast())
            .run()
            .unwrap();
        // With all probability on one input, zero error is achievable.
        assert!(out.med < 1e-9, "med = {}", out.med);
    }

    #[test]
    fn builder_budget_flows_through() {
        use crate::budget::{CancelToken, Termination};
        let target = TruthTable::from_fn(6, 2, |x| x % 4).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let out = ApproxLutBuilder::new(&target)
            .budget(RunBudget::unlimited().with_cancel(&token))
            .run()
            .unwrap();
        assert_eq!(out.termination, Termination::Cancelled);
        assert_eq!(out.config.outputs(), 2);
    }

    #[test]
    fn builder_policy_flows_through() {
        let target = TruthTable::from_fn(6, 2, |x| (x * 5) % 4).unwrap();
        let mut p = BsSaParams::fast();
        p.search = SearchParams::fast().with_seed(3);
        let out = ApproxLutBuilder::new(&target)
            .bs_sa(p)
            .policy(ArchPolicy::bto_normal_nd_paper())
            .run()
            .unwrap();
        assert!(out.mode_options.is_some());
    }
}
