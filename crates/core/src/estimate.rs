//! The resource-scoring seam between the search stack and analytic cost
//! models.
//!
//! The core search crates never build netlists — hardware cost enters the
//! flow through this object-safe trait, implemented by the closed-form
//! estimator in `dalut-est` (and by trivial scorers in tests). Keeping
//! the trait here lets sweep drivers rank `ApproxLutConfig` candidates by
//! predicted energy and forward only the survivors to exact netlist
//! sign-off, without `dalut-core` depending on any hardware crate.

use crate::config::ApproxLutConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How a sweep driver uses the resource estimator.
///
/// Lives here (not in `dalut-est`) so that [`JobSpec`](crate::JobSpec)
/// can carry the mode as a semantic field without the core crate
/// depending on the estimator implementation; `dalut-est` re-exports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EstimatorMode {
    /// Never estimate: every candidate pays exact sign-off (bit-identical
    /// to the pre-estimator flow).
    Off,
    /// Rank candidates analytically, exact sign-off only for the
    /// cheapest survivors; pruned points keep their estimated metrics.
    #[default]
    Prune,
    /// Analytic metrics only — no exact sign-off at all (fastest,
    /// calibration-accuracy numbers).
    Trust,
}

impl EstimatorMode {
    /// The flag spellings accepted by `--estimator`.
    pub const CHOICES: &'static str = "off|prune|trust";
}

impl FromStr for EstimatorMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Self::Off),
            "prune" => Ok(Self::Prune),
            "trust" => Ok(Self::Trust),
            other => Err(format!(
                "unknown estimator mode {other:?} (expected {})",
                Self::CHOICES
            )),
        }
    }
}

impl fmt::Display for EstimatorMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Off => "off",
            Self::Prune => "prune",
            Self::Trust => "trust",
        })
    }
}

/// Scores a candidate configuration's hardware cost analytically.
///
/// Lower is better. The absolute unit is implementation-defined (the
/// `dalut-est` implementation returns femtojoules per read); pruning only
/// relies on the *ranking* being faithful to exact sign-off.
pub trait ResourceScorer: Send + Sync {
    /// Predicted cost of `config`; lower is cheaper hardware.
    fn score(&self, config: &ApproxLutConfig) -> f64;

    /// Short label for reports and [`SearchEvent::EstimateBatch`]
    /// (`arch`) attribution.
    ///
    /// [`SearchEvent::EstimateBatch`]: crate::observe::SearchEvent::EstimateBatch
    fn label(&self) -> &str {
        "scorer"
    }
}

impl<T: ResourceScorer + ?Sized> ResourceScorer for &T {
    fn score(&self, config: &ApproxLutConfig) -> f64 {
        (**self).score(config)
    }
    fn label(&self) -> &str {
        (**self).label()
    }
}

/// Ranks `candidates` by a scorer and returns the indices of the `keep`
/// cheapest, in ascending score order (ties broken by original index, so
/// the selection is deterministic). `keep >= candidates.len()` keeps
/// everything.
pub fn select_survivors(
    scorer: &dyn ResourceScorer,
    candidates: &[&ApproxLutConfig],
    keep: usize,
) -> Vec<usize> {
    select_survivors_with_margin(scorer, candidates, keep, 0.0)
}

/// Like [`select_survivors`], but additionally keeps every candidate
/// whose score is within a relative `margin` of the `keep`-th best
/// (score ≤ kth · (1 + margin)).
///
/// The margin absorbs model error at the pruning boundary: if the
/// scorer's relative error is bounded by ε with `(1+ε)/(1−ε) ≤ 1 +
/// margin`, the true optimum always survives, because its score can
/// exceed the `keep`-th score by at most that factor. A `margin` of
/// `0.0` reduces to a hard top-`keep` cut.
pub fn select_survivors_with_margin(
    scorer: &dyn ResourceScorer,
    candidates: &[&ApproxLutConfig],
    keep: usize,
    margin: f64,
) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (i, scorer.score(c)))
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    if keep < scored.len() && keep > 0 {
        let cutoff = scored[keep - 1].1 * (1.0 + margin.max(0.0));
        scored.retain(|&(_, s)| s <= cutoff);
    } else {
        scored.truncate(keep);
    }
    let mut kept: Vec<usize> = scored.into_iter().map(|(i, _)| i).collect();
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BitConfig;
    use dalut_boolfn::Partition;
    use dalut_decomp::{AnyDecomp, BtoDecomp};

    struct TableBitsScorer;
    impl ResourceScorer for TableBitsScorer {
        fn score(&self, config: &ApproxLutConfig) -> f64 {
            config
                .bits()
                .iter()
                .map(|b| b.decomp.table_bits() as f64)
                .sum()
        }
        fn label(&self) -> &str {
            "table-bits"
        }
    }

    fn config_with_bound(b: usize) -> ApproxLutConfig {
        let part = Partition::new(4, (1u32 << b) - 1).unwrap();
        let decomp = AnyDecomp::Bto(BtoDecomp::new(part, vec![false; part.cols()]).unwrap());
        ApproxLutConfig::new(
            4,
            1,
            vec![BitConfig {
                bit: 0,
                decomp,
                expected_error: 0.0,
            }],
        )
        .unwrap()
    }

    #[test]
    fn survivors_are_cheapest_in_index_order() {
        let configs = [
            config_with_bound(3),
            config_with_bound(1),
            config_with_bound(2),
        ];
        let refs: Vec<&ApproxLutConfig> = configs.iter().collect();
        let kept = select_survivors(&TableBitsScorer, &refs, 2);
        // Cheapest two are b=1 (index 1) and b=2 (index 2), reported in
        // ascending index order.
        assert_eq!(kept, vec![1, 2]);
        assert_eq!(TableBitsScorer.label(), "table-bits");
    }

    #[test]
    fn margin_keeps_near_ties_past_the_cutoff() {
        // BTO table bits are 2^b, so scores are 8, 2, 4. With keep=1 a
        // hard cut keeps only b=1; a 120% margin (cutoff 2·2.2 = 4.4)
        // also keeps b=2, while b=3 stays pruned.
        let configs = [
            config_with_bound(3),
            config_with_bound(1),
            config_with_bound(2),
        ];
        let refs: Vec<&ApproxLutConfig> = configs.iter().collect();
        assert_eq!(
            select_survivors_with_margin(&TableBitsScorer, &refs, 1, 0.0),
            vec![1]
        );
        assert_eq!(
            select_survivors_with_margin(&TableBitsScorer, &refs, 1, 1.2),
            vec![1, 2]
        );
    }

    #[test]
    fn keep_larger_than_pool_keeps_all() {
        let configs = [config_with_bound(1), config_with_bound(2)];
        let refs: Vec<&ApproxLutConfig> = configs.iter().collect();
        assert_eq!(select_survivors(&TableBitsScorer, &refs, 10), vec![0, 1]);
    }
}
