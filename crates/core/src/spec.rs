//! Wire-ready job specifications: the canonical, serialisable
//! description of one search request.
//!
//! A [`JobSpec`] bundles everything that determines a search result —
//! the target function, the input distribution, the algorithm and its
//! parameters, the architecture policy, the execution budget and the
//! estimator mode — into one serde-round-trippable value. It is the
//! single way work is described on the wire (`dalut-serve` requests),
//! on disk (cache entries) and across the bench bins, replacing each
//! bin's ad-hoc argument plumbing.
//!
//! ## Canonical form and fingerprints
//!
//! Two specs are *semantically equal* when they determine the same
//! search: same resolved truth table, same realised input
//! probabilities, same algorithm parameters (excluding the
//! [`threads`](crate::SearchParams::threads) execution knob, which the
//! engines are deterministic over), same policy, budget and estimator
//! mode. [`JobSpec::canonicalize`] rewrites a spec into the normal form
//! that makes this equality syntactic — named benchmarks resolve to
//! their truth tables, distributions to their realised probability
//! vectors (with the uniform vector collapsed to
//! [`DistributionSpec::Uniform`]) — and [`JobSpec::fingerprint`] hashes
//! that form into a 128-bit [`FunctionFingerprint`]. Semantically equal
//! specs therefore collide (and, modulo FNV collisions, only they do),
//! which is exactly the key a content-addressed configuration cache
//! needs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use crate::budget::RunBudget;
use crate::error::DalutError;
use crate::estimate::EstimatorMode;
use crate::params::ArchPolicy;
use crate::pipeline::{Algorithm, SearchConfig};
use dalut_boolfn::{InputDistribution, TruthTable};

// ---------------------------------------------------------------------
// FNV-1a
// ---------------------------------------------------------------------

/// FNV-1a (64-bit) hash of `bytes`: the stable fingerprint used by
/// checkpoint [`WorkKey`](crate::WorkKey)s and whole-sweep fingerprints.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a (128-bit) hash of `bytes`, returned as `(hi, lo)` words.
///
/// Backs [`FunctionFingerprint`]: at 128 bits, accidental collisions
/// between distinct canonical specs are out of reach for any realistic
/// cache population.
#[must_use]
pub fn fnv1a_128(bytes: &[u8]) -> (u64, u64) {
    const OFFSET: u128 = 0x6C62_272E_07BB_0142_62B8_2175_6295_C58D;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    ((h >> 64) as u64, h as u64)
}

// ---------------------------------------------------------------------
// FunctionFingerprint
// ---------------------------------------------------------------------

/// The 128-bit content address of a canonical [`JobSpec`].
///
/// Stored as two `u64` words (`serde_json` cannot represent `u128`);
/// displays and parses as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionFingerprint {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl FunctionFingerprint {
    /// Fingerprints raw bytes (FNV-1a 128).
    #[must_use]
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let (hi, lo) = fnv1a_128(bytes);
        Self { hi, lo }
    }
}

impl fmt::Display for FunctionFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

impl FromStr for FunctionFingerprint {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(format!(
                "fingerprint must be 32 hex digits, got {}",
                s.len()
            ));
        }
        let hi = u64::from_str_radix(&s[..16], 16).map_err(|e| e.to_string())?;
        let lo = u64::from_str_radix(&s[16..], 16).map_err(|e| e.to_string())?;
        Ok(Self { hi, lo })
    }
}

// ---------------------------------------------------------------------
// Function source
// ---------------------------------------------------------------------

/// Where the target function comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FunctionSource {
    /// An explicit truth table (the canonical form).
    Table {
        /// The target function.
        table: TruthTable,
    },
    /// A named benchmark function at a given input width, resolved
    /// through a [`FunctionResolver`] (e.g. the `dalut-benchfns` suite).
    Benchmark {
        /// Benchmark name (e.g. `"cos"`, `"sqrt"`).
        name: String,
        /// Input width in bits the benchmark is scaled to.
        scale_bits: usize,
    },
}

/// Resolves named benchmark functions into truth tables.
///
/// `dalut-core` deliberately knows nothing about concrete benchmark
/// suites; anything that can turn a `(name, scale_bits)` pair into a
/// [`TruthTable`] — the `dalut-benchfns` suite, a test fixture, a
/// closure — implements this trait.
pub trait FunctionResolver {
    /// Builds the truth table for `name` at `scale_bits` input bits.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or unsupported scales.
    fn resolve(&self, name: &str, scale_bits: usize) -> Result<TruthTable, DalutError>;
}

impl<F> FunctionResolver for F
where
    F: Fn(&str, usize) -> Result<TruthTable, DalutError>,
{
    fn resolve(&self, name: &str, scale_bits: usize) -> Result<TruthTable, DalutError> {
        self(name, scale_bits)
    }
}

/// A resolver that rejects every name: for contexts (tests, pure-table
/// services) where benchmark sources must already be resolved.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoResolver;

impl FunctionResolver for NoResolver {
    fn resolve(&self, name: &str, _scale_bits: usize) -> Result<TruthTable, DalutError> {
        Err(DalutError::Spec(format!(
            "no function resolver available for benchmark {name:?}"
        )))
    }
}

// ---------------------------------------------------------------------
// Distribution spec
// ---------------------------------------------------------------------

/// A serialisable description of the input distribution.
///
/// Unlike [`InputDistribution`], a `DistributionSpec` does not know the
/// input width — [`realize`](DistributionSpec::realize) materialises it
/// against the resolved function's width, so one spec fragment works
/// across scales.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DistributionSpec {
    /// Uniform over all `2^n` inputs (the canonical form of any
    /// distribution whose realised probabilities are all equal).
    #[default]
    Uniform,
    /// Discretised Gaussian (see [`InputDistribution::gaussian`]).
    Gaussian {
        /// Mean as a fraction of the code range.
        mean_frac: f64,
        /// Standard deviation as a fraction of the code range.
        sigma_frac: f64,
    },
    /// Explicit non-negative weights, length `2^n` (normalised on
    /// realisation).
    Weights {
        /// One weight per input code.
        weights: Vec<f64>,
    },
}

impl DistributionSpec {
    /// Materialises the distribution for an `inputs`-bit function.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parameters or a weight vector whose
    /// length is not `2^inputs`.
    pub fn realize(&self, inputs: usize) -> Result<InputDistribution, DalutError> {
        match self {
            Self::Uniform => Ok(InputDistribution::uniform(inputs)?),
            Self::Gaussian {
                mean_frac,
                sigma_frac,
            } => Ok(InputDistribution::gaussian(
                inputs,
                *mean_frac,
                *sigma_frac,
            )?),
            Self::Weights { weights } => {
                if weights.len() != 1usize << inputs {
                    return Err(DalutError::Spec(format!(
                        "weight vector length {} does not match 2^{inputs} inputs",
                        weights.len()
                    )));
                }
                Ok(InputDistribution::from_weights(weights.clone())?)
            }
        }
    }

    /// The spec describing an already-materialised distribution:
    /// `Uniform` for the lazily-represented uniform distribution,
    /// explicit probabilities otherwise.
    #[must_use]
    pub fn from_distribution(dist: &InputDistribution) -> Self {
        if dist.is_uniform() {
            Self::Uniform
        } else {
            Self::Weights {
                weights: dist.to_vec(),
            }
        }
    }

    /// The canonical form at a given width: realised probabilities, with
    /// the all-equal vector collapsed back to `Uniform` so semantically
    /// identical specs compare (and fingerprint) equal.
    ///
    /// # Errors
    ///
    /// Propagates [`realize`](Self::realize) errors.
    pub fn canonicalize(&self, inputs: usize) -> Result<Self, DalutError> {
        let dist = self.realize(inputs)?;
        if dist.is_uniform() {
            return Ok(Self::Uniform);
        }
        // Normalisation is iterated to a fixpoint so canonicalisation is
        // idempotent at the bit level: once the probabilities sum to
        // exactly 1.0, another normalisation pass divides by 1.0 and is
        // the identity. Convergence takes one or two passes in practice;
        // the bound is a safety net.
        let mut probs = dist.to_vec();
        for _ in 0..8 {
            let renorm = InputDistribution::from_weights(probs.clone())?.to_vec();
            if renorm
                .iter()
                .zip(&probs)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            {
                break;
            }
            probs = renorm;
        }
        let uniform = 1.0 / probs.len() as f64;
        if probs.iter().all(|p| p.to_bits() == uniform.to_bits()) {
            Ok(Self::Uniform)
        } else {
            Ok(Self::Weights { weights: probs })
        }
    }
}

// ---------------------------------------------------------------------
// Budget spec
// ---------------------------------------------------------------------

/// The serialisable face of [`RunBudget`].
///
/// Deadlines are carried as whole milliseconds (service-level
/// granularity); the in-process-only [`CancelToken`](crate::CancelToken)
/// does not cross the wire — hosts attach their own on admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BudgetSpec {
    /// Wall-clock limit in milliseconds (`None` = unlimited).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
    /// Iteration cap (`None` = unlimited).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_iterations: Option<u64>,
}

impl BudgetSpec {
    /// No limits.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// The [`RunBudget`] this spec describes (no cancellation token).
    #[must_use]
    pub fn to_budget(&self) -> RunBudget {
        RunBudget {
            deadline: self.deadline_ms.map(Duration::from_millis),
            max_iterations: self.max_iterations,
            cancel: None,
        }
    }

    /// The spec describing `budget` (dropping any cancellation token,
    /// which cannot be serialised; sub-millisecond deadline precision is
    /// rounded down).
    #[must_use]
    pub fn from_budget(budget: &RunBudget) -> Self {
        Self {
            deadline_ms: budget.deadline.map(|d| d.as_millis() as u64),
            max_iterations: budget.max_iterations,
        }
    }
}

// ---------------------------------------------------------------------
// JobSpec
// ---------------------------------------------------------------------

/// Schema tag for serialised job specs.
pub const JOBSPEC_SCHEMA: &str = "dalut-jobspec/v1";

/// The canonical, serialisable description of one search job.
///
/// See the [module docs](self) for the canonical form and the
/// fingerprint contract. Construct directly, or from a configured
/// builder via [`ApproxLutBuilder::to_spec`]; run one via
/// [`ApproxLutBuilder::from_spec`].
///
/// [`ApproxLutBuilder::to_spec`]: crate::ApproxLutBuilder::to_spec
/// [`ApproxLutBuilder::from_spec`]: crate::ApproxLutBuilder::from_spec
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The target function.
    pub function: FunctionSource,
    /// The input distribution (default: uniform).
    #[serde(default)]
    pub distribution: DistributionSpec,
    /// The search algorithm and its parameters.
    pub algorithm: Algorithm,
    /// The architecture policy (ignored by the DALTA baseline).
    pub policy: ArchPolicy,
    /// The execution budget (default: unlimited).
    #[serde(default)]
    pub budget: BudgetSpec,
    /// How sweep drivers should use the resource estimator for this job
    /// (ignored by the in-process builder, which never estimates).
    #[serde(default)]
    pub estimator: EstimatorMode,
}

impl JobSpec {
    /// The resolved truth table: a clone for an explicit table, a
    /// resolver call for a named benchmark.
    ///
    /// # Errors
    ///
    /// Propagates resolver errors.
    pub fn resolve_table(&self, resolver: &dyn FunctionResolver) -> Result<TruthTable, DalutError> {
        match &self.function {
            FunctionSource::Table { table } => Ok(table.clone()),
            FunctionSource::Benchmark { name, scale_bits } => resolver.resolve(name, *scale_bits),
        }
    }

    /// True if the spec is already in canonical form (explicit table,
    /// canonical distribution).
    #[must_use]
    pub fn is_canonical(&self) -> bool {
        let FunctionSource::Table { table } = &self.function else {
            return false;
        };
        matches!(
            self.distribution.canonicalize(table.inputs()),
            Ok(ref c) if *c == self.distribution
        )
    }

    /// Rewrites the spec into canonical form: the benchmark source is
    /// resolved to its truth table and the distribution to its realised
    /// probabilities (uniform collapsed). Semantically equal specs have
    /// equal canonical forms; [`fingerprint`](Self::fingerprint) hashes
    /// this form.
    ///
    /// # Errors
    ///
    /// Propagates resolver and distribution errors.
    pub fn canonicalize(&self, resolver: &dyn FunctionResolver) -> Result<Self, DalutError> {
        let table = self.resolve_table(resolver)?;
        let distribution = self.distribution.canonicalize(table.inputs())?;
        Ok(Self {
            function: FunctionSource::Table { table },
            distribution,
            ..self.clone()
        })
    }

    /// The 128-bit content address of this job: the FNV-1a hash of the
    /// canonical form's semantic fields. Collides exactly for
    /// semantically equal specs (same resolved function, realised
    /// distribution, algorithm parameters — excluding the `threads`
    /// execution knob — policy, budget and estimator mode).
    ///
    /// # Errors
    ///
    /// Propagates canonicalisation errors.
    pub fn fingerprint(
        &self,
        resolver: &dyn FunctionResolver,
    ) -> Result<FunctionFingerprint, DalutError> {
        let canonical = if self.is_canonical() {
            self.clone()
        } else {
            self.canonicalize(resolver)?
        };
        Ok(FunctionFingerprint::of_bytes(
            canonical.canonical_text().as_bytes(),
        ))
    }

    /// The in-process [`SearchConfig`] this spec describes (budget
    /// without a cancellation token — attach one via
    /// [`RunBudget::with_cancel`] if the host needs to cancel).
    #[must_use]
    pub fn search_config(&self) -> SearchConfig {
        SearchConfig {
            algorithm: self.algorithm,
            policy: self.policy,
            budget: self.budget.to_budget(),
        }
    }

    /// The byte string [`fingerprint`](Self::fingerprint) hashes. Only
    /// meaningful on canonical specs; floats are rendered as exact bit
    /// patterns so the text is stable across platforms and formatting
    /// changes.
    fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        debug_assert!(self.is_canonical(), "canonical_text on non-canonical spec");
        let mut s = String::from(JOBSPEC_SCHEMA);
        match &self.function {
            FunctionSource::Table { table } => {
                let _ = write!(s, ";fn:{}:{}:", table.inputs(), table.outputs());
                for v in table.values() {
                    let _ = write!(s, "{v:x},");
                }
            }
            FunctionSource::Benchmark { name, scale_bits } => {
                let _ = write!(s, ";fn:bench:{name}:{scale_bits}");
            }
        }
        match &self.distribution {
            DistributionSpec::Uniform => s.push_str(";dist:uniform"),
            DistributionSpec::Gaussian {
                mean_frac,
                sigma_frac,
            } => {
                let _ = write!(
                    s,
                    ";dist:gaussian:{:x}:{:x}",
                    mean_frac.to_bits(),
                    sigma_frac.to_bits()
                );
            }
            DistributionSpec::Weights { weights } => {
                s.push_str(";dist:weights:");
                for w in weights {
                    let _ = write!(s, "{:x},", w.to_bits());
                }
            }
        }
        match &self.algorithm {
            Algorithm::Dalta(p) => {
                let _ = write!(
                    s,
                    ";alg:dalta:{}:{}:{}:{}:{}",
                    p.search.bound_size,
                    p.search.rounds,
                    p.search.initial_patterns,
                    p.search.seed,
                    p.partition_limit
                );
            }
            Algorithm::BsSa(p) => {
                let _ = write!(
                    s,
                    ";alg:bssa:{}:{}:{}:{}:{}:{}:{}:{:x}:{:x}:{}:{}:{:?}",
                    p.search.bound_size,
                    p.search.rounds,
                    p.search.initial_patterns,
                    p.search.seed,
                    p.partition_limit,
                    p.beam_width,
                    p.neighbors,
                    p.initial_temp.to_bits(),
                    p.alpha.to_bits(),
                    p.sa_processes,
                    p.stall_limit,
                    p.round1_fill
                );
            }
        }
        match self.policy {
            ArchPolicy::NormalOnly => s.push_str(";policy:normal"),
            ArchPolicy::BtoNormal { delta } => {
                let _ = write!(s, ";policy:bto:{:x}", delta.to_bits());
            }
            ArchPolicy::BtoNormalNd { delta, delta_prime } => {
                let _ = write!(
                    s,
                    ";policy:btond:{:x}:{:x}",
                    delta.to_bits(),
                    delta_prime.to_bits()
                );
            }
        }
        let _ = write!(
            s,
            ";budget:{}:{}",
            self.budget
                .deadline_ms
                .map_or_else(|| "-".into(), |v| v.to_string()),
            self.budget
                .max_iterations
                .map_or_else(|| "-".into(), |v| v.to_string()),
        );
        let _ = write!(s, ";est:{}", self.estimator);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{BsSaParams, DaltaParams, SearchParams};

    fn table() -> TruthTable {
        TruthTable::from_fn(4, 2, |x| x % 4).unwrap()
    }

    fn spec() -> JobSpec {
        JobSpec {
            function: FunctionSource::Table { table: table() },
            distribution: DistributionSpec::Uniform,
            algorithm: Algorithm::BsSa(BsSaParams::fast()),
            policy: ArchPolicy::NormalOnly,
            budget: BudgetSpec::unlimited(),
            estimator: EstimatorMode::Off,
        }
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // FNV-1a reference: the empty string hashes to the offset basis,
        // "a" to 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn fnv128_distinguishes_inputs_and_is_stable() {
        let a = fnv1a_128(b"abc");
        assert_eq!(a, fnv1a_128(b"abc"));
        assert_ne!(a, fnv1a_128(b"abd"));
        assert_eq!(
            fnv1a_128(b""),
            (0x6C62_272E_07BB_0142, 0x62B8_2175_6295_C58D)
        );
    }

    #[test]
    fn fingerprint_displays_and_parses_hex() {
        let fp = FunctionFingerprint::of_bytes(b"hello");
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(text.parse::<FunctionFingerprint>().unwrap(), fp);
        assert!("xyz".parse::<FunctionFingerprint>().is_err());
        assert!("0".repeat(31).parse::<FunctionFingerprint>().is_err());
    }

    #[test]
    fn equal_weights_canonicalize_to_uniform() {
        let w = DistributionSpec::Weights {
            weights: vec![3.0; 16],
        };
        assert_eq!(w.canonicalize(4).unwrap(), DistributionSpec::Uniform);
        let skew = DistributionSpec::Weights {
            weights: (0..16).map(|i| 1.0 + i as f64).collect(),
        };
        assert!(matches!(
            skew.canonicalize(4).unwrap(),
            DistributionSpec::Weights { .. }
        ));
    }

    #[test]
    fn gaussian_and_equivalent_weights_share_a_fingerprint() {
        let gauss = JobSpec {
            distribution: DistributionSpec::Gaussian {
                mean_frac: 0.5,
                sigma_frac: 0.2,
            },
            ..spec()
        };
        let realized = DistributionSpec::Gaussian {
            mean_frac: 0.5,
            sigma_frac: 0.2,
        }
        .realize(4)
        .unwrap();
        let weights = JobSpec {
            distribution: DistributionSpec::Weights {
                weights: realized.to_vec(),
            },
            ..spec()
        };
        assert_eq!(
            gauss.fingerprint(&NoResolver).unwrap(),
            weights.fingerprint(&NoResolver).unwrap()
        );
    }

    #[test]
    fn semantic_fields_change_the_fingerprint() {
        let base = spec().fingerprint(&NoResolver).unwrap();
        let mut p = BsSaParams::fast();
        p.search = SearchParams::fast().with_seed(7);
        let cases = [
            JobSpec {
                algorithm: Algorithm::BsSa(p),
                ..spec()
            },
            JobSpec {
                algorithm: Algorithm::Dalta(DaltaParams::fast()),
                ..spec()
            },
            JobSpec {
                policy: ArchPolicy::bto_normal_paper(),
                ..spec()
            },
            JobSpec {
                budget: BudgetSpec {
                    deadline_ms: Some(5),
                    max_iterations: None,
                },
                ..spec()
            },
            JobSpec {
                estimator: EstimatorMode::Trust,
                ..spec()
            },
            JobSpec {
                distribution: DistributionSpec::Gaussian {
                    mean_frac: 0.5,
                    sigma_frac: 0.2,
                },
                ..spec()
            },
        ];
        for (i, c) in cases.iter().enumerate() {
            assert_ne!(
                c.fingerprint(&NoResolver).unwrap(),
                base,
                "case {i} should differ"
            );
        }
    }

    #[test]
    fn threads_are_an_execution_knob_not_a_semantic_field() {
        let mut p = BsSaParams::fast();
        p.search.threads = 8;
        let threaded = JobSpec {
            algorithm: Algorithm::BsSa(p),
            ..spec()
        };
        assert_eq!(
            threaded.fingerprint(&NoResolver).unwrap(),
            spec().fingerprint(&NoResolver).unwrap()
        );
    }

    #[test]
    fn benchmark_sources_resolve_through_the_resolver() {
        let job = JobSpec {
            function: FunctionSource::Benchmark {
                name: "square".into(),
                scale_bits: 4,
            },
            ..spec()
        };
        let resolver = |name: &str, bits: usize| {
            assert_eq!(name, "square");
            TruthTable::from_fn(bits, 2, |x| (x * x) % 4).map_err(DalutError::from)
        };
        let canonical = job.canonicalize(&resolver).unwrap();
        assert!(canonical.is_canonical());
        assert!(!job.is_canonical());
        // The named form and its resolved form address the same entry.
        assert_eq!(
            job.fingerprint(&resolver).unwrap(),
            canonical.fingerprint(&NoResolver).unwrap()
        );
        // NoResolver refuses names.
        assert!(job.fingerprint(&NoResolver).is_err());
    }

    #[test]
    fn budget_spec_round_trips_through_run_budget() {
        let spec = BudgetSpec {
            deadline_ms: Some(1500),
            max_iterations: Some(42),
        };
        let budget = spec.to_budget();
        assert_eq!(budget.deadline, Some(Duration::from_millis(1500)));
        assert_eq!(budget.max_iterations, Some(42));
        assert!(budget.cancel.is_none());
        assert_eq!(BudgetSpec::from_budget(&budget), spec);
        assert!(BudgetSpec::unlimited().to_budget().is_unlimited());
    }

    #[test]
    fn weight_length_mismatch_is_a_spec_error() {
        let w = DistributionSpec::Weights {
            weights: vec![1.0; 8],
        };
        assert!(matches!(w.realize(4), Err(DalutError::Spec(_))));
        assert!(w.realize(3).is_ok());
    }
}
