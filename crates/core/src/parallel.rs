//! A minimal scoped worker pool for evaluating independent search tasks.
//!
//! The paper parallelises `OptForPart` calls over candidate partitions
//! with 44 threads. We reproduce the structure with a crossbeam-scoped
//! pool: tasks are indexed closures pulled off a shared atomic counter, so
//! results land in their slot regardless of completion order and a
//! single-threaded run is exactly sequential (and therefore deterministic
//! for a fixed seed).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `tasks` on up to `threads` workers and returns their results in
/// task order.
///
/// With `threads <= 1` the tasks run inline on the caller's thread. Tasks
/// must be `Send`, as must their results.
///
/// # Panics
///
/// Panics (propagates) if any task panics.
///
/// # Examples
///
/// ```
/// use dalut_core::parallel::run_tasks;
/// let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
/// assert_eq!(run_tasks(tasks, 4), vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_tasks<T, F>(tasks: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if threads <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let n = tasks.len();
    let slots: Vec<parking_lot::Mutex<Option<T>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let task_cells: Vec<parking_lot::Mutex<Option<F>>> = tasks
        .into_iter()
        .map(|f| parking_lot::Mutex::new(Some(f)))
        .collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let f = task_cells[i]
                    .lock()
                    .take()
                    .expect("each task index is claimed exactly once");
                *slots[i].lock() = Some(f());
            });
        }
    })
    .expect("worker thread panicked");

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let make = || (0..50).map(|i| move || i * 3 + 1).collect::<Vec<_>>();
        let seq = run_tasks(make(), 1);
        let par = run_tasks(make(), 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let tasks: Vec<fn() -> i32> = Vec::new();
        assert!(run_tasks(tasks, 4).is_empty());
    }

    #[test]
    fn single_task_runs_inline() {
        let tasks = vec![|| 42];
        assert_eq!(run_tasks(tasks, 8), vec![42]);
    }

    #[test]
    fn results_preserve_task_order_under_contention() {
        // Tasks of deliberately uneven duration still land in order.
        let tasks: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i
                }
            })
            .collect();
        assert_eq!(run_tasks(tasks, 8), (0..32).collect::<Vec<_>>());
    }
}
