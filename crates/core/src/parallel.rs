//! A minimal scoped worker pool for evaluating independent search tasks,
//! with per-task panic isolation.
//!
//! The paper parallelises `OptForPart` calls over candidate partitions
//! with 44 threads. We reproduce the structure with a crossbeam-scoped
//! pool: tasks are indexed closures pulled off a shared atomic counter, so
//! results land in their slot regardless of completion order and a
//! single-threaded run is exactly sequential (and therefore deterministic
//! for a fixed seed).
//!
//! Every task runs under [`std::panic::catch_unwind`], so one panicking
//! task can neither abort the process nor take the other tasks' results
//! down with it: [`try_run_tasks`] surfaces a per-slot
//! `Result<T, TaskPanic>` and the surviving slots are always returned.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Description of a task that panicked inside the worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the task in the submitted batch.
    pub index: usize,
    /// Best-effort panic message (`&str`/`String` payloads; otherwise a
    /// placeholder).
    pub message: String,
    /// How many times the task was attempted (1 unless a retry policy was
    /// in effect).
    pub attempts: u32,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} panicked after {} attempt(s): {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for TaskPanic {}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one task under `catch_unwind`, mapping a panic to [`TaskPanic`].
fn run_isolated<T, F: FnOnce() -> T>(index: usize, f: F) -> Result<T, TaskPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| TaskPanic {
        index,
        message: panic_message(payload.as_ref()),
        attempts: 1,
    })
}

/// Runs `tasks` on up to `threads` workers and returns a per-slot
/// `Result` in task order. A panicking task yields `Err(TaskPanic)` in
/// its own slot; every other task still runs to completion and returns
/// its result.
///
/// With `threads <= 1` the tasks run inline on the caller's thread, in
/// order — exactly sequential, so a fixed-seed run is deterministic.
///
/// # Examples
///
/// ```
/// use dalut_core::parallel::try_run_tasks;
/// let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
///     Box::new(|| 1),
///     Box::new(|| panic!("boom")),
///     Box::new(|| 3),
/// ];
/// let out = try_run_tasks(tasks, 2);
/// assert_eq!(out[0].as_ref().unwrap(), &1);
/// assert_eq!(out[1].as_ref().unwrap_err().index, 1);
/// assert_eq!(out[2].as_ref().unwrap(), &3);
/// ```
pub fn try_run_tasks<T, F>(tasks: Vec<F>, threads: usize) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if threads <= 1 || tasks.len() <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, f)| run_isolated(i, f))
            .collect();
    }
    let n = tasks.len();
    let slots: Vec<parking_lot::Mutex<Option<Result<T, TaskPanic>>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let task_cells: Vec<parking_lot::Mutex<Option<F>>> = tasks
        .into_iter()
        .map(|f| parking_lot::Mutex::new(Some(f)))
        .collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);

    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let f = task_cells[i]
                    .lock()
                    .take()
                    .expect("each task index is claimed exactly once");
                *slots[i].lock() = Some(run_isolated(i, f));
            });
        }
    });
    // Worker bodies only claim an index and store a caught result; they do
    // not themselves panic. If the scope still reports one, surface it —
    // silently dropping slots would violate the per-slot contract.
    scope_result.expect("pool worker panicked outside a task");

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("every slot filled by a worker (scope joins all workers)")
        })
        .collect()
}

/// Runs retryable `tasks` (hence `Fn`, not `FnOnce`) on up to `threads`
/// workers, re-running each panicking task up to `retries` additional
/// times before recording a [`TaskPanic`] for its slot. Results return in
/// task order; non-panicking tasks are never re-run.
///
/// Intended for tasks whose failures may be transient; the search
/// kernels themselves are deterministic, so they use [`try_run_tasks`].
pub fn run_tasks_with_retry<T, F>(
    tasks: Vec<F>,
    threads: usize,
    retries: u32,
) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn() -> T + Send + Sync,
{
    let attempt_budget = retries.saturating_add(1);
    let retried: Vec<_> = tasks
        .into_iter()
        .enumerate()
        .map(|(index, f)| {
            move || {
                let mut last = None;
                for attempt in 1..=attempt_budget {
                    match catch_unwind(AssertUnwindSafe(&f)) {
                        Ok(v) => return Ok(v),
                        Err(payload) => {
                            last = Some(TaskPanic {
                                index,
                                message: panic_message(payload.as_ref()),
                                attempts: attempt,
                            });
                        }
                    }
                }
                Err(last.expect("at least one attempt always runs"))
            }
        })
        .collect();
    try_run_tasks(retried, threads)
        .into_iter()
        .map(|slot| match slot {
            Ok(inner) => inner,
            Err(p) => Err(p),
        })
        .collect()
}

/// Runs `tasks` on up to `threads` workers and returns their results in
/// task order.
///
/// With `threads <= 1` the tasks run inline on the caller's thread. Tasks
/// must be `Send`, as must their results.
///
/// # Panics
///
/// Panics if any task panicked — but only *after* every task has run, so
/// a panicking task no longer aborts its siblings mid-flight. Callers
/// that need the surviving results use [`try_run_tasks`] instead.
///
/// # Examples
///
/// ```
/// use dalut_core::parallel::run_tasks;
/// let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
/// assert_eq!(run_tasks(tasks, 4), vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_tasks<T, F>(tasks: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    try_run_tasks(tasks, threads)
        .into_iter()
        .map(|slot| match slot {
            Ok(v) => v,
            Err(p) => panic!("{p}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let make = || (0..50).map(|i| move || i * 3 + 1).collect::<Vec<_>>();
        let seq = run_tasks(make(), 1);
        let par = run_tasks(make(), 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let tasks: Vec<fn() -> i32> = Vec::new();
        assert!(run_tasks(tasks, 4).is_empty());
    }

    #[test]
    fn single_task_runs_inline() {
        let tasks = vec![|| 42];
        assert_eq!(run_tasks(tasks, 8), vec![42]);
    }

    #[test]
    fn results_preserve_task_order_under_contention() {
        // Tasks of deliberately uneven duration still land in order.
        let tasks: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i
                }
            })
            .collect();
        assert_eq!(run_tasks(tasks, 8), (0..32).collect::<Vec<_>>());
    }

    fn panicky_batch(panic_at: usize, len: usize) -> Vec<Box<dyn FnOnce() -> usize + Send>> {
        (0..len)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = if i == panic_at {
                    Box::new(move || panic!("injected panic in task {i}"))
                } else {
                    Box::new(move || i * 10)
                };
                f
            })
            .collect()
    }

    #[test]
    fn panicking_task_does_not_take_down_the_pool() {
        for threads in [1, 4] {
            let out = try_run_tasks(panicky_batch(3, 8), threads);
            assert_eq!(out.len(), 8);
            for (i, slot) in out.iter().enumerate() {
                if i == 3 {
                    let p = slot.as_ref().unwrap_err();
                    assert_eq!(p.index, 3);
                    assert_eq!(p.attempts, 1);
                    assert!(p.message.contains("injected panic"), "{}", p.message);
                } else {
                    assert_eq!(slot.as_ref().unwrap(), &(i * 10), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn all_tasks_run_even_when_first_panics() {
        use std::sync::atomic::AtomicUsize;
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|i| {
                let f: Box<dyn FnOnce() + Send> = Box::new(move || {
                    RAN.fetch_add(1, Ordering::Relaxed);
                    if i == 0 {
                        panic!("first task fails");
                    }
                });
                f
            })
            .collect();
        let out = try_run_tasks(tasks, 4);
        assert_eq!(RAN.load(Ordering::Relaxed), 16);
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1);
    }

    #[test]
    fn run_tasks_panics_with_task_message_after_all_complete() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(panicky_batch(1, 4), 2);
        }));
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("task 1 panicked"), "{msg}");
    }

    #[test]
    fn retry_policy_retries_up_to_cap() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        // Fails twice, then succeeds: 2 retries suffice.
        let tasks = vec![|| {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("transient failure");
            }
            7u32
        }];
        let out = run_tasks_with_retry(tasks, 1, 2);
        assert_eq!(out[0].as_ref().unwrap(), &7);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_policy_caps_attempts() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let tasks = vec![|| -> u32 {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("always fails");
        }];
        let out = run_tasks_with_retry(tasks, 1, 3);
        let p = out[0].as_ref().unwrap_err();
        assert_eq!(p.attempts, 4); // 1 initial + 3 retries
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert!(p.message.contains("always fails"));
    }

    #[test]
    fn multi_threaded_panic_keeps_sibling_results_intact() {
        // Mixed workload with several panics across a wide batch: every
        // surviving slot must hold the right value.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = if i % 13 == 5 {
                    Box::new(move || panic!("slot {i}"))
                } else {
                    Box::new(move || i + 100)
                };
                f
            })
            .collect();
        let out = try_run_tasks(tasks, 8);
        for (i, slot) in out.iter().enumerate() {
            if i % 13 == 5 {
                assert!(slot.is_err());
            } else {
                assert_eq!(slot.as_ref().unwrap(), &(i + 100));
            }
        }
    }
}
